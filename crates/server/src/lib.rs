//! `uniq-server`: a multi-client daemon over the uniqueness engine.
//!
//! PRs 1–7 built a single-process library; this crate makes it a
//! *served* system, three layers deep:
//!
//! 1. [`wire`] — a small length-prefixed binary protocol (`Query`,
//!    `Explain`, `Exec`, `Analyze`, `Stats`, `Subscribe` /
//!    `Unsubscribe`, streamed row batches, pushed `ViewDelta`s)
//!    over std TCP, hand-rolled because the repo builds fully offline.
//! 2. MVCC snapshots — provided by
//!    [`uniq_catalog::snapshot::SnapshotStore`] and
//!    [`uniq_engine::SharedEngine`]: writers publish copy-on-write
//!    `Arc<Database>` snapshots, readers pin the head at query start
//!    and hold no lock while the paper's uniqueness-optimized plans
//!    execute.
//! 3. [`server`] / [`client`] — the `uniqd` daemon (thread per
//!    connection, admission semaphore, bounded write queues) and the
//!    `uniq-cli` client. Every connection's session shares one
//!    process-wide sharded plan cache, so a plan compiled — and
//!    *proved*, via the U-semiring checker — on one connection serves
//!    them all.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, DeltaEvent, QueryReply, SubscribeReply};
pub use server::{Server, ServerConfig};
pub use wire::{Frame, WireError, DEFAULT_BATCH_ROWS, MAX_FRAME};
