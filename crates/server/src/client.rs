//! A blocking client for the `uniqd` wire protocol.
//!
//! One [`Client`] is one connection (and therefore one server-side
//! session sharing the process-wide plan cache with every other
//! connection). Requests are request/response; `Query` responses
//! stream in and are reassembled into a [`QueryReply`].
//!
//! The one asynchronous wrinkle is subscriptions: after
//! [`Client::subscribe`], the server pushes `ViewDelta` frames
//! whenever *any* connection's write changes the subscribed view —
//! including in the middle of this connection's own request/response
//! exchanges. Every read therefore tolerates an interleaved
//! `ViewDelta`, parking it in a pending queue that
//! [`Client::recv_delta`] drains.

use crate::wire::{Frame, WireError};
use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use uniq_types::Value;

/// A failed client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or protocol failure.
    Wire(WireError),
    /// The server answered with an `Error` frame (SQL error, admission
    /// refusal, …).
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Wire(WireError::Io(e))
    }
}

fn unexpected(frame: &Frame) -> ClientError {
    ClientError::Wire(WireError::Protocol(format!(
        "unexpected response frame {frame:?}"
    )))
}

/// A reassembled `Query` response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Output column names.
    pub columns: Vec<String>,
    /// All result rows (row batches concatenated).
    pub rows: Vec<Vec<Value>>,
    /// Whether the server served the plan from its shared cache.
    pub cache_hit: bool,
}

/// A reassembled `Subscribe` response: the registry id, the view's
/// header and initial contents, and the maintenance tier + proof
/// marker the server granted.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscribeReply {
    /// Registry id; quote it to [`Client::unsubscribe`] and match it
    /// against [`DeltaEvent::id`].
    pub id: u64,
    /// Output column names.
    pub columns: Vec<String>,
    /// The view's initial contents.
    pub rows: Vec<Vec<Value>>,
    /// Maintenance tier: `set`, `counting` or `recompute`.
    pub mode: String,
    /// Proof marker that licensed (or refused) the refcount-free tier.
    pub proof: String,
}

/// One pushed maintenance round for a subscribed view.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEvent {
    /// Which subscription this delta belongs to.
    pub id: u64,
    /// Rows that entered the view.
    pub inserted: Vec<Vec<Value>>,
    /// Rows that left the view.
    pub deleted: Vec<Vec<Value>>,
}

/// One connection to a running `uniqd`.
pub struct Client {
    stream: TcpStream,
    /// `ViewDelta` pushes that arrived while awaiting a solicited
    /// response, in arrival order.
    pending: VecDeque<DeltaEvent>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:4141`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            pending: VecDeque::new(),
        })
    }

    fn call(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        request.write_to(&mut self.stream)?;
        self.read()
    }

    /// Read the next *solicited* frame, parking any interleaved
    /// `ViewDelta` pushes in the pending queue.
    fn read(&mut self) -> Result<Frame, ClientError> {
        loop {
            let frame = Frame::read_from(&mut self.stream)?;
            match frame {
                Frame::Error { message } => return Err(ClientError::Server(message)),
                Frame::ViewDelta {
                    id,
                    inserted,
                    deleted,
                } => self.pending.push_back(DeltaEvent {
                    id,
                    inserted,
                    deleted,
                }),
                other => return Ok(other),
            }
        }
    }

    /// Run a `SELECT`, collecting the streamed row batches.
    pub fn query(&mut self, sql: &str) -> Result<QueryReply, ClientError> {
        let frame = self.call(&Frame::Query { sql: sql.into() })?;
        let Frame::RowHeader { columns, cache_hit } = frame else {
            return Err(unexpected(&frame));
        };
        let mut rows = Vec::new();
        loop {
            let frame = self.read()?;
            let Frame::RowBatch { rows: batch, last } = frame else {
                return Err(unexpected(&frame));
            };
            rows.extend(batch);
            if last {
                break;
            }
        }
        Ok(QueryReply {
            columns,
            rows,
            cache_hit,
        })
    }

    /// `EXPLAIN` a query, returning the rendered plan + proof trace.
    pub fn explain(&mut self, sql: &str) -> Result<String, ClientError> {
        match self.call(&Frame::Explain { sql: sql.into() })? {
            Frame::Explained { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a DDL/DML script; the server publishes one MVCC snapshot.
    pub fn exec(&mut self, sql: &str) -> Result<String, ClientError> {
        match self.call(&Frame::Exec { sql: sql.into() })? {
            Frame::Ack { message } => Ok(message),
            other => Err(unexpected(&other)),
        }
    }

    /// Collect statistics server-side (enables cost-based planning).
    pub fn analyze(&mut self) -> Result<String, ClientError> {
        match self.call(&Frame::Analyze)? {
            Frame::Ack { message } => Ok(message),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's named counters.
    pub fn stats(&mut self) -> Result<Vec<(String, i64)>, ClientError> {
        match self.call(&Frame::Stats)? {
            Frame::StatsReply { entries } => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// Register an incrementally maintained view over `sql`. The reply
    /// carries the initial contents; subsequent changes arrive as
    /// pushed deltas, received via [`Client::recv_delta`].
    pub fn subscribe(&mut self, sql: &str) -> Result<SubscribeReply, ClientError> {
        let frame = self.call(&Frame::Subscribe { sql: sql.into() })?;
        let Frame::Subscribed {
            id,
            columns,
            mode,
            proof,
        } = frame
        else {
            return Err(unexpected(&frame));
        };
        let mut rows = Vec::new();
        loop {
            let frame = self.read()?;
            let Frame::RowBatch { rows: batch, last } = frame else {
                return Err(unexpected(&frame));
            };
            rows.extend(batch);
            if last {
                break;
            }
        }
        Ok(SubscribeReply {
            id,
            columns,
            rows,
            mode,
            proof,
        })
    }

    /// Drop a subscription by id.
    pub fn unsubscribe(&mut self, id: u64) -> Result<String, ClientError> {
        match self.call(&Frame::Unsubscribe { id })? {
            Frame::Ack { message } => Ok(message),
            other => Err(unexpected(&other)),
        }
    }

    /// Wait up to `timeout` for the next pushed delta. Returns
    /// `Ok(None)` when none arrives in time — an expected outcome
    /// while the subscribed view is quiet, not an error. (A timeout
    /// that fires mid-frame leaves the stream desynchronized; treat
    /// that `Io` error as fatal to the connection, as with any
    /// transport failure.)
    pub fn recv_delta(&mut self, timeout: Duration) -> Result<Option<DeltaEvent>, ClientError> {
        if let Some(event) = self.pending.pop_front() {
            return Ok(Some(event));
        }
        // A zero Duration means "no timeout" to the socket API; clamp
        // to the smallest real deadline instead.
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let result = Frame::read_from(&mut self.stream);
        self.stream.set_read_timeout(None)?;
        match result {
            Ok(Frame::ViewDelta {
                id,
                inserted,
                deleted,
            }) => Ok(Some(DeltaEvent {
                id,
                inserted,
                deleted,
            })),
            Ok(Frame::Error { message }) => Err(ClientError::Server(message)),
            Ok(other) => Err(unexpected(&other)),
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }
}
