//! A blocking client for the `uniqd` wire protocol.
//!
//! One [`Client`] is one connection (and therefore one server-side
//! session sharing the process-wide plan cache with every other
//! connection). Requests are strictly request/response; `Query`
//! responses stream in and are reassembled into a [`QueryReply`].

use crate::wire::{Frame, WireError};
use std::net::{TcpStream, ToSocketAddrs};
use uniq_types::Value;

/// A failed client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or protocol failure.
    Wire(WireError),
    /// The server answered with an `Error` frame (SQL error, admission
    /// refusal, …).
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Wire(WireError::Io(e))
    }
}

fn unexpected(frame: &Frame) -> ClientError {
    ClientError::Wire(WireError::Protocol(format!(
        "unexpected response frame {frame:?}"
    )))
}

/// A reassembled `Query` response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Output column names.
    pub columns: Vec<String>,
    /// All result rows (row batches concatenated).
    pub rows: Vec<Vec<Value>>,
    /// Whether the server served the plan from its shared cache.
    pub cache_hit: bool,
}

/// One connection to a running `uniqd`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:4141`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    fn call(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        request.write_to(&mut self.stream)?;
        self.read()
    }

    fn read(&mut self) -> Result<Frame, ClientError> {
        let frame = Frame::read_from(&mut self.stream)?;
        if let Frame::Error { message } = frame {
            return Err(ClientError::Server(message));
        }
        Ok(frame)
    }

    /// Run a `SELECT`, collecting the streamed row batches.
    pub fn query(&mut self, sql: &str) -> Result<QueryReply, ClientError> {
        let frame = self.call(&Frame::Query { sql: sql.into() })?;
        let Frame::RowHeader { columns, cache_hit } = frame else {
            return Err(unexpected(&frame));
        };
        let mut rows = Vec::new();
        loop {
            let frame = self.read()?;
            let Frame::RowBatch { rows: batch, last } = frame else {
                return Err(unexpected(&frame));
            };
            rows.extend(batch);
            if last {
                break;
            }
        }
        Ok(QueryReply {
            columns,
            rows,
            cache_hit,
        })
    }

    /// `EXPLAIN` a query, returning the rendered plan + proof trace.
    pub fn explain(&mut self, sql: &str) -> Result<String, ClientError> {
        match self.call(&Frame::Explain { sql: sql.into() })? {
            Frame::Explained { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a DDL/DML script; the server publishes one MVCC snapshot.
    pub fn exec(&mut self, sql: &str) -> Result<String, ClientError> {
        match self.call(&Frame::Exec { sql: sql.into() })? {
            Frame::Ack { message } => Ok(message),
            other => Err(unexpected(&other)),
        }
    }

    /// Collect statistics server-side (enables cost-based planning).
    pub fn analyze(&mut self) -> Result<String, ClientError> {
        match self.call(&Frame::Analyze)? {
            Frame::Ack { message } => Ok(message),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's named counters.
    pub fn stats(&mut self) -> Result<Vec<(String, i64)>, ClientError> {
        match self.call(&Frame::Stats)? {
            Frame::StatsReply { entries } => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }
}
