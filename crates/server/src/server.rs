//! The daemon: thread-per-connection serving over a [`SharedEngine`].
//!
//! Concurrency shape:
//!
//! * an **accept thread** admits TCP connections against a counting
//!   semaphore ([`ServerConfig::max_connections`]); at capacity the
//!   connection gets an `Error` frame and is closed immediately —
//!   admission control, not an unbounded queue;
//! * each admitted connection gets a **handler thread** (reads request
//!   frames, serves them from a per-connection
//!   [`SharedSession`]) and a **writer thread** fed through a *bounded*
//!   channel ([`ServerConfig::write_queue`] frames) — a slow client
//!   eventually blocks its own handler, never the engine or other
//!   connections (backpressure);
//! * query results stream as `RowBatch` frames of
//!   [`ServerConfig::batch_rows`] rows, bounding peak frame size.
//!
//! Error policy: SQL errors answer with an `Error` frame and keep the
//! connection; *protocol* errors (bad opcode, oversized frame) answer
//! with an `Error` frame and close it — once framing is broken the
//! stream cannot be trusted.

use crate::wire::{Frame, WireError, DEFAULT_BATCH_ROWS};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use uniq_engine::{SharedEngine, SharedSession};

/// Per-connection subscription bookkeeping: the registry ids this
/// connection opened, so they can be torn down when it closes.
type SubIds = Vec<u64>;

/// Daemon tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connections served concurrently; further clients are refused
    /// with an `Error` frame.
    pub max_connections: usize,
    /// Encoded frames buffered per connection before the handler
    /// blocks (backpressure on slow clients).
    pub write_queue: usize,
    /// Rows per `RowBatch` response frame.
    pub batch_rows: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 32,
            write_queue: 8,
            batch_rows: DEFAULT_BATCH_ROWS,
        }
    }
}

struct ServerState {
    engine: Arc<SharedEngine>,
    config: ServerConfig,
    /// Connections currently inside the admission semaphore.
    active: AtomicUsize,
    /// Connections admitted over the server's lifetime.
    served: AtomicU64,
    /// Connections refused at capacity.
    refused: AtomicU64,
}

impl ServerState {
    /// Try to enter the admission semaphore.
    fn admit(&self) -> bool {
        let mut current = self.active.load(Ordering::Relaxed);
        loop {
            if current >= self.config.max_connections {
                self.refused.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.served.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => current = seen,
            }
        }
    }

    fn leave(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running daemon. Dropping it shuts the accept loop down; handler
/// threads finish serving their current connection and exit on client
/// EOF.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (port 0 picks an ephemeral port) and start the
    /// accept loop over `engine`.
    pub fn start(
        engine: Arc<SharedEngine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            engine,
            config,
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || handle_connection(state, stream));
                }
            })
        };
        Ok(Server {
            state,
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server serves.
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.state.engine
    }

    /// Stop accepting connections and join the accept thread. In-flight
    /// connections drain on their own threads.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Send one frame through the bounded writer queue; `false` when the
/// writer is gone (client hung up).
fn send(tx: &SyncSender<Vec<u8>>, frame: &Frame) -> bool {
    tx.send(frame.encode()).is_ok()
}

fn handle_connection(state: Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // All responses go through this bounded queue: the handler blocks
    // when `write_queue` frames are already in flight to a slow client.
    let (tx, rx) = sync_channel::<Vec<u8>>(state.config.write_queue);
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        while let Ok(bytes) = rx.recv() {
            if out.write_all(&bytes).is_err() {
                break;
            }
        }
        let _ = out.flush();
    });

    if !state.admit() {
        send(
            &tx,
            &Frame::Error {
                message: "server at capacity, connection refused".into(),
            },
        );
        drop(tx);
        let _ = writer.join();
        return;
    }

    let session = SharedSession::new(Arc::clone(&state.engine));
    let mut subs: SubIds = Vec::new();
    let mut read_half = &stream;
    loop {
        match Frame::read_from(&mut read_half) {
            Ok(frame) => {
                if !serve_frame(&state, &session, frame, &tx, &mut subs) {
                    break;
                }
            }
            // Client EOF or transport failure: nothing to answer.
            Err(WireError::Io(_)) => break,
            // Broken framing: report, then close — the stream position
            // is no longer trustworthy.
            Err(WireError::Protocol(message)) => {
                send(&tx, &Frame::Error { message });
                break;
            }
        }
    }
    // A closed connection can receive no more pushes; drop its
    // subscriptions (ids already dropped server-side are ignored).
    for id in subs {
        state.engine.unsubscribe(id);
    }
    drop(tx);
    let _ = writer.join();
    state.leave();
}

/// Serve one request frame; `false` ends the connection.
fn serve_frame(
    state: &ServerState,
    session: &SharedSession,
    frame: Frame,
    tx: &SyncSender<Vec<u8>>,
    subs: &mut SubIds,
) -> bool {
    match frame {
        Frame::Query { sql } => match session.query(&sql) {
            Ok(out) => {
                let header = Frame::RowHeader {
                    columns: out.columns.iter().map(|c| c.to_string()).collect(),
                    cache_hit: out.cache_hit,
                };
                if !send(tx, &header) {
                    return false;
                }
                stream_rows(out.rows, state.config.batch_rows, tx)
            }
            Err(e) => send(
                tx,
                &Frame::Error {
                    message: e.to_string(),
                },
            ),
        },
        Frame::Explain { sql } => match session.explain(&sql) {
            Ok(text) => send(tx, &Frame::Explained { text }),
            Err(e) => send(
                tx,
                &Frame::Error {
                    message: e.to_string(),
                },
            ),
        },
        Frame::Exec { sql } => match session.execute(&sql) {
            Ok(n) => send(
                tx,
                &Frame::Ack {
                    message: format!("ok: {n} statement(s) applied"),
                },
            ),
            Err(e) => send(
                tx,
                &Frame::Error {
                    message: e.to_string(),
                },
            ),
        },
        Frame::Analyze => {
            session.engine().analyze();
            send(
                tx,
                &Frame::Ack {
                    message: "ok: statistics collected".into(),
                },
            )
        }
        Frame::Subscribe { sql } => {
            // Deltas ride this connection's writer queue. The sink must
            // never block the publishing engine, so it uses `try_send`:
            // a full queue (slow or wedged subscriber) refuses the
            // delta, and the registry drops the subscription rather
            // than let it silently miss updates.
            let push = tx.clone();
            let sink = Box::new(move |id: u64, delta: &uniq_engine::ViewDelta| {
                let frame = Frame::ViewDelta {
                    id,
                    inserted: delta.inserted.clone(),
                    deleted: delta.deleted.clone(),
                };
                push.try_send(frame.encode()).is_ok()
            });
            match session.engine().subscribe(&sql, sink) {
                Ok(sub) => {
                    subs.push(sub.id);
                    let header = Frame::Subscribed {
                        id: sub.id,
                        columns: sub.columns.iter().map(|c| c.to_string()).collect(),
                        mode: sub.mode.tag().to_string(),
                        proof: sub.license.marker().to_string(),
                    };
                    if !send(tx, &header) {
                        return false;
                    }
                    stream_rows(sub.rows, state.config.batch_rows, tx)
                }
                Err(e) => send(
                    tx,
                    &Frame::Error {
                        message: e.to_string(),
                    },
                ),
            }
        }
        Frame::Unsubscribe { id } => {
            subs.retain(|&sid| sid != id);
            if session.engine().unsubscribe(id) {
                send(
                    tx,
                    &Frame::Ack {
                        message: format!("ok: subscription {id} dropped"),
                    },
                )
            } else {
                send(
                    tx,
                    &Frame::Error {
                        message: format!("unknown subscription id {id}"),
                    },
                )
            }
        }
        Frame::Stats => {
            let engine = session.engine().stats();
            let entries = vec![
                ("cache.hits".to_string(), engine.cache.hits as i64),
                ("cache.misses".to_string(), engine.cache.misses as i64),
                (
                    "cache.insertions".to_string(),
                    engine.cache.insertions as i64,
                ),
                ("cache.evictions".to_string(), engine.cache.evictions as i64),
                (
                    "cache.invalidations".to_string(),
                    engine.cache.invalidations as i64,
                ),
                (
                    "cache.hit_rate_bp".to_string(),
                    (engine.cache.hit_rate() * 10_000.0) as i64,
                ),
                ("snapshot.depth".to_string(), engine.snapshot_depth as i64),
                ("stats.epoch".to_string(), engine.stats_epoch as i64),
                ("queries.total".to_string(), engine.queries_total as i64),
                (
                    "queries.connection".to_string(),
                    session.queries_served() as i64,
                ),
                (
                    "connections.active".to_string(),
                    state.active.load(Ordering::Relaxed) as i64,
                ),
                (
                    "connections.served".to_string(),
                    state.served.load(Ordering::Relaxed) as i64,
                ),
                (
                    "connections.refused".to_string(),
                    state.refused.load(Ordering::Relaxed) as i64,
                ),
                ("subs.active".to_string(), engine.subs.active as i64),
                (
                    "subs.deltas_pushed".to_string(),
                    engine.subs.deltas_pushed as i64,
                ),
                ("subs.delta_rows".to_string(), engine.subs.delta_rows as i64),
                (
                    "subs.view_updates".to_string(),
                    engine.subs.view_updates as i64,
                ),
                ("subs.rows_saved".to_string(), engine.subs.rows_saved as i64),
                ("subs.dropped".to_string(), engine.subs.dropped as i64),
            ];
            send(tx, &Frame::StatsReply { entries })
        }
        // A client must never send response opcodes.
        Frame::RowHeader { .. }
        | Frame::RowBatch { .. }
        | Frame::Explained { .. }
        | Frame::Ack { .. }
        | Frame::StatsReply { .. }
        | Frame::Subscribed { .. }
        | Frame::ViewDelta { .. }
        | Frame::Error { .. } => {
            send(
                tx,
                &Frame::Error {
                    message: "response frame sent by client".into(),
                },
            );
            false
        }
    }
}

/// Stream `rows` as `RowBatch` frames; always at least one batch, the
/// final one flagged `last`.
fn stream_rows(
    rows: Vec<Vec<uniq_types::Value>>,
    batch_rows: usize,
    tx: &SyncSender<Vec<u8>>,
) -> bool {
    let batch_rows = batch_rows.max(1);
    if rows.is_empty() {
        return send(
            tx,
            &Frame::RowBatch {
                rows: vec![],
                last: true,
            },
        );
    }
    let mut iter = rows.chunks(batch_rows).peekable();
    while let Some(chunk) = iter.next() {
        let frame = Frame::RowBatch {
            rows: chunk.to_vec(),
            last: iter.peek().is_none(),
        };
        if !send(tx, &frame) {
            return false;
        }
    }
    true
}
