//! The wire protocol: small length-prefixed binary frames.
//!
//! Every frame is `[u32 LE body length][opcode u8][payload]`. The
//! length covers opcode + payload, and is capped at [`MAX_FRAME`]; a
//! peer declaring more is rejected *before* any allocation, so a
//! hostile or corrupt length prefix can neither OOM nor hang the
//! server. Payload primitives:
//!
//! | type   | encoding                                             |
//! |--------|------------------------------------------------------|
//! | `u8`   | one byte                                             |
//! | `u32`  | 4 bytes LE                                           |
//! | `u64`  | 8 bytes LE                                           |
//! | `i64`  | 8 bytes LE                                           |
//! | string | `u32` byte length + UTF-8 bytes                      |
//! | value  | tag `0`=NULL, `1`=INT + i64, `2`=STR + string, `3`=BOOL + u8 |
//! | row    | `u32` arity + values                                 |
//!
//! Decoding is total: truncated input, oversized lengths, unknown
//! opcodes or tags, non-UTF-8 strings and trailing garbage all come
//! back as [`WireError`], never a panic (the codec proptests assert
//! this over random and mutated byte strings).

use std::io::{Read, Write};
use uniq_types::Value;

/// Hard cap on a frame body (opcode + payload): 16 MiB.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Rows per [`Frame::RowBatch`] the server emits (bounds peak frame
/// size and lets clients stream large results).
pub const DEFAULT_BATCH_ROWS: usize = 256;

/// A protocol or transport failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// The bytes violate the protocol: bad opcode, bad tag, oversized
    /// or short length, invalid UTF-8, trailing garbage.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn protocol(msg: impl Into<String>) -> WireError {
    WireError::Protocol(msg.into())
}

/// Everything that travels between `uniq-cli` and `uniqd`. Requests
/// carry opcodes `0x01..=0x07`; responses `0x81..=0x87` and `0xFF`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Run a `SELECT`, stream back `RowHeader` + `RowBatch`es.
    Query { sql: String },
    /// `EXPLAIN` a query; answered with `Explained`.
    Explain { sql: String },
    /// Run a DDL/DML script (publishes one MVCC snapshot); `Ack`ed.
    Exec { sql: String },
    /// Collect statistics server-side (enables cost-based planning).
    Analyze,
    /// Ask for server counters; answered with `StatsReply`.
    Stats,
    /// Register an incrementally maintained view; answered with
    /// `Subscribed` + a `RowBatch` stream of the initial contents,
    /// then asynchronous `ViewDelta` pushes as writers publish.
    Subscribe { sql: String },
    /// Drop a subscription by registry id; `Ack`ed.
    Unsubscribe { id: u64 },
    /// First response to `Query`: output columns + plan-cache verdict.
    RowHeader {
        columns: Vec<String>,
        cache_hit: bool,
    },
    /// A chunk of result rows; `last` marks the final chunk.
    RowBatch { rows: Vec<Vec<Value>>, last: bool },
    /// The rendered `EXPLAIN` text.
    Explained { text: String },
    /// Success acknowledgement for `Exec` / `Analyze`.
    Ack { message: String },
    /// Named counters (cache hits, snapshot depth, …).
    StatsReply { entries: Vec<(String, i64)> },
    /// First response to `Subscribe`: the registry id, the view's
    /// output columns, its maintenance tier (`set` / `counting` /
    /// `recompute`) and the proof marker that licensed (or refused)
    /// the refcount-free tier. Initial rows follow as `RowBatch`es.
    Subscribed {
        id: u64,
        columns: Vec<String>,
        mode: String,
        proof: String,
    },
    /// Asynchronous push: one maintenance round's net change to a
    /// subscribed view. May arrive between any request/response pair —
    /// clients must buffer it while awaiting a solicited response.
    ViewDelta {
        id: u64,
        inserted: Vec<Vec<Value>>,
        deleted: Vec<Vec<Value>>,
    },
    /// Any failure: SQL errors, protocol violations, admission refusal.
    Error { message: String },
}

impl Frame {
    fn opcode(&self) -> u8 {
        match self {
            Frame::Query { .. } => 0x01,
            Frame::Explain { .. } => 0x02,
            Frame::Exec { .. } => 0x03,
            Frame::Analyze => 0x04,
            Frame::Stats => 0x05,
            Frame::Subscribe { .. } => 0x06,
            Frame::Unsubscribe { .. } => 0x07,
            Frame::RowHeader { .. } => 0x81,
            Frame::RowBatch { .. } => 0x82,
            Frame::Explained { .. } => 0x83,
            Frame::Ack { .. } => 0x84,
            Frame::StatsReply { .. } => 0x85,
            Frame::Subscribed { .. } => 0x86,
            Frame::ViewDelta { .. } => 0x87,
            Frame::Error { .. } => 0xFF,
        }
    }

    /// Encode into a self-delimiting byte string (length prefix
    /// included). Infallible: frames are built from valid Rust values.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = vec![self.opcode()];
        match self {
            Frame::Query { sql }
            | Frame::Explain { sql }
            | Frame::Exec { sql }
            | Frame::Subscribe { sql } => {
                put_str(&mut body, sql);
            }
            Frame::Analyze | Frame::Stats => {}
            Frame::Unsubscribe { id } => put_u64(&mut body, *id),
            Frame::Subscribed {
                id,
                columns,
                mode,
                proof,
            } => {
                put_u64(&mut body, *id);
                put_u32(&mut body, columns.len() as u32);
                for c in columns {
                    put_str(&mut body, c);
                }
                put_str(&mut body, mode);
                put_str(&mut body, proof);
            }
            Frame::ViewDelta {
                id,
                inserted,
                deleted,
            } => {
                put_u64(&mut body, *id);
                put_rows(&mut body, inserted);
                put_rows(&mut body, deleted);
            }
            Frame::RowHeader { columns, cache_hit } => {
                put_u32(&mut body, columns.len() as u32);
                for c in columns {
                    put_str(&mut body, c);
                }
                body.push(u8::from(*cache_hit));
            }
            Frame::RowBatch { rows, last } => {
                put_rows(&mut body, rows);
                body.push(u8::from(*last));
            }
            Frame::Explained { text } | Frame::Ack { message: text } => put_str(&mut body, text),
            Frame::StatsReply { entries } => {
                put_u32(&mut body, entries.len() as u32);
                for (name, value) in entries {
                    put_str(&mut body, name);
                    body.extend_from_slice(&value.to_le_bytes());
                }
            }
            Frame::Error { message } => put_str(&mut body, message),
        }
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode one frame body (opcode + payload, length prefix already
    /// stripped). Rejects trailing bytes: a frame is exactly its
    /// declared length.
    pub fn decode(body: &[u8]) -> Result<Frame, WireError> {
        let mut cur = Cursor { buf: body, pos: 0 };
        let op = cur.u8()?;
        let frame = match op {
            0x01 => Frame::Query { sql: cur.string()? },
            0x02 => Frame::Explain { sql: cur.string()? },
            0x03 => Frame::Exec { sql: cur.string()? },
            0x04 => Frame::Analyze,
            0x05 => Frame::Stats,
            0x06 => Frame::Subscribe { sql: cur.string()? },
            0x07 => Frame::Unsubscribe { id: cur.u64()? },
            0x81 => {
                let n = cur.u32()? as usize;
                let mut columns = Vec::new();
                for _ in 0..n {
                    columns.push(cur.string()?);
                }
                let cache_hit = cur.boolean()?;
                Frame::RowHeader { columns, cache_hit }
            }
            0x82 => {
                let rows = cur.rows()?;
                let last = cur.boolean()?;
                Frame::RowBatch { rows, last }
            }
            0x83 => Frame::Explained {
                text: cur.string()?,
            },
            0x84 => Frame::Ack {
                message: cur.string()?,
            },
            0x85 => {
                let n = cur.u32()? as usize;
                let mut entries = Vec::new();
                for _ in 0..n {
                    let name = cur.string()?;
                    let value = cur.i64()?;
                    entries.push((name, value));
                }
                Frame::StatsReply { entries }
            }
            0x86 => {
                let id = cur.u64()?;
                let n = cur.u32()? as usize;
                let mut columns = Vec::new();
                for _ in 0..n {
                    columns.push(cur.string()?);
                }
                let mode = cur.string()?;
                let proof = cur.string()?;
                Frame::Subscribed {
                    id,
                    columns,
                    mode,
                    proof,
                }
            }
            0x87 => {
                let id = cur.u64()?;
                let inserted = cur.rows()?;
                let deleted = cur.rows()?;
                Frame::ViewDelta {
                    id,
                    inserted,
                    deleted,
                }
            }
            0xFF => Frame::Error {
                message: cur.string()?,
            },
            other => return Err(protocol(format!("unknown opcode 0x{other:02x}"))),
        };
        if cur.pos != body.len() {
            return Err(protocol(format!(
                "{} trailing byte(s) after frame",
                body.len() - cur.pos
            )));
        }
        Ok(frame)
    }

    /// Write one frame to `w` (single `write_all`, so a frame is never
    /// interleaved with another writer's bytes).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        w.write_all(&self.encode())?;
        Ok(())
    }

    /// Read one frame from `r`. An oversized declared length is
    /// rejected before any payload allocation.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, WireError> {
        let mut len = [0u8; 4];
        r.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len);
        if len == 0 {
            return Err(protocol("empty frame"));
        }
        if len > MAX_FRAME {
            return Err(protocol(format!(
                "declared frame length {len} exceeds cap {MAX_FRAME}"
            )));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Frame::decode(&body)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_rows(out: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_u32(out, rows.len() as u32);
    for row in rows {
        put_u32(out, row.len() as u32);
        for v in row {
            put_value(out, v);
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(2);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(u8::from(*b));
        }
    }
}

/// A bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| protocol("frame body truncated"))?;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(protocol(format!("invalid boolean byte {other}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rows(&mut self) -> Result<Vec<Vec<Value>>, WireError> {
        let n = self.u32()? as usize;
        let mut rows = Vec::new();
        for _ in 0..n {
            let arity = self.u32()? as usize;
            let mut row = Vec::new();
            for _ in 0..arity {
                row.push(self.value()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| protocol("string is not UTF-8"))
    }

    fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Str(self.string()?)),
            3 => Ok(Value::Bool(self.boolean()?)),
            other => Err(protocol(format!("unknown value tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let mut r = &bytes[..];
        let back = Frame::read_from(&mut r).unwrap();
        assert_eq!(back, frame);
        assert!(r.is_empty(), "whole encoding consumed");
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Frame::Query {
            sql: "SELECT S.SNO FROM SUPPLIER S".into(),
        });
        roundtrip(Frame::Explain { sql: "".into() });
        roundtrip(Frame::Exec {
            sql: "INSERT INTO T VALUES (1);".into(),
        });
        roundtrip(Frame::Analyze);
        roundtrip(Frame::Stats);
        roundtrip(Frame::RowHeader {
            columns: vec!["SNO".into(), "SNAME".into()],
            cache_hit: true,
        });
        roundtrip(Frame::RowBatch {
            rows: vec![
                vec![Value::Int(1), Value::Str("Acme".into())],
                vec![Value::Null, Value::Bool(false)],
            ],
            last: true,
        });
        roundtrip(Frame::RowBatch {
            rows: vec![],
            last: false,
        });
        roundtrip(Frame::Explained {
            text: "Plan: compiled\n…".into(),
        });
        roundtrip(Frame::Ack {
            message: "ok".into(),
        });
        roundtrip(Frame::StatsReply {
            entries: vec![("cache.hits".into(), 17), ("depth".into(), -1)],
        });
        roundtrip(Frame::Error {
            message: "unknown table Q".into(),
        });
        roundtrip(Frame::Subscribe {
            sql: "SELECT DISTINCT S.SNO FROM SUPPLIER S".into(),
        });
        roundtrip(Frame::Unsubscribe { id: u64::MAX });
        roundtrip(Frame::Subscribed {
            id: 3,
            columns: vec!["SNO".into(), "PNO".into()],
            mode: "set".into(),
            proof: "✓".into(),
        });
        roundtrip(Frame::ViewDelta {
            id: 3,
            inserted: vec![vec![Value::Int(7), Value::Str("x".into())]],
            deleted: vec![],
        });
        roundtrip(Frame::ViewDelta {
            id: 0,
            inserted: vec![],
            deleted: vec![vec![Value::Null], vec![Value::Bool(true)]],
        });
    }

    #[test]
    fn view_delta_trailing_bytes_are_rejected() {
        let mut body = Frame::ViewDelta {
            id: 1,
            inserted: vec![],
            deleted: vec![],
        }
        .encode()[4..]
            .to_vec();
        body.push(0x00);
        match Frame::decode(&body) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_length_prefix_is_io_error() {
        let mut r: &[u8] = &[0x05, 0x00];
        match Frame::read_from(&mut r) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut bytes = (MAX_FRAME + 1).to_le_bytes().to_vec();
        bytes.push(0x01);
        let mut r = &bytes[..];
        match Frame::read_from(&mut r) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("exceeds cap"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_is_a_protocol_error() {
        let body = [0x42u8];
        match Frame::decode(&body) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("unknown opcode"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inner_length_cannot_escape_the_body() {
        // Query frame whose string claims 1000 bytes but carries 2.
        let mut body = vec![0x01];
        body.extend_from_slice(&1000u32.to_le_bytes());
        body.extend_from_slice(b"ab");
        match Frame::decode(&body) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Frame::Analyze.encode();
        // Splice an extra byte into the body and fix the length.
        bytes.push(0x00);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        let mut r = &bytes[..];
        match Frame::read_from(&mut r) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_frame_is_rejected() {
        let bytes = 0u32.to_le_bytes();
        let mut r = &bytes[..];
        assert!(matches!(
            Frame::read_from(&mut r),
            Err(WireError::Protocol(_))
        ));
    }
}
