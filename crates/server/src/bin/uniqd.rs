//! `uniqd` — the uniqueness-engine daemon.
//!
//! ```text
//! uniqd [--port N] [--empty] [--max-conns N]
//! ```
//!
//! Binds `127.0.0.1:<port>` (default 4141; `--port 0` picks an
//! ephemeral port) and serves the wire protocol until killed. By
//! default the database is the paper's Figure 1 supplier instance;
//! `--empty` starts blank so clients build their own schema over the
//! wire. Loopback only: this is a research daemon, not a hardened one.

use std::sync::Arc;
use uniq_engine::SharedEngine;
use uniq_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!("usage: uniqd [--port N] [--empty] [--max-conns N]");
    std::process::exit(2);
}

fn main() {
    let mut port: u16 = 4141;
    let mut empty = false;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                port = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-conns" => {
                config.max_connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--empty" => empty = true,
            _ => usage(),
        }
    }

    let engine = if empty {
        SharedEngine::new(uniq_catalog::Database::new())
    } else {
        match SharedEngine::sample() {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("uniqd: failed to build sample database: {e}");
                std::process::exit(1);
            }
        }
    };

    let server = match Server::start(Arc::new(engine), ("127.0.0.1", port), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("uniqd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The port line is the startup handshake scripts parse (ci.sh grabs
    // the ephemeral port from it), so keep its shape stable.
    println!("uniqd listening on {}", server.local_addr());

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
