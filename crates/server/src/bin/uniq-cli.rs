//! `uniq-cli` — a one-shot client for `uniqd`.
//!
//! ```text
//! uniq-cli [--addr HOST:PORT] -e SQL        # SELECT … or DDL/DML
//! uniq-cli [--addr HOST:PORT] --explain SQL # rendered plan + proofs
//! uniq-cli [--addr HOST:PORT] --analyze     # collect statistics
//! uniq-cli [--addr HOST:PORT] --stats       # server counters
//! uniq-cli [--addr HOST:PORT] --subscribe SQL --deltas N [--timeout-ms MS]
//! ```
//!
//! `-e` routes on the first keyword: `SELECT` goes over the `Query`
//! frame (rows print tab-separated), anything else over `Exec`. Exits
//! nonzero when the server answers with an `Error` frame.
//!
//! `--subscribe` registers an incrementally maintained view, prints
//! its initial contents, then blocks printing pushed deltas (`+` rows
//! entered the view, `-` rows left it) until `--deltas N` maintenance
//! rounds arrived (default 1) or `--timeout-ms` elapsed with no push
//! (default 10000), then unsubscribes. Exits nonzero on timeout —
//! which lets a script assert delta *delivery*, not just subscription.

use std::time::Duration;
use uniq_server::Client;
use uniq_types::Value;

fn usage() -> ! {
    eprintln!(
        "usage: uniq-cli [--addr HOST:PORT] (-e SQL | --explain SQL | --analyze | --stats \
         | --subscribe SQL [--deltas N] [--timeout-ms MS])"
    );
    std::process::exit(2);
}

enum Action {
    Eval(String),
    Explain(String),
    Analyze,
    Stats,
    Subscribe(String),
}

fn render(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
    }
}

fn main() {
    let mut addr = "127.0.0.1:4141".to_string();
    let mut action = None;
    let mut deltas: u64 = 1;
    let mut timeout = Duration::from_millis(10_000);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "-e" => action = Some(Action::Eval(args.next().unwrap_or_else(|| usage()))),
            "--explain" => action = Some(Action::Explain(args.next().unwrap_or_else(|| usage()))),
            "--analyze" => action = Some(Action::Analyze),
            "--stats" => action = Some(Action::Stats),
            "--subscribe" => {
                action = Some(Action::Subscribe(args.next().unwrap_or_else(|| usage())))
            }
            "--deltas" => {
                deltas = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--timeout-ms" => {
                timeout = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(action) = action else { usage() };

    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("uniq-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let outcome = match action {
        Action::Eval(sql) => {
            let is_select = sql.trim_start().to_ascii_uppercase().starts_with("SELECT");
            if is_select {
                client.query(&sql).map(|reply| {
                    println!("{}", reply.columns.join("\t"));
                    for row in &reply.rows {
                        let cells: Vec<String> = row.iter().map(render).collect();
                        println!("{}", cells.join("\t"));
                    }
                    eprintln!(
                        "({} row(s), plan {})",
                        reply.rows.len(),
                        if reply.cache_hit {
                            "cached"
                        } else {
                            "compiled"
                        }
                    );
                })
            } else {
                client.exec(&sql).map(|ack| println!("{ack}"))
            }
        }
        Action::Explain(sql) => client.explain(&sql).map(|text| println!("{text}")),
        Action::Analyze => client.analyze().map(|ack| println!("{ack}")),
        Action::Stats => client.stats().map(|entries| {
            for (name, value) in entries {
                println!("{name}\t{value}");
            }
        }),
        Action::Subscribe(sql) => client.subscribe(&sql).and_then(|sub| {
            println!("{}", sub.columns.join("\t"));
            for row in &sub.rows {
                let cells: Vec<String> = row.iter().map(render).collect();
                println!("{}", cells.join("\t"));
            }
            eprintln!(
                "(subscribed id={} mode={} proof={} with {} initial row(s))",
                sub.id,
                sub.mode,
                sub.proof,
                sub.rows.len()
            );
            let mut received = 0u64;
            while received < deltas {
                match client.recv_delta(timeout)? {
                    Some(event) => {
                        received += 1;
                        for row in &event.inserted {
                            let cells: Vec<String> = row.iter().map(render).collect();
                            println!("+\t{}", cells.join("\t"));
                        }
                        for row in &event.deleted {
                            let cells: Vec<String> = row.iter().map(render).collect();
                            println!("-\t{}", cells.join("\t"));
                        }
                        eprintln!(
                            "(delta {received}/{deltas}: +{} -{})",
                            event.inserted.len(),
                            event.deleted.len()
                        );
                    }
                    None => {
                        eprintln!(
                            "uniq-cli: no delta within {}ms ({received}/{deltas} received)",
                            timeout.as_millis()
                        );
                        std::process::exit(1);
                    }
                }
            }
            client.unsubscribe(sub.id).map(|ack| eprintln!("({ack})"))
        }),
    };

    if let Err(e) = outcome {
        eprintln!("uniq-cli: {e}");
        std::process::exit(1);
    }
}
