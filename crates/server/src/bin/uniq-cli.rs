//! `uniq-cli` — a one-shot client for `uniqd`.
//!
//! ```text
//! uniq-cli [--addr HOST:PORT] -e SQL        # SELECT … or DDL/DML
//! uniq-cli [--addr HOST:PORT] --explain SQL # rendered plan + proofs
//! uniq-cli [--addr HOST:PORT] --analyze     # collect statistics
//! uniq-cli [--addr HOST:PORT] --stats       # server counters
//! ```
//!
//! `-e` routes on the first keyword: `SELECT` goes over the `Query`
//! frame (rows print tab-separated), anything else over `Exec`. Exits
//! nonzero when the server answers with an `Error` frame.

use uniq_server::Client;
use uniq_types::Value;

fn usage() -> ! {
    eprintln!("usage: uniq-cli [--addr HOST:PORT] (-e SQL | --explain SQL | --analyze | --stats)");
    std::process::exit(2);
}

enum Action {
    Eval(String),
    Explain(String),
    Analyze,
    Stats,
}

fn render(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
    }
}

fn main() {
    let mut addr = "127.0.0.1:4141".to_string();
    let mut action = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "-e" => action = Some(Action::Eval(args.next().unwrap_or_else(|| usage()))),
            "--explain" => action = Some(Action::Explain(args.next().unwrap_or_else(|| usage()))),
            "--analyze" => action = Some(Action::Analyze),
            "--stats" => action = Some(Action::Stats),
            _ => usage(),
        }
    }
    let Some(action) = action else { usage() };

    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("uniq-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let outcome = match action {
        Action::Eval(sql) => {
            let is_select = sql.trim_start().to_ascii_uppercase().starts_with("SELECT");
            if is_select {
                client.query(&sql).map(|reply| {
                    println!("{}", reply.columns.join("\t"));
                    for row in &reply.rows {
                        let cells: Vec<String> = row.iter().map(render).collect();
                        println!("{}", cells.join("\t"));
                    }
                    eprintln!(
                        "({} row(s), plan {})",
                        reply.rows.len(),
                        if reply.cache_hit {
                            "cached"
                        } else {
                            "compiled"
                        }
                    );
                })
            } else {
                client.exec(&sql).map(|ack| println!("{ack}"))
            }
        }
        Action::Explain(sql) => client.explain(&sql).map(|text| println!("{text}")),
        Action::Analyze => client.analyze().map(|ack| println!("{ack}")),
        Action::Stats => client.stats().map(|entries| {
            for (name, value) in entries {
                println!("{name}\t{value}");
            }
        }),
    };

    if let Err(e) = outcome {
        eprintln!("uniq-cli: {e}");
        std::process::exit(1);
    }
}
