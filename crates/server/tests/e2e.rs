//! End-to-end tests: a real `Server` on an ephemeral loopback port,
//! real `Client`s over TCP.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use uniq_engine::SharedEngine;
use uniq_server::{Client, ClientError, Frame, Server, ServerConfig, WireError, MAX_FRAME};
use uniq_types::Value;

fn sample_server(config: ServerConfig) -> Server {
    let engine = Arc::new(SharedEngine::sample().unwrap());
    Server::start(engine, ("127.0.0.1", 0), config).unwrap()
}

#[test]
fn query_roundtrip_over_the_wire() {
    let server = sample_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client
        .query("SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SCITY = 'Toronto'")
        .unwrap();
    assert_eq!(reply.columns, vec!["SNO".to_string(), "SNAME".to_string()]);
    assert_eq!(reply.rows.len(), 2);
    assert!(reply
        .rows
        .contains(&vec![Value::Int(1), Value::Str("Acme".into())]));
    assert!(!reply.cache_hit);
}

#[test]
fn plans_are_shared_across_connections() {
    let server = sample_server(ServerConfig::default());
    let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
               WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
    let mut first = Client::connect(server.local_addr()).unwrap();
    assert!(!first.query(sql).unwrap().cache_hit);
    // A *different* connection gets the plan the first one compiled.
    let mut second = Client::connect(server.local_addr()).unwrap();
    assert!(second.query(sql).unwrap().cache_hit);
    let stats = second.stats().unwrap();
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing stat {name}"))
            .1
    };
    assert!(get("cache.hits") >= 1);
    assert!(get("cache.hit_rate_bp") > 0, "shared hit rate > 0");
    assert_eq!(get("connections.active"), 2);
    assert!(get("connections.served") >= 2);
}

#[test]
fn writes_publish_snapshots_readers_see_on_next_query() {
    let server = sample_server(ServerConfig::default());
    let mut writer = Client::connect(server.local_addr()).unwrap();
    let mut reader = Client::connect(server.local_addr()).unwrap();
    let sql = "SELECT S.SNO FROM SUPPLIER S";
    assert_eq!(reader.query(sql).unwrap().rows.len(), 5);
    let ack = writer
        .exec("INSERT INTO SUPPLIER VALUES (9, 'Carver', 'Toronto', 100, 'Active');")
        .unwrap();
    assert!(ack.contains("1 statement"), "{ack}");
    let after = reader.query(sql).unwrap();
    assert_eq!(after.rows.len(), 6, "fresh snapshot sees the write");
    assert!(after.cache_hit, "INSERT does not invalidate cached plans");
    let depth = writer
        .stats()
        .unwrap()
        .into_iter()
        .find(|(n, _)| n == "snapshot.depth")
        .unwrap()
        .1;
    assert_eq!(depth, 1);
}

#[test]
fn explain_over_the_wire_carries_proofs() {
    let server = sample_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = client
        .explain(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        )
        .unwrap();
    assert!(text.contains("distinct-removal"), "{text}");
    assert!(text.contains("proof=✓"), "{text}");
}

#[test]
fn sql_errors_keep_the_connection_usable() {
    let server = sample_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.query("SELECT Q.X FROM NO_SUCH_TABLE Q") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("NO_SUCH_TABLE"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Same connection still serves.
    assert_eq!(
        client
            .query("SELECT S.SNO FROM SUPPLIER S")
            .unwrap()
            .rows
            .len(),
        5
    );
    // Failed DDL answers with the engine's message, connection intact.
    assert!(matches!(
        client.exec("INSERT INTO SUPPLIER VALUES (1, 'Dup', 'Toronto', 1, 'Active');"),
        Err(ClientError::Server(_))
    ));
    assert!(client.analyze().unwrap().contains("statistics"));
}

#[test]
fn large_results_stream_in_batches() {
    let engine = Arc::new(SharedEngine::new(uniq_catalog::Database::new()));
    engine
        .execute("CREATE TABLE N (A INTEGER, PRIMARY KEY (A));")
        .unwrap();
    let values: Vec<String> = (0..100).map(|i| format!("({i})")).collect();
    engine
        .execute(&format!("INSERT INTO N VALUES {};", values.join(", ")))
        .unwrap();
    // batch_rows=7 forces 15 RowBatch frames for 100 rows.
    let config = ServerConfig {
        batch_rows: 7,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, ("127.0.0.1", 0), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client.query("SELECT N.A FROM N").unwrap();
    assert_eq!(reply.rows.len(), 100, "all batches reassembled");
}

#[test]
fn admission_refuses_connections_over_capacity() {
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let server = sample_server(config);
    let mut admitted = Client::connect(server.local_addr()).unwrap();
    admitted.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
    // Second connection: refused with an Error frame, no request needed.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    match Frame::read_from(&mut raw) {
        Ok(Frame::Error { message }) => assert!(message.contains("capacity"), "{message}"),
        other => panic!("expected refusal, got {other:?}"),
    }
    drop(raw);
    // The admitted connection is unaffected...
    admitted.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
    drop(admitted);
    // ...and once it leaves, the slot frees up (poll briefly: the
    // server notices the EOF asynchronously).
    let mut ok = false;
    for _ in 0..100 {
        let mut retry = match Client::connect(server.local_addr()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        if retry.query("SELECT S.SNO FROM SUPPLIER S").is_ok() {
            ok = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(ok, "slot was never released");
}

#[test]
fn oversized_frame_gets_protocol_error_then_close() {
    let server = sample_server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
    match Frame::read_from(&mut raw) {
        Ok(Frame::Error { message }) => assert!(message.contains("exceeds cap"), "{message}"),
        other => panic!("expected protocol error frame, got {other:?}"),
    }
    // Connection is closed after a framing violation.
    let mut buf = [0u8; 1];
    assert_eq!(raw.read(&mut buf).unwrap(), 0, "server closed the stream");
}

#[test]
fn unknown_opcode_gets_protocol_error() {
    let server = sample_server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&1u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x7E]).unwrap();
    match Frame::read_from(&mut raw) {
        Ok(Frame::Error { message }) => assert!(message.contains("unknown opcode"), "{message}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn response_opcode_from_client_is_rejected() {
    let server = sample_server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    Frame::Ack {
        message: "i am not a server".into(),
    }
    .write_to(&mut raw)
    .unwrap();
    match Frame::read_from(&mut raw) {
        Ok(Frame::Error { message }) => {
            assert!(message.contains("response frame"), "{message}")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn truncated_request_just_closes() {
    // A client that dies mid-frame must not wedge a handler thread in a
    // visible way: the next connection still gets served.
    let server = sample_server(ServerConfig::default());
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[0x01, 0x02]).unwrap(); // 98 bytes never arrive
    } // dropped: EOF mid-frame on the server side
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(
        client
            .query("SELECT S.SNO FROM SUPPLIER S")
            .unwrap()
            .rows
            .len(),
        5
    );
}

#[test]
fn analyze_enables_cost_based_plans_for_every_connection() {
    let server = sample_server(ServerConfig::default());
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    a.analyze().unwrap();
    let text = b
        .explain("SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO")
        .unwrap();
    assert!(
        text.contains("Physical plan"),
        "cost-based planning active across connections: {text}"
    );
}

/// The standard subscription under test: set-tier (PARTS' key (SNO,
/// PNO) survives the projection, so Algorithm 1 + the proof checker
/// license the refcount-free path).
const SUB_SQL: &str = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";

#[test]
fn subscribe_streams_initial_rows_then_pushes_deltas() {
    let server = sample_server(ServerConfig::default());
    let mut subscriber = Client::connect(server.local_addr()).unwrap();
    let sub = subscriber.subscribe(SUB_SQL).unwrap();
    assert_eq!(sub.columns, vec!["SNO".to_string(), "PNO".to_string()]);
    assert_eq!(sub.mode, "set", "key-covered join gets the set tier");
    assert_eq!(
        sub.proof, "✓",
        "refcount-free path is *proved*, not assumed"
    );
    assert!(!sub.rows.is_empty(), "initial contents stream on subscribe");

    // A *different* connection's write reaches this subscriber as a push.
    let mut writer = Client::connect(server.local_addr()).unwrap();
    writer
        .exec("INSERT INTO PARTS VALUES (1, 99, 'Widget', 180, 'RED');")
        .unwrap();
    let event = subscriber
        .recv_delta(std::time::Duration::from_secs(5))
        .unwrap()
        .expect("delta pushed after writer publish");
    assert_eq!(event.id, sub.id);
    assert_eq!(event.inserted, vec![vec![Value::Int(1), Value::Int(99)]]);
    assert!(event.deleted.is_empty());
}

#[test]
fn two_subscribers_each_receive_the_push() {
    let server = sample_server(ServerConfig::default());
    let mut first = Client::connect(server.local_addr()).unwrap();
    let mut second = Client::connect(server.local_addr()).unwrap();
    let a = first.subscribe(SUB_SQL).unwrap();
    let b = second.subscribe(SUB_SQL).unwrap();
    assert_ne!(a.id, b.id, "registry ids are per-subscription");
    let mut writer = Client::connect(server.local_addr()).unwrap();
    writer
        .exec("INSERT INTO PARTS VALUES (2, 77, 'Gear', 181, 'BLUE');")
        .unwrap();
    for (client, sub_id) in [(&mut first, a.id), (&mut second, b.id)] {
        let event = client
            .recv_delta(std::time::Duration::from_secs(5))
            .unwrap()
            .expect("each subscriber gets its own push");
        assert_eq!(event.id, sub_id);
        assert_eq!(event.inserted, vec![vec![Value::Int(2), Value::Int(77)]]);
    }
}

#[test]
fn pushed_deltas_interleave_with_requests_on_the_same_connection() {
    let server = sample_server(ServerConfig::default());
    let mut subscriber = Client::connect(server.local_addr()).unwrap();
    subscriber.subscribe(SUB_SQL).unwrap();
    let mut writer = Client::connect(server.local_addr()).unwrap();
    writer
        .exec("INSERT INTO PARTS VALUES (3, 55, 'Bolt', 182, 'RED');")
        .unwrap();
    // The push is already queued to this connection; a solicited
    // request/response must still work, parking the delta...
    let reply = subscriber.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
    assert_eq!(reply.rows.len(), 5);
    // ...where recv_delta finds it afterwards.
    let event = subscriber
        .recv_delta(std::time::Duration::from_secs(5))
        .unwrap()
        .expect("interleaved delta was buffered, not lost");
    assert_eq!(event.inserted, vec![vec![Value::Int(3), Value::Int(55)]]);
}

#[test]
fn unsubscribe_stops_pushes_and_stats_count_subscriptions() {
    let server = sample_server(ServerConfig::default());
    let mut subscriber = Client::connect(server.local_addr()).unwrap();
    let sub = subscriber.subscribe(SUB_SQL).unwrap();
    let mut writer = Client::connect(server.local_addr()).unwrap();
    writer
        .exec("INSERT INTO PARTS VALUES (4, 33, 'Cam', 183, 'GREEN');")
        .unwrap();
    assert!(subscriber
        .recv_delta(std::time::Duration::from_secs(5))
        .unwrap()
        .is_some());
    let stats = writer.stats().unwrap();
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing stat {name}"))
            .1
    };
    assert_eq!(get("subs.active"), 1);
    assert!(get("subs.deltas_pushed") >= 1);
    assert!(get("subs.delta_rows") >= 1);
    assert!(get("subs.view_updates") >= 1);

    let ack = subscriber.unsubscribe(sub.id).unwrap();
    assert!(ack.contains("dropped"), "{ack}");
    writer
        .exec("INSERT INTO PARTS VALUES (5, 11, 'Pin', 184, 'RED');")
        .unwrap();
    assert!(
        subscriber
            .recv_delta(std::time::Duration::from_millis(200))
            .unwrap()
            .is_none(),
        "no pushes after unsubscribe"
    );
    assert!(matches!(
        subscriber.unsubscribe(sub.id),
        Err(ClientError::Server(_))
    ));
}

#[test]
fn closing_a_connection_tears_its_subscriptions_down() {
    let server = sample_server(ServerConfig::default());
    {
        let mut subscriber = Client::connect(server.local_addr()).unwrap();
        subscriber.subscribe(SUB_SQL).unwrap();
        assert_eq!(server.engine().stats().subs.active, 1);
    } // dropped: server sees EOF
    let mut probe = Client::connect(server.local_addr()).unwrap();
    let mut cleaned = false;
    for _ in 0..100 {
        let active = probe
            .stats()
            .unwrap()
            .into_iter()
            .find(|(n, _)| n == "subs.active")
            .unwrap()
            .1;
        if active == 0 {
            cleaned = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(cleaned, "connection close must unsubscribe its views");
}

#[test]
fn wire_error_is_not_a_server_refusal() {
    // ClientError::Server is reserved for Error frames; a vanished
    // server surfaces as a Wire error.
    let server = sample_server(ServerConfig::default());
    let addr = server.local_addr();
    drop(server);
    match Client::connect(addr) {
        Err(ClientError::Wire(WireError::Io(_))) => {}
        Ok(mut c) => {
            // The listener may accept queued connections during
            // shutdown; the next call must fail with a Wire error.
            assert!(matches!(
                c.query("SELECT S.SNO FROM SUPPLIER S"),
                Err(ClientError::Wire(_))
            ));
        }
        Err(other) => panic!("expected wire error, got {other:?}"),
    }
}
