//! Property tests for the wire codec.
//!
//! Two totality properties, over the vendored deterministic
//! [`proptest`] shim:
//!
//! * **round trip** — every frame the generator can produce decodes
//!   back to itself from its own encoding, with nothing left over;
//! * **no panic, no hang** — `Frame::read_from` over *arbitrary* byte
//!   strings (random garbage, and valid encodings mutated or
//!   truncated at a random point) always returns `Ok` or a
//!   [`WireError`], never panics, and always terminates: reads are
//!   bounded by the declared length, which is itself capped.

use proptest::prelude::*;
use uniq_server::{Frame, WireError};
use uniq_types::Value;

/// SplitMix64 — a tiny deterministic generator for structured inputs.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn string(&mut self) -> String {
        let len = self.below(24);
        (0..len)
            .map(|_| {
                // Mixed ASCII and multibyte, so UTF-8 handling is hit.
                ['a', 'Z', '0', ' ', ';', '→', 'é', '\''][self.below(8)]
            })
            .collect()
    }

    fn value(&mut self) -> Value {
        match self.below(4) {
            0 => Value::Null,
            1 => Value::Int(self.next() as i64),
            2 => Value::Str(self.string()),
            _ => Value::Bool(self.next().is_multiple_of(2)),
        }
    }

    fn rows(&mut self) -> Vec<Vec<Value>> {
        let arity = self.below(5);
        (0..self.below(8))
            .map(|_| (0..arity).map(|_| self.value()).collect())
            .collect()
    }

    fn frame(&mut self) -> Frame {
        match self.below(15) {
            0 => Frame::Query { sql: self.string() },
            1 => Frame::Explain { sql: self.string() },
            2 => Frame::Exec { sql: self.string() },
            3 => Frame::Analyze,
            4 => Frame::Stats,
            5 => Frame::RowHeader {
                columns: (0..self.below(6)).map(|_| self.string()).collect(),
                cache_hit: self.next().is_multiple_of(2),
            },
            6 => Frame::RowBatch {
                rows: self.rows(),
                last: self.next().is_multiple_of(2),
            },
            7 => Frame::Explained {
                text: self.string(),
            },
            8 => Frame::Ack {
                message: self.string(),
            },
            9 => Frame::StatsReply {
                entries: (0..self.below(6))
                    .map(|_| (self.string(), self.next() as i64))
                    .collect(),
            },
            10 => Frame::Subscribe { sql: self.string() },
            11 => Frame::Unsubscribe { id: self.next() },
            12 => Frame::Subscribed {
                id: self.next(),
                columns: (0..self.below(6)).map(|_| self.string()).collect(),
                mode: self.string(),
                proof: self.string(),
            },
            13 => Frame::ViewDelta {
                id: self.next(),
                inserted: self.rows(),
                deleted: self.rows(),
            },
            _ => Frame::Error {
                message: self.string(),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(f)) == f, consuming the whole encoding.
    #[test]
    fn random_frames_roundtrip(seed in 0u64..1u64 << 48) {
        let frame = Mix(seed).frame();
        let bytes = frame.encode();
        let mut r = &bytes[..];
        let back = Frame::read_from(&mut r).expect("own encoding decodes");
        prop_assert_eq!(back, frame);
        prop_assert!(r.is_empty(), "no bytes left behind");
    }

    /// Arbitrary garbage never panics or hangs the reader.
    #[test]
    fn random_garbage_is_rejected_gracefully(seed in 0u64..1u64 << 48) {
        let mut mix = Mix(seed);
        let len = mix.below(64);
        let bytes: Vec<u8> = (0..len).map(|_| mix.next() as u8).collect();
        let mut r = &bytes[..];
        // Either it happens to parse, or it errors — it must return.
        let _ = Frame::read_from(&mut r);
    }

    /// A valid encoding with one byte flipped, or truncated anywhere,
    /// decodes to *something* or errors cleanly — never a panic.
    #[test]
    fn mutated_valid_frames_never_panic(seed in 0u64..1u64 << 48) {
        let mut mix = Mix(seed);
        let mut bytes = mix.frame().encode();
        if mix.next().is_multiple_of(2) {
            let at = mix.below(bytes.len());
            bytes[at] ^= 1 << mix.below(8);
        } else {
            bytes.truncate(mix.below(bytes.len() + 1));
        }
        let mut r = &bytes[..];
        match Frame::read_from(&mut r) {
            Ok(_) => {}
            Err(WireError::Io(_)) | Err(WireError::Protocol(_)) => {}
        }
    }
}
