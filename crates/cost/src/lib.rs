//! Cost model and physical planning.
//!
//! The paper's Algorithm 1 produces *free information* — provable
//! duplicate-freeness and key coverage — that the executor can exploit
//! beyond rewrite-time `DISTINCT` removal. This crate turns that
//! information into numbers:
//!
//! * [`stats`] — a statistics collector over a
//!   [`Database`](uniq_catalog::Database): per-table row counts and
//!   per-column distinct-value/null counts, with declared single-column
//!   candidate keys short-circuiting to exact `ndv = rows − nulls`
//!   without building a hash set.
//! * [`estimate`] — a cardinality estimator for bound query blocks:
//!   Type-1 (`col = const`) and Type-2 (`col = col`) conjunct
//!   selectivities, join output estimates, and *uniqueness-derived hard
//!   upper bounds* (a block Algorithm 1 / the FD test proves
//!   duplicate-free emits at most the product of its projected columns'
//!   domains; a join whose keys cover a candidate key of the inner table
//!   emits at most the outer side).
//! * [`planner`] — a cost-based physical planner replacing the
//!   session-global `ExecOptions` defaults with per-node choices: hash
//!   vs. sort distinct, hash vs. nested-loop join, and join input
//!   ordering by estimated size.
//! * [`physical`] — the physical-plan IR the executor consumes, with an
//!   operator registry carrying estimates so `EXPLAIN` can print
//!   `est=… act=…` per operator.
//! * [`sarg`] — sargability analysis matching `WHERE` conjuncts to
//!   secondary indexes: point/range extraction for `IxScan` access
//!   paths and probe-key derivation for `IxJoin` steps, shared with the
//!   executor's run-time re-verification.
//! * [`card`] — per-operator estimated-vs-actual reports and q-error
//!   aggregation for batch runs.
//!
//! Costs are expressed in the executor's own work units
//! (`rows_scanned`, `sort_comparisons`, `hash_probes`), so "cheaper by
//! the model" is falsifiable against `ExecStats` — experiment E16 does
//! exactly that.

pub mod card;
pub mod estimate;
pub mod physical;
pub mod planner;
pub mod sarg;
pub mod stats;

pub use card::{CardReport, CardRow, QErrorStats};
pub use estimate::Estimator;
pub use physical::{
    BlockPlan, Degree, DistinctMethod, DistinctStep, JoinMethod, JoinStep, OpId, OpInfo, OutputOp,
    PhysNode, PhysicalPlan,
};
pub use planner::{early_stop_license, plan_output, plan_query, PlannerOptions};
pub use sarg::{find_index_probe, find_index_sarg, IndexProbe, IndexSarg, ProbeSource};
pub use stats::{ColumnStats, Statistics, TableStats};
pub use uniq_proof::{Justification, ProofStatus};
