//! Estimated-vs-actual cardinality reports and q-error aggregation.
//!
//! The **q-error** of one operator is `max(est, act) / min(est, act)`
//! with both sides floored at one row — the standard symmetric measure
//! of estimation quality (1.0 is perfect, 2.0 means off by at most 2×
//! in either direction). `BatchReport` folds these across a whole run.

/// One operator's estimate paired with its measured actual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardRow {
    /// Operator label (as rendered by `EXPLAIN`).
    pub op: String,
    /// Estimated output rows.
    pub est: u64,
    /// Actual output rows measured by the executor.
    pub act: u64,
}

impl CardRow {
    /// The operator's q-error (≥ 1.0).
    pub fn q_error(&self) -> f64 {
        let est = self.est.max(1) as f64;
        let act = self.act.max(1) as f64;
        est.max(act) / est.min(act)
    }
}

/// Per-operator estimates vs. actuals for one executed query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CardReport {
    /// One entry per physical operator, in registry order.
    pub rows: Vec<CardRow>,
}

impl CardReport {
    /// The worst q-error across operators (1.0 for an empty report).
    pub fn max_q_error(&self) -> f64 {
        self.rows.iter().map(|r| r.q_error()).fold(1.0, f64::max)
    }
}

/// Running q-error aggregate over many operators (e.g. a whole batch).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QErrorStats {
    /// Operators measured.
    pub ops: u64,
    /// Sum of per-operator q-errors.
    pub sum: f64,
    /// Worst per-operator q-error observed.
    pub max: f64,
}

impl QErrorStats {
    /// Fold in one query's report.
    pub fn record(&mut self, report: &CardReport) {
        for row in &report.rows {
            let q = row.q_error();
            self.ops += 1;
            self.sum += q;
            self.max = self.max.max(q);
        }
    }

    /// Accumulate another aggregate into this one.
    pub fn absorb(&mut self, other: &QErrorStats) {
        self.ops += other.ops;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean per-operator q-error (0.0 when nothing was measured).
    pub fn mean(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.sum / self.ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(u64, u64)]) -> CardReport {
        CardReport {
            rows: pairs
                .iter()
                .map(|&(est, act)| CardRow {
                    op: "Op".into(),
                    est,
                    act,
                })
                .collect(),
        }
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        let r = report(&[(10, 5), (5, 10), (0, 0)]);
        assert_eq!(r.rows[0].q_error(), 2.0);
        assert_eq!(r.rows[1].q_error(), 2.0);
        assert_eq!(r.rows[2].q_error(), 1.0, "empty operators are perfect");
        assert_eq!(r.max_q_error(), 2.0);
    }

    #[test]
    fn aggregation_tracks_mean_and_max() {
        let mut agg = QErrorStats::default();
        agg.record(&report(&[(4, 4), (8, 2)]));
        let mut other = QErrorStats::default();
        other.record(&report(&[(3, 9)]));
        agg.absorb(&other);
        assert_eq!(agg.ops, 3);
        assert_eq!(agg.max, 4.0);
        assert!((agg.mean() - (1.0 + 4.0 + 3.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        assert_eq!(QErrorStats::default().mean(), 0.0);
    }
}
