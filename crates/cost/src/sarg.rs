//! Sargability analysis: matching `WHERE`-clause conjuncts to secondary
//! indexes.
//!
//! A conjunct is *sargable* for an index when it constrains a leading
//! index column to a constant (`col = literal`, `col = :hostvar`) or —
//! on an ordered index — bounds the column following the point-bound
//! prefix (`<`, `<=`, `>`, `>=`, or a non-negated `BETWEEN`). The
//! extraction here is shared by the planner (to *choose* an
//! `IxScan`/`IxJoin` license — a
//! [`Justification::IndexAccess`](uniq_proof::Justification)) and by the
//! executor
//! (to *re-derive* the probe at run time against the live catalog: the
//! plan's index annotation is a license, not a promise — if the
//! re-derivation disagrees with the plan, the executor falls back to
//! the planned scan or join method and stays correct).
//!
//! Soundness contract: a probe or range scan built from an
//! [`IndexSarg`] returns a **superset-free, subset-free** match — the
//! exact set of rows satisfying the consumed conjuncts under `WHERE`
//! `=` semantics (`NULL` never matches a point or range bound). The
//! executor still evaluates every conjunct over the returned rows, so
//! even an imprecise extraction could only cost work, never rows.

use std::collections::BTreeMap;
use uniq_catalog::IndexDef;
use uniq_plan::{BScalar, BoundExpr, BoundSpec};
use uniq_sql::CmpOp;

/// A sargable access path for one table's initial scan: point constants
/// for the leading index columns, plus an optional range on the next.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSarg {
    /// Name of the matched index.
    pub index: String,
    /// The matched index is ordered (`USING BTREE`).
    pub ordered: bool,
    /// The matched index is unique **and** fully point-bound: the probe
    /// returns at most one row (the paper's `=̇` special-value reading
    /// of `UNIQUE` makes this a hard bound, not an estimate).
    pub unique: bool,
    /// Point constants for the leading index columns, declaration
    /// order. Resolved to [`Value`](uniq_types::Value)s at run time
    /// (host variables bind then).
    pub prefix: Vec<BScalar>,
    /// Lower bound on the column after the prefix (`scalar`,
    /// `inclusive`).
    pub low: Option<(BScalar, bool)>,
    /// Upper bound on the column after the prefix.
    pub high: Option<(BScalar, bool)>,
    /// Human-readable predicate fragment, e.g. `SNO=3,PNO>=2` — what
    /// `EXPLAIN` prints inside `ixscan(…)`.
    pub desc: String,
}

impl IndexSarg {
    /// Does the sarg bind every column of `def` to a point constant?
    /// (Then a point probe suffices; otherwise a range scan runs.)
    pub fn full_point(&self, def: &IndexDef) -> bool {
        self.low.is_none() && self.high.is_none() && self.prefix.len() == def.columns.len()
    }
}

/// Where one component of an index-join probe key comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeSource {
    /// A product attribute already bound by earlier pipeline steps
    /// (a join-equality conjunct supplied it).
    Outer(usize),
    /// A constant scalar from a point conjunct on the probed table.
    Const(BScalar),
}

/// An index-nested-loop probe for one join step: every column of the
/// index is supplied per outer row, at least one from the outer side.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexProbe {
    /// Name of the probed index.
    pub index: String,
    /// The probed index is unique: each probe matches at most one row,
    /// costing exactly one probe step (no chain to walk).
    pub unique: bool,
    /// Per index column (declaration order), its probe-key source.
    pub sources: Vec<ProbeSource>,
}

/// Per-column constraints accumulated from one table's conjuncts.
#[derive(Default, Clone)]
struct ColBounds {
    point: Option<BScalar>,
    low: Option<(BScalar, bool)>,
    high: Option<(BScalar, bool)>,
}

/// A scalar that is constant for the whole scan: a literal or a host
/// variable. (Correlated outer attributes never appear in plannable
/// top-level blocks.)
fn const_scalar(s: &BScalar) -> Option<BScalar> {
    match s {
        BScalar::Literal(_) | BScalar::HostVar(_) => Some(s.clone()),
        BScalar::Attr(_) => None,
    }
}

fn scalar_desc(s: &BScalar) -> String {
    match s {
        BScalar::Literal(v) => v.to_string(),
        BScalar::HostVar(h) => format!(":{h}"),
        BScalar::Attr(_) => "?".into(),
    }
}

/// Collect per-column point/range constraints on table `t` from this
/// level's conjuncts. Keys are table-local column positions.
fn collect_bounds(
    spec: &BoundSpec,
    t: usize,
    conjuncts: &[&BoundExpr],
) -> BTreeMap<usize, ColBounds> {
    let range = spec.from[t].attr_range();
    let mut bounds: BTreeMap<usize, ColBounds> = BTreeMap::new();
    let local_col = |s: &BScalar| match s {
        BScalar::Attr(a) if a.is_local() && range.contains(&a.idx) => Some(a.idx - range.start),
        _ => None,
    };
    for c in conjuncts {
        match c {
            BoundExpr::Cmp { op, left, right } => {
                // Normalize to `col <op> const`.
                let (col, val, op) = match (local_col(left), local_col(right)) {
                    (Some(col), None) => match const_scalar(right) {
                        Some(v) => (col, v, *op),
                        None => continue,
                    },
                    (None, Some(col)) => match const_scalar(left) {
                        Some(v) => (col, v, flip_cmp(*op)),
                        None => continue,
                    },
                    _ => continue,
                };
                let slot = bounds.entry(col).or_default();
                match op {
                    CmpOp::Eq => {
                        slot.point.get_or_insert(val);
                    }
                    CmpOp::Lt => {
                        slot.high.get_or_insert((val, false));
                    }
                    CmpOp::Le => {
                        slot.high.get_or_insert((val, true));
                    }
                    CmpOp::Gt => {
                        slot.low.get_or_insert((val, false));
                    }
                    CmpOp::Ge => {
                        slot.low.get_or_insert((val, true));
                    }
                    CmpOp::Ne => {}
                }
            }
            BoundExpr::Between {
                scalar,
                low,
                high,
                negated: false,
            } => {
                let Some(col) = local_col(scalar) else {
                    continue;
                };
                let (Some(lo), Some(hi)) = (const_scalar(low), const_scalar(high)) else {
                    continue;
                };
                let slot = bounds.entry(col).or_default();
                slot.low.get_or_insert((lo, true));
                slot.high.get_or_insert((hi, true));
            }
            _ => {}
        }
    }
    bounds
}

/// Mirror a comparison across `=`: `const <op> col` ⇒ `col <op'> const`.
fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// Find the best sargable index for scanning table `t` under this
/// level's conjuncts: longest point-bound prefix, preferring a unique
/// fully-bound probe (hard one-row bound), then a trailing range. A
/// hash index qualifies only when fully point-bound; an ordered index
/// also with a shorter prefix or a leading-column range.
pub fn find_index_sarg(spec: &BoundSpec, t: usize, conjuncts: &[&BoundExpr]) -> Option<IndexSarg> {
    let schema = &spec.from[t].schema;
    let bounds = collect_bounds(spec, t, conjuncts);
    let mut best: Option<(IndexSarg, (bool, usize, bool))> = None;
    for def in &schema.indexes {
        let mut prefix = Vec::new();
        let mut desc: Vec<String> = Vec::new();
        for &col in &def.columns {
            let Some(p) = bounds.get(&col).and_then(|b| b.point.clone()) else {
                break;
            };
            desc.push(format!("{}={}", schema.columns[col].name, scalar_desc(&p)));
            prefix.push(p);
        }
        let full = prefix.len() == def.columns.len();
        if !def.ordered && !full {
            continue; // a hash index answers only complete point probes
        }
        let (mut low, mut high) = (None, None);
        if !full && def.ordered {
            let next = def.columns[prefix.len()];
            if let Some(b) = bounds.get(&next) {
                let name = &schema.columns[next].name;
                if let Some((v, inc)) = &b.low {
                    desc.push(format!(
                        "{name}{}{}",
                        if *inc { ">=" } else { ">" },
                        scalar_desc(v)
                    ));
                    low = b.low.clone();
                }
                if let Some((v, inc)) = &b.high {
                    desc.push(format!(
                        "{name}{}{}",
                        if *inc { "<=" } else { "<" },
                        scalar_desc(v)
                    ));
                    high = b.high.clone();
                }
            }
        }
        if prefix.is_empty() && low.is_none() && high.is_none() {
            continue; // nothing sargable for this index
        }
        let unique = def.unique && full;
        let score = (unique, prefix.len(), low.is_some() || high.is_some());
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((
                IndexSarg {
                    index: def.name.clone(),
                    ordered: def.ordered,
                    unique,
                    prefix,
                    low,
                    high,
                    desc: desc.join(","),
                },
                score,
            ));
        }
    }
    best.map(|(s, _)| s)
}

/// Is `c` an equality conjunct `placed_attr = new_attr` (either
/// direction) over the table occupying `range`? Returns
/// `(placed attr, new table-local column)`.
fn equi_probe_key(
    c: &BoundExpr,
    range: &std::ops::Range<usize>,
    is_placed: &dyn Fn(usize) -> bool,
) -> Option<(usize, usize)> {
    let BoundExpr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = c
    else {
        return None;
    };
    let (a, b) = match (left, right) {
        (BScalar::Attr(a), BScalar::Attr(b)) if a.is_local() && b.is_local() => (a.idx, b.idx),
        _ => return None,
    };
    match (range.contains(&a), range.contains(&b)) {
        (false, true) if is_placed(a) => Some((a, b - range.start)),
        (true, false) if is_placed(b) => Some((b, a - range.start)),
        _ => None,
    }
}

/// Find an index of table `t` every column of which is supplied by this
/// level's conjuncts — join equalities against already-placed tables
/// (`is_placed`) or point constants — with at least one join equality
/// (otherwise an [`IndexSarg`] scan applies, not a join probe). Prefers
/// a unique index: its probes are guaranteed one-row lookups.
pub fn find_index_probe(
    spec: &BoundSpec,
    t: usize,
    conjuncts: &[&BoundExpr],
    is_placed: &dyn Fn(usize) -> bool,
) -> Option<IndexProbe> {
    let schema = &spec.from[t].schema;
    let range = spec.from[t].attr_range();
    let mut supplied: BTreeMap<usize, ProbeSource> = BTreeMap::new();
    for c in conjuncts {
        if let Some((built, col)) = equi_probe_key(c, &range, is_placed) {
            supplied.entry(col).or_insert(ProbeSource::Outer(built));
        }
    }
    for (col, b) in collect_bounds(spec, t, conjuncts) {
        if let Some(p) = b.point {
            supplied.entry(col).or_insert(ProbeSource::Const(p));
        }
    }
    let mut best: Option<(IndexProbe, (bool, usize))> = None;
    for def in &schema.indexes {
        let sources: Option<Vec<ProbeSource>> = def
            .columns
            .iter()
            .map(|c| supplied.get(c).cloned())
            .collect();
        let Some(sources) = sources else { continue };
        if !sources.iter().any(|s| matches!(s, ProbeSource::Outer(_))) {
            continue;
        }
        // Prefer unique indexes, then narrow probe keys.
        let score = (def.unique, usize::MAX - sources.len());
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((
                IndexProbe {
                    index: def.name.clone(),
                    unique: def.unique,
                    sources,
                },
                score,
            ));
        }
    }
    best.map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::Database;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn indexed_db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER NOT NULL, B INTEGER, C VARCHAR, PRIMARY KEY (A));
             CREATE UNIQUE INDEX IDX_B ON T (B);
             CREATE INDEX IDX_BC ON T (B, C);
             CREATE INDEX IDX_HA ON T (A) USING HASH;",
        )
        .unwrap();
        db
    }

    fn sarg_of(db: &Database, sql: &str) -> Option<IndexSarg> {
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let spec = q.as_spec().unwrap();
        let conjuncts = spec.predicate.as_ref().map(|p| p.conjuncts()).unwrap();
        find_index_sarg(spec, 0, &conjuncts)
    }

    #[test]
    fn point_predicate_prefers_the_unique_index() {
        let db = indexed_db();
        let s = sarg_of(&db, "SELECT T.A FROM T WHERE T.B = 7").unwrap();
        assert_eq!(s.index, "IDX_B");
        assert!(s.unique, "fully bound unique index is a one-row probe");
        assert_eq!(s.desc, "B=7");
        assert_eq!(s.prefix.len(), 1);
    }

    #[test]
    fn prefix_plus_range_matches_the_composite_index() {
        let db = indexed_db();
        // A unique fully-bound probe beats a wider prefix+range match.
        let s = sarg_of(&db, "SELECT T.A FROM T WHERE T.B = 7 AND T.C >= 'M'").unwrap();
        assert_eq!(s.index, "IDX_B");
        assert!(s.unique);
        // With the leading column only point-bound on the composite,
        // the prefix extends into a range on the following column.
        let s = sarg_of(
            &db,
            "SELECT T.A FROM T WHERE T.C = 'x' AND T.B = 7 AND T.A < 4",
        );
        let s = s.unwrap();
        assert_eq!(s.index, "IDX_B", "unique full probe still preferred");
        let mut db2 = Database::new();
        db2.run_script(
            "CREATE TABLE W (X INTEGER, Y INTEGER);
             CREATE INDEX IDX_XY ON W (X, Y);",
        )
        .unwrap();
        let s = sarg_of(
            &db2,
            "SELECT W.X FROM W WHERE W.X = 1 AND W.Y >= 2 AND W.Y < 9",
        )
        .unwrap();
        assert_eq!(s.index, "IDX_XY");
        assert!(!s.unique);
        assert_eq!(s.prefix.len(), 1);
        assert!(s.low.is_some() && s.high.is_some());
        assert_eq!(s.desc, "X=1,Y>=2,Y<9");
    }

    #[test]
    fn between_and_reversed_comparisons_extract_ranges() {
        let db = indexed_db();
        let s = sarg_of(&db, "SELECT T.A FROM T WHERE T.B BETWEEN 2 AND 5").unwrap();
        assert_eq!(s.index, "IDX_B");
        assert!(!s.unique, "range probe is not a one-row lookup");
        assert!(s.prefix.is_empty());
        assert_eq!(s.desc, "B>=2,B<=5");
        // `10 > B` normalizes to `B < 10`.
        let s = sarg_of(&db, "SELECT T.A FROM T WHERE 10 > T.B").unwrap();
        assert_eq!(s.desc, "B<10");
    }

    #[test]
    fn hash_index_needs_a_full_point_probe() {
        let db = indexed_db();
        // A is only range-bound: the hash index on A cannot serve it,
        // and no ordered index leads with A.
        assert!(sarg_of(&db, "SELECT T.A FROM T WHERE T.A > 3").is_none());
        let s = sarg_of(&db, "SELECT T.A FROM T WHERE T.A = 3").unwrap();
        assert_eq!(s.index, "IDX_HA");
    }

    #[test]
    fn unsargable_shapes_yield_nothing() {
        let db = indexed_db();
        for sql in [
            "SELECT T.A FROM T WHERE T.B = 1 OR T.B = 2", // OR is no conjunct
            "SELECT T.A FROM T WHERE T.B <> 5",           // Ne never sargs
            "SELECT T.A FROM T WHERE T.C = 'x'",          // no index leads with C
            "SELECT T.A FROM T WHERE T.B NOT BETWEEN 2 AND 5", // negated
        ] {
            assert!(sarg_of(&db, sql).is_none(), "{sql}");
        }
    }

    #[test]
    fn join_probe_mixes_outer_attrs_and_constants() {
        let mut db = indexed_db();
        db.run_script("CREATE TABLE U (B INTEGER, C VARCHAR);")
            .unwrap();
        let q = bind_query(
            db.catalog(),
            &parse_query("SELECT T.A FROM U U, T T WHERE U.B = T.B AND T.C = 'x'").unwrap(),
        )
        .unwrap();
        let spec = q.as_spec().unwrap();
        let conjuncts = spec.predicate.as_ref().map(|p| p.conjuncts()).unwrap();
        let u_range = spec.from[0].attr_range();
        let probe = find_index_probe(spec, 1, &conjuncts, &|idx| u_range.contains(&idx)).unwrap();
        // The unique one-column index wins over the wider composite.
        assert_eq!(probe.index, "IDX_B");
        assert!(probe.unique);
        assert!(matches!(probe.sources[0], ProbeSource::Outer(_)));
        // Constants alone (no join equality) never form a join probe.
        let none = find_index_probe(spec, 1, &conjuncts, &|_| false);
        assert!(none.is_none());
    }
}
