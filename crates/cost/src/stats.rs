//! The statistics collector.
//!
//! One pass over each table yields, per column, the number of `NULL`s
//! and the number of distinct non-null values. Distinct counting
//! normally maintains a hash set, but a column that is by itself a
//! declared candidate key cannot repeat a non-null value (the catalog
//! enforces it on insert), so its `ndv` short-circuits to the exact
//! `rows − nulls` with no set at all — the declared constraint *is* the
//! statistic.

use std::collections::{BTreeMap, HashSet};
use uniq_catalog::Database;
use uniq_types::{TableName, Value};

/// Statistics for one column.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnStats {
    /// Distinct non-null values.
    pub ndv: u64,
    /// `NULL` occurrences.
    pub nulls: u64,
    /// Whether `ndv` came from a declared single-column candidate key
    /// (exact by constraint, no hash set was built).
    pub from_key: bool,
}

impl ColumnStats {
    /// The size of the column's active domain under `=̇` semantics:
    /// distinct non-null values, plus one bucket for `NULL` if any row
    /// is null (two `NULL`s are `=̇`-equal, so they share a bucket).
    pub fn domain(&self) -> u64 {
        self.ndv + u64::from(self.nulls > 0)
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Stored rows.
    pub rows: u64,
    /// Per-column statistics, indexed by column position.
    pub columns: Vec<ColumnStats>,
}

/// Collected statistics for a whole database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Statistics {
    tables: BTreeMap<TableName, TableStats>,
    /// The catalog version the statistics were collected against.
    pub catalog_version: u64,
}

impl Statistics {
    /// Scan every table of `db` once and collect statistics.
    pub fn collect(db: &Database) -> Statistics {
        let mut tables = BTreeMap::new();
        for schema in db.catalog().tables() {
            let rows = db.rows(&schema.name).unwrap_or(&[]);
            let arity = schema.arity();
            // Columns that alone form a candidate key never repeat a
            // non-null value: skip the set and count exactly.
            let keyed: Vec<bool> = (0..arity)
                .map(|c| schema.candidate_keys().any(|k| k.columns == [c]))
                .collect();
            let mut nulls = vec![0u64; arity];
            let mut sets: Vec<HashSet<&Value>> = (0..arity).map(|_| HashSet::new()).collect();
            for row in rows {
                for (c, v) in row.iter().enumerate() {
                    if v.is_null() {
                        nulls[c] += 1;
                    } else if !keyed[c] {
                        sets[c].insert(v);
                    }
                }
            }
            let columns = (0..arity)
                .map(|c| ColumnStats {
                    ndv: if keyed[c] {
                        rows.len() as u64 - nulls[c]
                    } else {
                        sets[c].len() as u64
                    },
                    nulls: nulls[c],
                    from_key: keyed[c],
                })
                .collect();
            tables.insert(
                schema.name.clone(),
                TableStats {
                    rows: rows.len() as u64,
                    columns,
                },
            );
        }
        Statistics {
            tables,
            catalog_version: db.version(),
        }
    }

    /// Statistics for one table, if collected.
    pub fn table(&self, name: &TableName) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Statistics for one column, if collected.
    pub fn column(&self, name: &TableName, position: usize) -> Option<&ColumnStats> {
        self.tables.get(name)?.columns.get(position)
    }

    /// Number of tables with statistics.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no statistics were collected.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_database;

    #[test]
    fn figure_1_statistics_are_exact() {
        let db = supplier_database().unwrap();
        let stats = Statistics::collect(&db);
        let sup = stats.table(&"SUPPLIER".into()).unwrap();
        assert_eq!(sup.rows, 5);
        // SNO is the primary key: exact ndv via the constraint shortcut.
        assert_eq!(sup.columns[0].ndv, 5);
        assert!(sup.columns[0].from_key);
        // SNAME has a duplicate ("Acme" twice) → 4 distinct names.
        assert_eq!(sup.columns[1].ndv, 4);
        assert!(!sup.columns[1].from_key);
        let parts = stats.table(&"PARTS".into()).unwrap();
        assert_eq!(parts.rows, 7);
        // COLOR: RED, GREEN, BLUE.
        let color = parts.columns[4];
        assert_eq!(color.ndv, 3);
        assert_eq!(color.nulls, 0);
        // OEM-PNO is a declared single-column candidate key with one
        // NULL: the shortcut counts rows − nulls = 6 exactly, and the
        // NULL claims a domain bucket under =̇.
        let oem = parts.columns[3];
        assert!(oem.from_key);
        assert_eq!(oem.ndv, 6);
        assert_eq!(oem.nulls, 1);
        assert_eq!(oem.domain(), 7);
    }

    #[test]
    fn version_recorded_and_lookup_misses_are_none() {
        let db = supplier_database().unwrap();
        let stats = Statistics::collect(&db);
        assert_eq!(stats.catalog_version, db.version());
        assert!(stats.table(&"NOPE".into()).is_none());
        assert!(stats.column(&"SUPPLIER".into(), 99).is_none());
        assert_eq!(stats.len(), 3);
        assert!(!stats.is_empty());
    }

    #[test]
    fn key_shortcut_matches_exhaustive_count() {
        // Recounting SUPPLIER.SNO exhaustively must agree with the
        // declared-key shortcut.
        let db = supplier_database().unwrap();
        let stats = Statistics::collect(&db);
        let rows = db.rows(&"SUPPLIER".into()).unwrap();
        let exhaustive: HashSet<&Value> = rows
            .iter()
            .map(|r| &r[0])
            .filter(|v| !v.is_null())
            .collect();
        assert_eq!(
            stats.column(&"SUPPLIER".into(), 0).unwrap().ndv,
            exhaustive.len() as u64
        );
    }
}
