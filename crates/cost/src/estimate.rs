//! The cardinality estimator.
//!
//! Selectivities follow the classic System R catalogue, adapted to the
//! paper's vocabulary: a Type-1 conjunct (`col = const`) selects
//! `1/ndv(col)` of its table, a Type-2 conjunct (`col = col`) selects
//! `1/max(ndv, ndv)` of the cross product, ranges select a third,
//! `IS NULL` selects the measured null fraction, and `AND`/`OR`/`NOT`
//! combine under independence. Subquery predicates are opaque and get
//! the neutral `1/2`.
//!
//! On top of the guesses sit two *provable* facts:
//!
//! * [`Estimator::unique_output_bound`] — if Algorithm 1 or the
//!   FD-closure test proves a block duplicate-free, its output tuples
//!   are pairwise distinct over the projected columns, so the output
//!   cardinality is at most the product of those columns' active
//!   domains (`ndv + 1` for a nullable bucket, under `=̇`). No estimate,
//!   however wrong, may exceed it.
//! * key-covered joins (detected by the planner): if a join's equality
//!   keys cover a candidate key of the inner table, each outer row
//!   matches at most one inner row, so the join emits at most the outer
//!   side.

use crate::stats::{ColumnStats, Statistics};
use uniq_core::rewrite::distinct::{is_provably_unique, UniquenessTest};
use uniq_plan::{BScalar, BoundExpr, BoundQuery, BoundSpec};
use uniq_sql::{CmpOp, SetOp};
use uniq_types::TableName;

/// Rows assumed for a table with no collected statistics.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;
/// Distinct values assumed for a column with no collected statistics.
pub const DEFAULT_NDV: f64 = 10.0;
/// Selectivity of predicates the estimator cannot see through
/// (subqueries, comparisons between two constants, …).
pub const DEFAULT_SELECTIVITY: f64 = 0.5;
/// Selectivity of an inequality range conjunct (`<`, `<=`, `>`, `>=`).
pub const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Selectivity of a `BETWEEN` conjunct.
pub const BETWEEN_SELECTIVITY: f64 = 0.25;

/// Cardinality estimation over collected [`Statistics`].
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    stats: &'a Statistics,
}

impl<'a> Estimator<'a> {
    /// An estimator reading from `stats`.
    pub fn new(stats: &'a Statistics) -> Estimator<'a> {
        Estimator { stats }
    }

    /// Estimated row count of a stored table.
    pub fn table_rows(&self, name: &TableName) -> f64 {
        self.stats
            .table(name)
            .map(|t| t.rows as f64)
            .unwrap_or(DEFAULT_TABLE_ROWS)
    }

    /// Statistics for the column behind product attribute `idx` of
    /// `spec`, if collected.
    fn attr_column(&self, spec: &BoundSpec, idx: usize) -> Option<&ColumnStats> {
        let (table, position) = spec.attr_owner(idx)?;
        self.stats.column(&table.schema.name, position)
    }

    /// Distinct non-null values of attribute `idx`, at least one.
    pub fn attr_ndv(&self, spec: &BoundSpec, idx: usize) -> f64 {
        self.attr_column(spec, idx)
            .map(|c| (c.ndv as f64).max(1.0))
            .unwrap_or(DEFAULT_NDV)
    }

    /// Active-domain size of attribute `idx` under `=̇` (distinct
    /// non-null values plus a `NULL` bucket when the column has nulls),
    /// at least one.
    pub fn attr_domain(&self, spec: &BoundSpec, idx: usize) -> f64 {
        self.attr_column(spec, idx)
            .map(|c| (c.domain() as f64).max(1.0))
            .unwrap_or(DEFAULT_NDV)
    }

    /// Estimated selectivity of one predicate over the block's cross
    /// product, in `[0, 1]`.
    pub fn selectivity(&self, spec: &BoundSpec, e: &BoundExpr) -> f64 {
        let s = match e {
            BoundExpr::Cmp { op, left, right } => self.cmp_selectivity(spec, *op, left, right),
            BoundExpr::Between { negated, .. } => flip(BETWEEN_SELECTIVITY, *negated),
            BoundExpr::InList {
                scalar,
                list,
                negated,
            } => {
                let s = match local_attr(scalar) {
                    Some(idx) => (list.len() as f64 / self.attr_ndv(spec, idx)).min(1.0),
                    None => DEFAULT_SELECTIVITY,
                };
                flip(s, *negated)
            }
            BoundExpr::IsNull { scalar, negated } => {
                let s = local_attr(scalar)
                    .and_then(|idx| {
                        let (table, position) = spec.attr_owner(idx)?;
                        let stats = self.stats.table(&table.schema.name)?;
                        let col = stats.columns.get(position)?;
                        Some(if stats.rows == 0 {
                            0.0
                        } else {
                            col.nulls as f64 / stats.rows as f64
                        })
                    })
                    .unwrap_or(DEFAULT_SELECTIVITY);
                flip(s, *negated)
            }
            // Subquery membership is opaque to the estimator.
            BoundExpr::Exists { .. } | BoundExpr::InSubquery { .. } => DEFAULT_SELECTIVITY,
            BoundExpr::And(a, b) => self.selectivity(spec, a) * self.selectivity(spec, b),
            BoundExpr::Or(a, b) => {
                let (sa, sb) = (self.selectivity(spec, a), self.selectivity(spec, b));
                sa + sb - sa * sb
            }
            BoundExpr::Not(a) => 1.0 - self.selectivity(spec, a),
        };
        s.clamp(0.0, 1.0)
    }

    fn cmp_selectivity(&self, spec: &BoundSpec, op: CmpOp, left: &BScalar, right: &BScalar) -> f64 {
        match op {
            CmpOp::Eq | CmpOp::Ne => {
                let s = match (local_attr(left), local_attr(right)) {
                    // Type-2: col = col → 1/max(ndv, ndv).
                    (Some(l), Some(r)) => 1.0 / self.attr_ndv(spec, l).max(self.attr_ndv(spec, r)),
                    // Type-1: col = const (literals, host variables and
                    // correlated outer attributes all bind to one value
                    // per evaluation). A NULL literal never matches.
                    (Some(idx), None) | (None, Some(idx)) => {
                        if is_null_literal(left) || is_null_literal(right) {
                            0.0
                        } else {
                            1.0 / self.attr_ndv(spec, idx)
                        }
                    }
                    (None, None) => DEFAULT_SELECTIVITY,
                };
                flip(s, op == CmpOp::Ne)
            }
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => RANGE_SELECTIVITY,
        }
    }

    /// Product of the projected columns' active domains — the largest
    /// number of pairwise-distinct output tuples the projection admits.
    pub fn projection_domain(&self, spec: &BoundSpec) -> f64 {
        spec.projection
            .iter()
            .map(|p| self.attr_domain(spec, p.attr))
            .product()
    }

    /// The uniqueness-derived hard upper bound on the block's output
    /// cardinality: `Some(Π domain(projected column))` when Algorithm 1
    /// or the FD-closure test proves the block duplicate-free, `None`
    /// otherwise. Provably sound: a duplicate-free block's output rows
    /// are pairwise distinct tuples over the projected columns, and
    /// there are only that many such tuples drawn from the stored
    /// (active) domains.
    pub fn unique_output_bound(&self, spec: &BoundSpec) -> Option<f64> {
        is_provably_unique(spec, UniquenessTest::Both)?;
        Some(self.projection_domain(spec))
    }

    /// Per-output-column active-domain sizes of a whole query tree —
    /// the SPJU extension of [`Estimator::projection_domain`]. A block
    /// contributes its projected columns' stored domains; a set
    /// operation combines the operands' domains column-wise: a `UNION`
    /// output value comes from either side (`dom_l + dom_r` is an upper
    /// bound on the merged value set), an `INTERSECT` value from both
    /// (`min`), an `EXCEPT` value only from the left. `ALL` never
    /// changes the domains — only how many copies of each value
    /// survive.
    pub fn output_domains(&self, query: &BoundQuery) -> Vec<f64> {
        match query {
            BoundQuery::Spec(spec) => spec
                .projection
                .iter()
                .map(|p| self.attr_domain(spec, p.attr))
                .collect(),
            BoundQuery::SetOp {
                op, left, right, ..
            } => {
                let l = self.output_domains(left);
                let r = self.output_domains(right);
                l.iter()
                    .zip(&r)
                    .map(|(a, b)| match op {
                        SetOp::Union => a + b,
                        SetOp::Intersect => a.min(*b),
                        SetOp::Except => *a,
                    })
                    .collect()
            }
        }
    }

    /// The uniqueness-derived **hard** upper bound on a whole query
    /// tree's output cardinality, `UNION`-aware (Chen–Schneider SPJU
    /// bounds). Every arm is provable, never a guess:
    ///
    /// * a block is bounded when it is duplicate-free — declared
    ///   `DISTINCT` or proved by [`Estimator::unique_output_bound`] —
    ///   by the product of its projected domains;
    /// * `UNION ALL` concatenates: the sum of the operand bounds, when
    ///   both exist;
    /// * `UNION` (distinct) is duplicate-free *by definition*: bounded
    ///   by the product of its column-wise merged domains even when
    ///   neither operand has a bound of its own, and by the operand sum
    ///   when both do;
    /// * `INTERSECT [ALL]` emits `min(j, k)` copies per value: any
    ///   operand's bound caps it, plus the domain product when distinct;
    /// * `EXCEPT [ALL]` emits at most the left operand, plus the domain
    ///   product when distinct.
    pub fn query_hard_bound(&self, query: &BoundQuery) -> Option<f64> {
        match query {
            BoundQuery::Spec(spec) => {
                if spec.distinct == uniq_sql::Distinct::Distinct {
                    Some(self.projection_domain(spec))
                } else {
                    self.unique_output_bound(spec)
                }
            }
            BoundQuery::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let lb = self.query_hard_bound(left);
                let rb = self.query_hard_bound(right);
                let domains: f64 = self.output_domains(query).iter().product();
                match (op, all) {
                    (SetOp::Union, true) => Some(lb? + rb?),
                    (SetOp::Union, false) => Some(match (lb, rb) {
                        (Some(l), Some(r)) => (l + r).min(domains),
                        _ => domains,
                    }),
                    (SetOp::Intersect, all) => {
                        let side = match (lb, rb) {
                            (Some(l), Some(r)) => Some(l.min(r)),
                            (one, None) | (None, one) => one,
                        };
                        if *all {
                            side
                        } else {
                            Some(side.map_or(domains, |s| s.min(domains)))
                        }
                    }
                    (SetOp::Except, true) => lb,
                    (SetOp::Except, false) => Some(lb.map_or(domains, |l| l.min(domains))),
                }
            }
        }
    }
}

/// The product-attribute index a scalar reads, when it is an attribute
/// of the current block (not correlated, not a constant).
fn local_attr(s: &BScalar) -> Option<usize> {
    match s {
        BScalar::Attr(a) if a.is_local() => Some(a.idx),
        _ => None,
    }
}

fn is_null_literal(s: &BScalar) -> bool {
    matches!(s, BScalar::Literal(v) if v.is_null())
}

fn flip(s: f64, negated: bool) -> f64 {
    if negated {
        1.0 - s
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_database;
    use uniq_plan::{bind_query, BoundQuery};
    use uniq_sql::parse_query;

    fn spec_of(sql: &str) -> (Statistics, BoundQuery) {
        let db = supplier_database().unwrap();
        let stats = Statistics::collect(&db);
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        (stats, q)
    }

    fn first_conjunct_selectivity(sql: &str) -> f64 {
        let (stats, q) = spec_of(sql);
        let spec = q.as_spec().unwrap();
        let est = Estimator::new(&stats);
        let pred = spec.predicate.as_ref().unwrap();
        est.selectivity(spec, pred.conjuncts()[0])
    }

    #[test]
    fn type_1_selectivity_is_inverse_ndv() {
        // COLOR has 3 distinct values.
        let s = first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE P.COLOR = 'RED'");
        assert!((s - 1.0 / 3.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn type_2_selectivity_uses_larger_ndv() {
        // SUPPLIER.SNO has 5 distinct values, PARTS.SNO has 4.
        let s =
            first_conjunct_selectivity("SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
        assert!((s - 1.0 / 5.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn is_null_selectivity_is_measured_fraction() {
        // PARTS.OEM-PNO has exactly one NULL in seven rows.
        let s = first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE P.OEM-PNO IS NULL");
        assert!((s - 1.0 / 7.0).abs() < 1e-9, "{s}");
        let not_null =
            first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE P.OEM-PNO IS NOT NULL");
        assert!((not_null - 6.0 / 7.0).abs() < 1e-9, "{not_null}");
    }

    #[test]
    fn connectives_combine_independently() {
        let s = first_conjunct_selectivity(
            "SELECT P.PNO FROM PARTS P WHERE P.COLOR = 'RED' OR P.COLOR = 'BLUE'",
        );
        let one = 1.0 / 3.0;
        assert!((s - (one + one - one * one)).abs() < 1e-9, "{s}");
        let neg =
            first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE NOT (P.COLOR = 'RED')");
        assert!((neg - (1.0 - one)).abs() < 1e-9, "{neg}");
    }

    #[test]
    fn null_literal_comparison_selects_nothing() {
        let s = first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE P.COLOR = NULL");
        assert_eq!(s, 0.0);
    }

    #[test]
    fn unique_bound_present_exactly_when_provable() {
        // Projecting the whole PARTS key (SNO, PNO) → provably unique.
        let (stats, q) = spec_of("SELECT DISTINCT P.SNO, P.PNO FROM PARTS P");
        let est = Estimator::new(&stats);
        let bound = est.unique_output_bound(q.as_spec().unwrap()).unwrap();
        // Domains: SNO has 4 distinct values, PNO has 5 (10..14).
        assert_eq!(bound, 20.0);

        // Projecting COLOR alone → not provable, no bound.
        let (stats2, q2) = spec_of("SELECT DISTINCT P.COLOR FROM PARTS P");
        let est2 = Estimator::new(&stats2);
        assert!(est2.unique_output_bound(q2.as_spec().unwrap()).is_none());
    }

    #[test]
    fn fallbacks_without_statistics() {
        let stats = Statistics::default();
        let est = Estimator::new(&stats);
        assert_eq!(est.table_rows(&"GHOST".into()), DEFAULT_TABLE_ROWS);
    }

    #[test]
    fn union_domains_merge_columnwise() {
        // SCITY: 3 distinct cities; ACITY: 4. The merged UNION domain
        // is their sum.
        let (stats, q) =
            spec_of("SELECT S.SCITY FROM SUPPLIER S UNION SELECT A.ACITY FROM AGENTS A");
        let est = Estimator::new(&stats);
        assert_eq!(est.output_domains(&q), vec![7.0]);
        let BoundQuery::SetOp { left, right, .. } = &q else {
            panic!("expected setop");
        };
        assert_eq!(est.output_domains(left), vec![3.0]);
        assert_eq!(est.output_domains(right), vec![4.0]);
    }

    #[test]
    fn distinct_union_is_bounded_even_with_unbounded_operands() {
        // Neither operand block is distinct or provably unique, so
        // neither has a bound of its own — but UNION deduplicates, so
        // the merged domain product bounds the whole tree.
        let (stats, q) =
            spec_of("SELECT S.SCITY FROM SUPPLIER S UNION SELECT A.ACITY FROM AGENTS A");
        let est = Estimator::new(&stats);
        let BoundQuery::SetOp { left, .. } = &q else {
            panic!("expected setop");
        };
        assert!(est.query_hard_bound(left).is_none());
        assert_eq!(est.query_hard_bound(&q), Some(7.0));
    }

    #[test]
    fn union_all_needs_both_operand_bounds() {
        // UNION ALL concatenates — no dedup, so the domain product does
        // not apply and the bound exists only when both operands have
        // one (here: both blocks declared DISTINCT, bounded by their
        // projected domains 3 and 4).
        let (stats, q) =
            spec_of("SELECT S.SCITY FROM SUPPLIER S UNION ALL SELECT A.ACITY FROM AGENTS A");
        let est = Estimator::new(&stats);
        assert!(est.query_hard_bound(&q).is_none());
        let (stats2, q2) = spec_of(
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S \
             UNION ALL SELECT DISTINCT A.ACITY FROM AGENTS A",
        );
        let est2 = Estimator::new(&stats2);
        assert_eq!(est2.query_hard_bound(&q2), Some(7.0));
    }

    #[test]
    fn intersect_and_except_bounds_follow_their_semantics() {
        // INTERSECT over SNO: min domain is AGENTS' 4 distinct SNOs.
        let (stats, q) =
            spec_of("SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT A.SNO FROM AGENTS A");
        let est = Estimator::new(&stats);
        assert_eq!(est.query_hard_bound(&q), Some(4.0));
        // EXCEPT keeps the left domain (SUPPLIER's 5 SNOs).
        let (stats2, q2) =
            spec_of("SELECT S.SNO FROM SUPPLIER S EXCEPT SELECT A.SNO FROM AGENTS A");
        let est2 = Estimator::new(&stats2);
        assert_eq!(est2.query_hard_bound(&q2), Some(5.0));
        // EXCEPT ALL: bag semantics — only a left-operand bound carries
        // through. A key projection on the left has one (5)…
        let (stats3, q3) =
            spec_of("SELECT S.SNO FROM SUPPLIER S EXCEPT ALL SELECT A.SNO FROM AGENTS A");
        let est3 = Estimator::new(&stats3);
        assert_eq!(est3.query_hard_bound(&q3), Some(5.0));
        // …a non-key projection has none, and EXCEPT ALL adds nothing.
        let (stats4, q4) =
            spec_of("SELECT S.SCITY FROM SUPPLIER S EXCEPT ALL SELECT A.ACITY FROM AGENTS A");
        let est4 = Estimator::new(&stats4);
        assert!(est4.query_hard_bound(&q4).is_none());
    }

    #[test]
    fn provably_unique_block_is_bounded_without_a_distinct() {
        // SELECT S.SNO projects the key: duplicate-free without any
        // DISTINCT, so the block itself carries a hard bound.
        let (stats, q) = spec_of("SELECT S.SNO FROM SUPPLIER S");
        let est = Estimator::new(&stats);
        assert_eq!(est.query_hard_bound(&q), Some(5.0));
        // A non-key projection has no bound.
        let (stats2, q2) = spec_of("SELECT S.SCITY FROM SUPPLIER S");
        let est2 = Estimator::new(&stats2);
        assert!(est2.query_hard_bound(&q2).is_none());
    }
}
