//! The cardinality estimator.
//!
//! Selectivities follow the classic System R catalogue, adapted to the
//! paper's vocabulary: a Type-1 conjunct (`col = const`) selects
//! `1/ndv(col)` of its table, a Type-2 conjunct (`col = col`) selects
//! `1/max(ndv, ndv)` of the cross product, ranges select a third,
//! `IS NULL` selects the measured null fraction, and `AND`/`OR`/`NOT`
//! combine under independence. Subquery predicates are opaque and get
//! the neutral `1/2`.
//!
//! On top of the guesses sit two *provable* facts:
//!
//! * [`Estimator::unique_output_bound`] — if Algorithm 1 or the
//!   FD-closure test proves a block duplicate-free, its output tuples
//!   are pairwise distinct over the projected columns, so the output
//!   cardinality is at most the product of those columns' active
//!   domains (`ndv + 1` for a nullable bucket, under `=̇`). No estimate,
//!   however wrong, may exceed it.
//! * key-covered joins (detected by the planner): if a join's equality
//!   keys cover a candidate key of the inner table, each outer row
//!   matches at most one inner row, so the join emits at most the outer
//!   side.

use crate::stats::{ColumnStats, Statistics};
use uniq_core::rewrite::distinct::{is_provably_unique, UniquenessTest};
use uniq_plan::{BScalar, BoundExpr, BoundSpec};
use uniq_sql::CmpOp;
use uniq_types::TableName;

/// Rows assumed for a table with no collected statistics.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;
/// Distinct values assumed for a column with no collected statistics.
pub const DEFAULT_NDV: f64 = 10.0;
/// Selectivity of predicates the estimator cannot see through
/// (subqueries, comparisons between two constants, …).
pub const DEFAULT_SELECTIVITY: f64 = 0.5;
/// Selectivity of an inequality range conjunct (`<`, `<=`, `>`, `>=`).
pub const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Selectivity of a `BETWEEN` conjunct.
pub const BETWEEN_SELECTIVITY: f64 = 0.25;

/// Cardinality estimation over collected [`Statistics`].
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    stats: &'a Statistics,
}

impl<'a> Estimator<'a> {
    /// An estimator reading from `stats`.
    pub fn new(stats: &'a Statistics) -> Estimator<'a> {
        Estimator { stats }
    }

    /// Estimated row count of a stored table.
    pub fn table_rows(&self, name: &TableName) -> f64 {
        self.stats
            .table(name)
            .map(|t| t.rows as f64)
            .unwrap_or(DEFAULT_TABLE_ROWS)
    }

    /// Statistics for the column behind product attribute `idx` of
    /// `spec`, if collected.
    fn attr_column(&self, spec: &BoundSpec, idx: usize) -> Option<&ColumnStats> {
        let (table, position) = spec.attr_owner(idx)?;
        self.stats.column(&table.schema.name, position)
    }

    /// Distinct non-null values of attribute `idx`, at least one.
    pub fn attr_ndv(&self, spec: &BoundSpec, idx: usize) -> f64 {
        self.attr_column(spec, idx)
            .map(|c| (c.ndv as f64).max(1.0))
            .unwrap_or(DEFAULT_NDV)
    }

    /// Active-domain size of attribute `idx` under `=̇` (distinct
    /// non-null values plus a `NULL` bucket when the column has nulls),
    /// at least one.
    pub fn attr_domain(&self, spec: &BoundSpec, idx: usize) -> f64 {
        self.attr_column(spec, idx)
            .map(|c| (c.domain() as f64).max(1.0))
            .unwrap_or(DEFAULT_NDV)
    }

    /// Estimated selectivity of one predicate over the block's cross
    /// product, in `[0, 1]`.
    pub fn selectivity(&self, spec: &BoundSpec, e: &BoundExpr) -> f64 {
        let s = match e {
            BoundExpr::Cmp { op, left, right } => self.cmp_selectivity(spec, *op, left, right),
            BoundExpr::Between { negated, .. } => flip(BETWEEN_SELECTIVITY, *negated),
            BoundExpr::InList {
                scalar,
                list,
                negated,
            } => {
                let s = match local_attr(scalar) {
                    Some(idx) => (list.len() as f64 / self.attr_ndv(spec, idx)).min(1.0),
                    None => DEFAULT_SELECTIVITY,
                };
                flip(s, *negated)
            }
            BoundExpr::IsNull { scalar, negated } => {
                let s = local_attr(scalar)
                    .and_then(|idx| {
                        let (table, position) = spec.attr_owner(idx)?;
                        let stats = self.stats.table(&table.schema.name)?;
                        let col = stats.columns.get(position)?;
                        Some(if stats.rows == 0 {
                            0.0
                        } else {
                            col.nulls as f64 / stats.rows as f64
                        })
                    })
                    .unwrap_or(DEFAULT_SELECTIVITY);
                flip(s, *negated)
            }
            // Subquery membership is opaque to the estimator.
            BoundExpr::Exists { .. } | BoundExpr::InSubquery { .. } => DEFAULT_SELECTIVITY,
            BoundExpr::And(a, b) => self.selectivity(spec, a) * self.selectivity(spec, b),
            BoundExpr::Or(a, b) => {
                let (sa, sb) = (self.selectivity(spec, a), self.selectivity(spec, b));
                sa + sb - sa * sb
            }
            BoundExpr::Not(a) => 1.0 - self.selectivity(spec, a),
        };
        s.clamp(0.0, 1.0)
    }

    fn cmp_selectivity(&self, spec: &BoundSpec, op: CmpOp, left: &BScalar, right: &BScalar) -> f64 {
        match op {
            CmpOp::Eq | CmpOp::Ne => {
                let s = match (local_attr(left), local_attr(right)) {
                    // Type-2: col = col → 1/max(ndv, ndv).
                    (Some(l), Some(r)) => 1.0 / self.attr_ndv(spec, l).max(self.attr_ndv(spec, r)),
                    // Type-1: col = const (literals, host variables and
                    // correlated outer attributes all bind to one value
                    // per evaluation). A NULL literal never matches.
                    (Some(idx), None) | (None, Some(idx)) => {
                        if is_null_literal(left) || is_null_literal(right) {
                            0.0
                        } else {
                            1.0 / self.attr_ndv(spec, idx)
                        }
                    }
                    (None, None) => DEFAULT_SELECTIVITY,
                };
                flip(s, op == CmpOp::Ne)
            }
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => RANGE_SELECTIVITY,
        }
    }

    /// Product of the projected columns' active domains — the largest
    /// number of pairwise-distinct output tuples the projection admits.
    pub fn projection_domain(&self, spec: &BoundSpec) -> f64 {
        spec.projection
            .iter()
            .map(|p| self.attr_domain(spec, p.attr))
            .product()
    }

    /// The uniqueness-derived hard upper bound on the block's output
    /// cardinality: `Some(Π domain(projected column))` when Algorithm 1
    /// or the FD-closure test proves the block duplicate-free, `None`
    /// otherwise. Provably sound: a duplicate-free block's output rows
    /// are pairwise distinct tuples over the projected columns, and
    /// there are only that many such tuples drawn from the stored
    /// (active) domains.
    pub fn unique_output_bound(&self, spec: &BoundSpec) -> Option<f64> {
        is_provably_unique(spec, UniquenessTest::Both)?;
        Some(self.projection_domain(spec))
    }
}

/// The product-attribute index a scalar reads, when it is an attribute
/// of the current block (not correlated, not a constant).
fn local_attr(s: &BScalar) -> Option<usize> {
    match s {
        BScalar::Attr(a) if a.is_local() => Some(a.idx),
        _ => None,
    }
}

fn is_null_literal(s: &BScalar) -> bool {
    matches!(s, BScalar::Literal(v) if v.is_null())
}

fn flip(s: f64, negated: bool) -> f64 {
    if negated {
        1.0 - s
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_database;
    use uniq_plan::{bind_query, BoundQuery};
    use uniq_sql::parse_query;

    fn spec_of(sql: &str) -> (Statistics, BoundQuery) {
        let db = supplier_database().unwrap();
        let stats = Statistics::collect(&db);
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        (stats, q)
    }

    fn first_conjunct_selectivity(sql: &str) -> f64 {
        let (stats, q) = spec_of(sql);
        let spec = q.as_spec().unwrap();
        let est = Estimator::new(&stats);
        let pred = spec.predicate.as_ref().unwrap();
        est.selectivity(spec, pred.conjuncts()[0])
    }

    #[test]
    fn type_1_selectivity_is_inverse_ndv() {
        // COLOR has 3 distinct values.
        let s = first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE P.COLOR = 'RED'");
        assert!((s - 1.0 / 3.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn type_2_selectivity_uses_larger_ndv() {
        // SUPPLIER.SNO has 5 distinct values, PARTS.SNO has 4.
        let s =
            first_conjunct_selectivity("SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO");
        assert!((s - 1.0 / 5.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn is_null_selectivity_is_measured_fraction() {
        // PARTS.OEM-PNO has exactly one NULL in seven rows.
        let s = first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE P.OEM-PNO IS NULL");
        assert!((s - 1.0 / 7.0).abs() < 1e-9, "{s}");
        let not_null =
            first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE P.OEM-PNO IS NOT NULL");
        assert!((not_null - 6.0 / 7.0).abs() < 1e-9, "{not_null}");
    }

    #[test]
    fn connectives_combine_independently() {
        let s = first_conjunct_selectivity(
            "SELECT P.PNO FROM PARTS P WHERE P.COLOR = 'RED' OR P.COLOR = 'BLUE'",
        );
        let one = 1.0 / 3.0;
        assert!((s - (one + one - one * one)).abs() < 1e-9, "{s}");
        let neg =
            first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE NOT (P.COLOR = 'RED')");
        assert!((neg - (1.0 - one)).abs() < 1e-9, "{neg}");
    }

    #[test]
    fn null_literal_comparison_selects_nothing() {
        let s = first_conjunct_selectivity("SELECT P.PNO FROM PARTS P WHERE P.COLOR = NULL");
        assert_eq!(s, 0.0);
    }

    #[test]
    fn unique_bound_present_exactly_when_provable() {
        // Projecting the whole PARTS key (SNO, PNO) → provably unique.
        let (stats, q) = spec_of("SELECT DISTINCT P.SNO, P.PNO FROM PARTS P");
        let est = Estimator::new(&stats);
        let bound = est.unique_output_bound(q.as_spec().unwrap()).unwrap();
        // Domains: SNO has 4 distinct values, PNO has 5 (10..14).
        assert_eq!(bound, 20.0);

        // Projecting COLOR alone → not provable, no bound.
        let (stats2, q2) = spec_of("SELECT DISTINCT P.COLOR FROM PARTS P");
        let est2 = Estimator::new(&stats2);
        assert!(est2.unique_output_bound(q2.as_spec().unwrap()).is_none());
    }

    #[test]
    fn fallbacks_without_statistics() {
        let stats = Statistics::default();
        let est = Estimator::new(&stats);
        assert_eq!(est.table_rows(&"GHOST".into()), DEFAULT_TABLE_ROWS);
    }
}
