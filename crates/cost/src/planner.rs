//! The cost-based physical planner.
//!
//! For every query block the planner chooses a join input order
//! (greedy: start from the smallest filtered table, then repeatedly add
//! the table minimizing the estimated intermediate size) and, per
//! pipeline step, a physical method. Costs are expressed in the
//! executor's own counters so the model is falsifiable:
//!
//! * a nested-loop step re-scans its table once per outer partial →
//!   `outer × rows` scans;
//! * a hash step scans its table once to build and probes once per
//!   outer partial → `rows + outer`;
//! * a cross step (no equality keys) materializes the build side once →
//!   `rows` scans;
//! * sort-based duplicate elimination costs `n·log₂n` comparisons,
//!   hash-based costs `n` probes.
//!
//! Two provable caps tighten the estimates: a join whose equality keys
//! cover a candidate key of the incoming table emits at most the outer
//! side (each outer partial matches at most one row), and a block
//! proved duplicate-free by Algorithm 1 / the FD test emits at most the
//! product of its projected columns' active domains
//! ([`Estimator::unique_output_bound`]).

use crate::estimate::Estimator;
use crate::physical::{
    BlockPlan, Degree, DistinctMethod, DistinctStep, JoinMethod, JoinStep, OpId, OpInfo, OutputOp,
    PhysNode, PhysicalPlan,
};
use crate::stats::Statistics;
use std::collections::BTreeSet;
use uniq_plan::{AttrRef, BScalar, BoundAggItem, BoundExpr, BoundOutput, BoundQuery, BoundSpec};
use uniq_sql::{CmpOp, SetOp};

/// Per-morsel dispatch overhead expressed in row-work units: adding a
/// worker to an operator only pays off while every worker still owns at
/// least this much estimated work (thread hand-off, partition vectors
/// and result stitching all cost real time; see DESIGN.md §6).
pub const ROWS_PER_WORKER: f64 = 512.0;

/// Session-level planner configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerOptions {
    /// Use collected statistics to choose per-node physical operators;
    /// when `false`, the session's static `ExecOptions` apply.
    pub cost_based: bool,
    /// Worker budget for per-operator parallel-degree choices. The
    /// planner never exceeds it and scales each operator down to the
    /// degree its estimated work (already tightened by the
    /// uniqueness-derived cardinality caps) can amortize against
    /// [`ROWS_PER_WORKER`].
    pub degree: Degree,
    /// License blocks for the vectorized columnar executor when every
    /// conjunct and join step is covered by its kernels (see
    /// [`BlockPlan::columnar`]). Off by default: the row executor
    /// remains the oracle every columnar plan is checked against.
    pub columnar: bool,
}

/// Plan a bound (typically optimizer-rewritten) query against collected
/// statistics.
pub fn plan_query(query: &BoundQuery, stats: &Statistics, options: PlannerOptions) -> PhysicalPlan {
    let mut planner = Planner {
        est: Estimator::new(stats),
        ops: Vec::new(),
        max_deg: options.degree.resolve(),
        columnar: options.columnar,
    };
    let (root, _) = planner.plan_node(query);
    PhysicalPlan {
        root,
        output: Vec::new(),
        ops: planner.ops,
    }
}

/// Plan a full (optimizer-rewritten) query — body plus aggregation /
/// `ORDER BY` / `LIMIT` output operators — against collected statistics.
///
/// Output-operator estimates carry the uniqueness-derived hard bounds:
/// an aggregate can emit at most `min(input, Π dom(group col))` groups
/// — and *exactly* its input when the grouping was proof-elided (every
/// row is its own group); a limit emits at most `k`. When the `ORDER
/// BY` columns are an ascending prefix of an ordered index on a plain
/// single-table block, the sort is dropped entirely and the limit
/// carries an early-stop license: the executor walks the index in order
/// and stops after `k` emitted rows.
pub fn plan_output(
    output: &BoundOutput,
    stats: &Statistics,
    options: PlannerOptions,
) -> PhysicalPlan {
    let mut planner = Planner {
        est: Estimator::new(stats),
        ops: Vec::new(),
        max_deg: options.degree.resolve(),
        columnar: options.columnar,
    };
    let (root, body_est) = planner.plan_node(&output.body);
    let mut est = body_est;
    let mut out_ops: Vec<OutputOp> = Vec::new();

    if let Some(agg) = &output.agg {
        // Group-count hard bound: the distinct group tuples cannot
        // exceed the product of the grouping columns' active domains.
        // A proof-elided grouping emits exactly its input; an empty
        // group set produces the one global group even on empty input.
        est = if agg.group_count == 0 {
            1.0
        } else if agg.group_elided {
            body_est
        } else {
            let dom = output
                .body
                .as_spec()
                .map(|spec| {
                    (0..agg.group_count)
                        .map(|p| planner.est.attr_domain(spec, spec.projection[p].attr))
                        .product::<f64>()
                })
                .unwrap_or(f64::INFINITY);
            body_est.min(dom)
        };
        let cols: Vec<String> = agg
            .items
            .iter()
            .map(|item| agg_item_label(output, item))
            .collect();
        // The aggregate touches every input row once, elided or not —
        // that work amortizes the parallel partial-aggregate pass.
        let deg = planner.op_degree(body_est);
        let id = planner.op(format!("Aggregate [{}]", cols.join(", ")), est, deg);
        out_ops.push(OutputOp::Agg {
            id,
            deg,
            group_elided: agg.group_elided,
            count_distinct_elided: agg.count_distinct_elided,
        });
    }

    let early_stop = early_stop_license(output);
    if !output.order_by.is_empty() && early_stop.is_none() {
        let names = output.output_names();
        let cols: Vec<String> = output
            .order_by
            .iter()
            .map(|(p, desc)| format!("{}{}", names[*p], if *desc { " DESC" } else { "" }))
            .collect();
        let id = planner.op(format!("Sort [{}]", cols.join(", ")), est, 1);
        out_ops.push(OutputOp::Sort { id });
    }

    if let Some(k) = output.limit {
        est = est.min(k as f64);
        let id = planner.op(format!("Limit {k}"), est, 1);
        out_ops.push(OutputOp::Limit { id, early_stop });
    }

    PhysicalPlan {
        root,
        output: out_ops,
        ops: planner.ops,
    }
}

/// Display label of one aggregate output item, e.g. `SNO`,
/// `COUNT(DISTINCT S.SNO)`, `SUM(P.WEIGHT)`, `COUNT(*)`.
fn agg_item_label(output: &BoundOutput, item: &BoundAggItem) -> String {
    match item {
        BoundAggItem::Group { name, .. } => name.to_string(),
        BoundAggItem::Agg {
            func,
            distinct,
            arg,
            ..
        } => {
            let arg_s = match (arg, output.body.as_spec()) {
                (Some(p), Some(spec)) => spec.attr_name(spec.projection[*p].attr),
                (None, _) => "*".into(),
                (Some(_), None) => "?".into(),
            };
            format!(
                "{}({}{arg_s})",
                func.name(),
                if *distinct { "DISTINCT " } else { "" }
            )
        }
    }
}

/// License the `ORDER BY key-prefix LIMIT k` early stop: the output is
/// a plain (no aggregate, `SELECT ALL`) single-table block, every
/// `ORDER BY` column is ascending, and the ordered columns form a
/// prefix of an ordered (B-tree) index's column list — walking that
/// index in canonical order (`NULL`s first, matching the engine's total
/// order) yields rows already sorted, so the scan may stop as soon as
/// `k` rows pass the residual filter.
///
/// Public because the license is re-derived: the executor calls this
/// again at run time against the (possibly newer) bound schema and only
/// takes the early-stop path when the re-derivation still names the
/// planned index — a cached plan can outlive an index drop.
pub fn early_stop_license(output: &BoundOutput) -> Option<uniq_proof::Justification> {
    output.limit?;
    if output.agg.is_some() || output.order_by.is_empty() {
        return None;
    }
    let spec = output.body.as_spec()?;
    if spec.distinct != uniq_sql::Distinct::All || spec.from.len() != 1 {
        return None;
    }
    if output.order_by.iter().any(|(_, desc)| *desc) {
        return None;
    }
    let table = &spec.from[0];
    let range = table.attr_range();
    let mut cols = Vec::new();
    for (p, _) in &output.order_by {
        let attr = spec.projection.get(*p)?.attr;
        if !range.contains(&attr) {
            return None;
        }
        cols.push(attr - range.start);
    }
    table.schema.indexes.iter().find_map(|def| {
        (def.ordered && def.columns.len() >= cols.len() && def.columns[..cols.len()] == cols[..])
            .then(|| {
                let desc: Vec<&str> = cols
                    .iter()
                    .map(|&c| table.schema.columns[c].name.as_str())
                    .collect();
                uniq_proof::Justification::ix_scan(&def.name, def.unique, desc.join(","))
            })
    })
}

struct Planner<'a> {
    est: Estimator<'a>,
    ops: Vec<OpInfo>,
    max_deg: usize,
    columnar: bool,
}

impl Planner<'_> {
    fn op(&mut self, label: String, est: f64, deg: usize) -> OpId {
        let id = self.ops.len();
        self.ops.push(OpInfo {
            label,
            est: est.min(u64::MAX as f64).ceil() as u64,
            deg,
        });
        id
    }

    /// Workers for an operator expected to perform `work` row-units:
    /// one per [`ROWS_PER_WORKER`] of estimated work, clamped to the
    /// session budget. Estimates already carry the uniqueness-derived
    /// caps, so a key-covered join or duplicate-free block is never
    /// over-parallelized on the strength of a loose guess.
    fn op_degree(&self, work: f64) -> usize {
        if self.max_deg <= 1 {
            return 1;
        }
        ((work / ROWS_PER_WORKER) as usize).clamp(1, self.max_deg)
    }

    fn plan_node(&mut self, query: &BoundQuery) -> (PhysNode, f64) {
        match query {
            BoundQuery::Spec(spec) => {
                let (block, est) = self.plan_block(spec);
                (PhysNode::Block(block), est)
            }
            BoundQuery::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let (l, l_est) = self.plan_node(left);
                let (r, r_est) = self.plan_node(right);
                let mut est = match op {
                    SetOp::Union => l_est + r_est,
                    // INTERSECT [ALL] emits min(j,k) copies per tuple.
                    SetOp::Intersect => l_est.min(r_est),
                    // EXCEPT [ALL] emits at most the left input.
                    SetOp::Except => l_est,
                };
                // UNION-aware hard cap: a distinct set operation can
                // never emit more than its merged output domains admit,
                // whatever the operand estimates say.
                if let Some(bound) = self.est.query_hard_bound(query) {
                    est = est.min(bound);
                }
                let concat = *op == SetOp::Union && *all;
                // Hash counting costs n probes; sort-merge costs about
                // n·log₂n comparisons — hash wins beyond tiny inputs.
                let n = l_est + r_est;
                let method = if concat || sort_cost(n) <= n {
                    DistinctMethod::Sort
                } else {
                    DistinctMethod::Hash
                };
                let name = match op {
                    SetOp::Intersect => "Intersect",
                    SetOp::Except => "Except",
                    SetOp::Union => "Union",
                };
                let strategy = if concat {
                    "concat"
                } else {
                    match method {
                        DistinctMethod::Sort => "sort-merge",
                        DistinctMethod::Hash => "hash-count",
                    }
                };
                let label = format!("{name}{} [{strategy}]", if *all { "All" } else { "" });
                // UNION ALL concatenates — no counting pass to fan out.
                let deg = if concat { 1 } else { self.op_degree(n) };
                let id = self.op(label, est, deg);
                (
                    PhysNode::SetOp {
                        method,
                        id,
                        deg,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    est,
                )
            }
        }
    }

    fn plan_block(&mut self, spec: &BoundSpec) -> (BlockPlan, f64) {
        let n = spec.from.len();
        let conjuncts: Vec<&BoundExpr> = spec
            .predicate
            .as_ref()
            .map(|p| p.conjuncts())
            .unwrap_or_default();
        let owners: Vec<BTreeSet<usize>> =
            conjuncts.iter().map(|c| owner_tables(spec, c)).collect();
        let raw: Vec<f64> = spec
            .from
            .iter()
            .map(|t| self.est.table_rows(&t.schema.name))
            .collect();

        // Greedy join ordering: start from the smallest filtered table.
        let first = (0..n)
            .min_by(|&a, &b| {
                let fa = self.filtered_rows(spec, a, &conjuncts, &owners, raw[a]);
                let fb = self.filtered_rows(spec, b, &conjuncts, &owners, raw[b]);
                fa.total_cmp(&fb)
            })
            .expect("block with empty FROM clause");
        let mut order = vec![first];
        let mut placed: BTreeSet<usize> = BTreeSet::from([first]);
        let mut applied = vec![false; conjuncts.len()];
        let mut cur = self.filtered_rows(spec, first, &conjuncts, &owners, raw[first]);
        for (i, o) in owners.iter().enumerate() {
            if o.iter().all(|t| placed.contains(t)) {
                applied[i] = true;
            }
        }

        // Columnar coverage: every conjunct must compile to a code-range
        // or code-equality kernel, and every join step chosen below must
        // be a keyed hash join (the columnar executor has no nested-loop
        // or cross kernel). Tracked alongside the greedy loop so the
        // verdict reflects the order actually chosen.
        let mut columnar = self.columnar && conjuncts.iter().all(|c| columnar_conjunct(spec, c));

        let mut joins: Vec<JoinStep> = Vec::new();
        while placed.len() < n {
            // Choose the table minimizing the estimated step output.
            let (next, step_est, has_keys, covered) = (0..n)
                .filter(|t| !placed.contains(t))
                .map(|t| {
                    let (est, keys, covered) = self.step_estimate(
                        spec, t, &placed, &conjuncts, &owners, &applied, cur, raw[t],
                    );
                    (t, est, keys, covered)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("unplaced table exists");

            // Method choice in executor work units.
            let nl_cost = cur * raw[next];
            let hash_cost = if has_keys {
                raw[next] + cur
            } else {
                // Cross step: build side scanned once, no probes.
                raw[next]
            };
            // Prefer hash unless nested loops are cheaper by a clear
            // margin (2×) — under-estimated outer cardinalities make
            // nested loops catastrophically wrong, hash merely slower.
            let method = if 2.0 * nl_cost <= hash_cost {
                JoinMethod::NestedLoop
            } else {
                JoinMethod::Hash
            };
            // Index-nested-loop probe: one index probe per outer partial
            // plus the emitted rows, no build pass at all. Preferred
            // over a hash join whenever the build cost dominates (the
            // probed table never gets scanned), and promoted to a
            // guaranteed one-row lookup when the index is unique.
            let step_conjuncts: Vec<&BoundExpr> = conjuncts
                .iter()
                .zip(&owners)
                .zip(&applied)
                .filter(|((_, o), done)| {
                    !**done && o.iter().all(|x| placed.contains(x) || *x == next)
                })
                .map(|((c, _), _)| *c)
                .collect();
            let probe = crate::sarg::find_index_probe(spec, next, &step_conjuncts, &|idx| {
                table_of(spec, idx).is_some_and(|t| placed.contains(&t))
            });
            let mut step_est = step_est;
            if probe.as_ref().is_some_and(|p| p.unique) {
                // Each probe of a unique index matches at most one row.
                step_est = step_est.min(cur);
            }
            let ix_cost = cur + step_est;
            let use_ix = probe.is_some() && ix_cost < hash_cost && ix_cost < nl_cost;
            let table = &spec.from[next];
            let kind = match (use_ix, method, has_keys) {
                (true, _, _) => "IxJoin",
                (false, JoinMethod::NestedLoop, _) => "NestedLoop",
                (false, JoinMethod::Hash, true) => "HashJoin",
                (false, JoinMethod::Hash, false) => "CrossJoin",
            };
            // Degree amortized against the step's own work estimate;
            // index probes run serially (each probe is a point lookup —
            // there is no build side to partition).
            let deg = if use_ix {
                1
            } else {
                self.op_degree(match method {
                    JoinMethod::NestedLoop => nl_cost,
                    JoinMethod::Hash => hash_cost,
                })
            };
            let id = self.op(
                format!(
                    "{kind} with Scan {} AS {}",
                    table.schema.name, table.binding
                ),
                step_est,
                deg,
            );
            let ix = use_ix.then(|| {
                let p = probe.as_ref().expect("use_ix implies a probe");
                uniq_proof::Justification::ix_join(&p.index, p.unique)
            });
            joins.push(JoinStep {
                method,
                id,
                deg,
                unique: covered && method == JoinMethod::Hash,
                ix,
            });
            columnar = columnar && !use_ix && has_keys && method == JoinMethod::Hash;
            placed.insert(next);
            order.push(next);
            cur = step_est;
            for (i, o) in owners.iter().enumerate() {
                if !applied[i] && o.iter().all(|t| placed.contains(t)) {
                    applied[i] = true;
                }
            }
        }

        // Uniqueness-derived hard cap on the block output.
        let mut out_est = cur;
        if let Some(bound) = self.est.unique_output_bound(spec) {
            out_est = out_est.min(bound);
        }

        let t0 = &spec.from[order[0]];
        let mut scan_est = self.filtered_rows(spec, order[0], &conjuncts, &owners, raw[order[0]]);
        // Sargable index on the first table: serve the scan by a point
        // probe / range scan instead of reading every row. A unique
        // fully-bound probe returns at most one row — a hard bound the
        // estimate adopts — and any index access is licensed only when
        // it beats the full scan's work.
        let scan_conjuncts: Vec<&BoundExpr> = conjuncts
            .iter()
            .zip(&owners)
            .filter(|(_, o)| o.iter().all(|&x| x == order[0]))
            .map(|(c, _)| *c)
            .collect();
        let mut ixscan = None;
        if let Some(s) = crate::sarg::find_index_sarg(spec, order[0], &scan_conjuncts) {
            if s.unique {
                scan_est = scan_est.min(1.0);
            }
            if scan_est + 1.0 < raw[order[0]] {
                ixscan = Some(uniq_proof::Justification::ix_scan(
                    &s.index, s.unique, &s.desc,
                ));
            }
        }
        // Index scans are point lookups — nothing to morselize — and
        // the columnar kernels read full column vectors, so an index
        // block stays on the serial row path.
        columnar = columnar && ixscan.is_none();
        // A scan's work is the raw table, whatever the filter keeps.
        let scan_deg = if ixscan.is_some() {
            1
        } else {
            self.op_degree(raw[order[0]])
        };
        // Columnar scans over a table with string columns read
        // dictionary codes, not the strings themselves.
        let enc = if columnar
            && t0
                .schema
                .columns
                .iter()
                .any(|c| c.data_type == uniq_types::DataType::Str)
        {
            " enc=dict"
        } else {
            ""
        };
        let scan = self.op(
            format!("Scan {} AS {}{enc}", t0.schema.name, t0.binding),
            scan_est,
            scan_deg,
        );
        let cols: Vec<String> = spec
            .projection
            .iter()
            .map(|p| spec.attr_name(p.attr))
            .collect();
        let project = self.op(format!("Project [{}]", cols.join(", ")), out_est, 1);

        let distinct = (spec.distinct == uniq_sql::Distinct::Distinct).then(|| {
            // Distinct output can never exceed the projected domains.
            let d_est = out_est.min(self.est.projection_domain(spec));
            let method = if sort_cost(out_est) <= out_est {
                DistinctMethod::Sort
            } else {
                DistinctMethod::Hash
            };
            let label = match method {
                DistinctMethod::Sort => "SortDistinct",
                DistinctMethod::Hash => "HashDistinct",
            };
            let deg = self.op_degree(out_est);
            DistinctStep {
                method,
                id: self.op(label.to_string(), d_est, deg),
                deg,
            }
        });

        let final_est = distinct
            .map(|d| self.ops[d.id].est as f64)
            .unwrap_or(out_est);
        (
            BlockPlan {
                order,
                scan,
                scan_deg,
                joins,
                project,
                distinct,
                columnar,
                ixscan,
            },
            final_est,
        )
    }

    /// Estimated rows of table `t` after its table-local conjuncts.
    fn filtered_rows(
        &self,
        spec: &BoundSpec,
        t: usize,
        conjuncts: &[&BoundExpr],
        owners: &[BTreeSet<usize>],
        raw: f64,
    ) -> f64 {
        let sel: f64 = conjuncts
            .iter()
            .zip(owners)
            .filter(|(_, o)| o.iter().all(|&x| x == t))
            .map(|(c, _)| self.est.selectivity(spec, c))
            .product();
        raw * sel
    }

    /// Estimated output of joining `t` onto the current prefix, plus
    /// whether the newly applicable conjuncts contain equality keys
    /// usable by a hash join and whether those keys cover a candidate
    /// key of `t` (licensing the unique-key kernel and the outer-side
    /// cardinality cap).
    #[allow(clippy::too_many_arguments)]
    fn step_estimate(
        &self,
        spec: &BoundSpec,
        t: usize,
        placed: &BTreeSet<usize>,
        conjuncts: &[&BoundExpr],
        owners: &[BTreeSet<usize>],
        applied: &[bool],
        cur: f64,
        raw: f64,
    ) -> (f64, bool, bool) {
        let range = spec.from[t].attr_range();
        let mut est = cur * raw;
        let mut key_columns: BTreeSet<usize> = BTreeSet::new();
        for ((c, o), done) in conjuncts.iter().zip(owners).zip(applied) {
            if *done || !o.iter().all(|x| placed.contains(x) || *x == t) {
                continue;
            }
            est *= self.est.selectivity(spec, c);
            if let Some(new_attr) = equi_key_attr(c, &range, |idx| {
                placed.contains(&table_of(spec, idx).unwrap_or(usize::MAX))
            }) {
                key_columns.insert(new_attr - range.start);
            }
        }
        // Key coverage: each outer partial matches at most one row of a
        // table whose candidate key the join keys cover.
        let covered = spec.from[t]
            .schema
            .candidate_keys()
            .any(|k| k.columns.iter().all(|c| key_columns.contains(c)));
        if covered {
            est = est.min(cur);
        }
        (est, !key_columns.is_empty(), covered)
    }
}

/// `n·log₂n` — the comparison cost of sorting `n` rows.
fn sort_cost(n: f64) -> f64 {
    if n <= 1.0 {
        0.0
    } else {
        n * n.log2()
    }
}

/// The `FROM` position owning product attribute `idx`.
fn table_of(spec: &BoundSpec, idx: usize) -> Option<usize> {
    spec.from.iter().position(|t| t.attr_range().contains(&idx))
}

/// The set of `FROM` positions a conjunct references at its own block
/// level, including references made from inside nested subqueries
/// (which see the block's attributes as correlated outers).
fn owner_tables(spec: &BoundSpec, conjunct: &BoundExpr) -> BTreeSet<usize> {
    let mut owners = BTreeSet::new();
    visit_attrs(conjunct, 0, &mut |depth, a: &AttrRef| {
        if a.up == depth {
            if let Some(t) = table_of(spec, a.idx) {
                owners.insert(t);
            }
        }
    });
    owners
}

/// If `c` is `placed_attr = new_attr` (either direction) with the new
/// side inside `range` and the other side satisfying `is_placed`, the
/// new-side attribute index.
fn equi_key_attr(
    c: &BoundExpr,
    range: &std::ops::Range<usize>,
    is_placed: impl Fn(usize) -> bool,
) -> Option<usize> {
    let BoundExpr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = c
    else {
        return None;
    };
    let (a, b) = match (left, right) {
        (BScalar::Attr(a), BScalar::Attr(b)) if a.is_local() && b.is_local() => (a.idx, b.idx),
        _ => return None,
    };
    match (range.contains(&a), range.contains(&b)) {
        (false, true) if is_placed(a) => Some(b),
        (true, false) if is_placed(b) => Some(a),
        _ => None,
    }
}

/// Whether a conjunct is covered by the columnar kernels: a comparison
/// between a local attribute and a type-matching literal (any operator —
/// sorted dictionaries make every comparison a code-range test, and a
/// `NULL` literal compiles to the empty range), or a local equality
/// between attributes of two different tables (a hash/direct-index join
/// key). Everything else — `OR`, `BETWEEN`, `IN`, subqueries,
/// same-table column comparisons — runs on the row executor.
fn columnar_conjunct(spec: &BoundSpec, c: &BoundExpr) -> bool {
    let BoundExpr::Cmp { op, left, right } = c else {
        return false;
    };
    match (left, right) {
        (BScalar::Attr(a), BScalar::Attr(b)) if a.is_local() && b.is_local() => {
            let (ta, tb) = (table_of(spec, a.idx), table_of(spec, b.idx));
            *op == CmpOp::Eq && ta.is_some() && tb.is_some() && ta != tb
        }
        (BScalar::Attr(a), BScalar::Literal(v)) | (BScalar::Literal(v), BScalar::Attr(a))
            if a.is_local() =>
        {
            let Some(t) = table_of(spec, a.idx) else {
                return false;
            };
            let col = a.idx - spec.from[t].attr_range().start;
            let dt = spec.from[t].schema.columns[col].data_type;
            match v.data_type() {
                None => true, // NULL literal: compiles to the empty range.
                Some(lit) => {
                    lit == dt && matches!(dt, uniq_types::DataType::Int | uniq_types::DataType::Str)
                }
            }
        }
        _ => false,
    }
}

/// Visit every attribute reference with its subquery depth.
fn visit_attrs(e: &BoundExpr, depth: usize, f: &mut impl FnMut(usize, &AttrRef)) {
    let scalar = |s: &BScalar, f: &mut dyn FnMut(usize, &AttrRef)| {
        if let BScalar::Attr(a) = s {
            f(depth, a);
        }
    };
    match e {
        BoundExpr::Cmp { left, right, .. } => {
            scalar(left, f);
            scalar(right, f);
        }
        BoundExpr::Between {
            scalar: s,
            low,
            high,
            ..
        } => {
            scalar(s, f);
            scalar(low, f);
            scalar(high, f);
        }
        BoundExpr::InList {
            scalar: s, list, ..
        } => {
            scalar(s, f);
            for item in list {
                scalar(item, f);
            }
        }
        BoundExpr::IsNull { scalar: s, .. } => scalar(s, f),
        BoundExpr::Exists { subquery, .. } => {
            if let Some(p) = &subquery.predicate {
                visit_attrs(p, depth + 1, f);
            }
        }
        BoundExpr::InSubquery {
            scalar: s,
            subquery,
            ..
        } => {
            scalar(s, f);
            if let Some(p) = &subquery.predicate {
                visit_attrs(p, depth + 1, f);
            }
        }
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            visit_attrs(a, depth, f);
            visit_attrs(b, depth, f);
        }
        BoundExpr::Not(a) => visit_attrs(a, depth, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_database;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn plan(sql: &str) -> (PhysicalPlan, BoundQuery) {
        let db = supplier_database().unwrap();
        let stats = Statistics::collect(&db);
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        (plan_query(&q, &stats, PlannerOptions::default()), q)
    }

    fn block(p: &PhysicalPlan) -> &BlockPlan {
        match &p.root {
            PhysNode::Block(b) => b,
            PhysNode::SetOp { .. } => panic!("expected block"),
        }
    }

    #[test]
    fn filtered_table_is_scanned_first() {
        // PARTS filtered by COLOR='RED' (7 × 1/3 ≈ 2.3) is smaller than
        // SUPPLIER (5): the planner reorders the join to scan PARTS
        // first even though it is written second.
        let (p, _) = plan(
            "SELECT S.SNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        let b = block(&p);
        assert_eq!(b.order, vec![1, 0], "PARTS first, then SUPPLIER");
        assert_eq!(b.joins.len(), 1);
        assert_eq!(b.joins[0].method, JoinMethod::Hash);
        assert!(p.ops[b.joins[0].id]
            .label
            .contains("HashJoin with Scan SUPPLIER"));
    }

    #[test]
    fn key_covered_join_capped_by_outer_side() {
        // Joining PARTS onto SUPPLIER by SUPPLIER's primary key: each
        // part matches at most one supplier, so the join estimate is
        // capped at the PARTS side.
        let (p, _) = plan(
            "SELECT P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        let b = block(&p);
        let join_est = p.ops[b.joins[0].id].est;
        let scan_est = p.ops[b.scan].est;
        assert!(
            join_est <= scan_est,
            "join est {join_est} must not exceed outer est {scan_est}"
        );
    }

    #[test]
    fn unique_block_output_capped_by_domain_product() {
        // Projecting the SUPPLIER key → provably unique → est capped by
        // the key's domain (5 suppliers), and exact here.
        let (p, _) = plan("SELECT DISTINCT S.SNO FROM SUPPLIER S");
        let b = block(&p);
        assert_eq!(p.ops[b.project].est, 5);
        let d = b.distinct.unwrap();
        assert_eq!(p.ops[d.id].est, 5);
    }

    #[test]
    fn cross_join_labelled_and_hash_materialized() {
        let (p, _) = plan("SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A");
        let b = block(&p);
        assert_eq!(b.joins[0].method, JoinMethod::Hash);
        assert!(
            p.ops[b.joins[0].id].label.contains("CrossJoin"),
            "{:?}",
            p.ops
        );
        assert_eq!(p.ops[b.joins[0].id].est, 25);
    }

    #[test]
    fn distinct_method_scales_with_estimate() {
        // 5×5 cross product of 25 rows: hashing (25 probes) beats
        // sorting (25·log₂25 ≈ 116 comparisons).
        let (p, _) = plan("SELECT DISTINCT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A");
        let b = block(&p);
        assert_eq!(b.distinct.unwrap().method, DistinctMethod::Hash);
        // A tiny single-table block keeps the sort default.
        let (p2, _) = plan("SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SNO = 3");
        let b2 = block(&p2);
        assert_eq!(b2.distinct.unwrap().method, DistinctMethod::Sort);
    }

    #[test]
    fn setop_nodes_get_method_and_estimate() {
        let (p, _) = plan("SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT A.SNO FROM AGENTS A");
        let PhysNode::SetOp { method, id, .. } = &p.root else {
            panic!("expected setop root");
        };
        assert_eq!(*method, DistinctMethod::Hash);
        assert!(p.ops[*id].label.contains("Intersect [hash-count]"));
        // INTERSECT emits at most the smaller side (5 rows each way),
        // tightened by the hard domain cap: a distinct intersection over
        // SNO can emit at most min(dom) = 4 distinct values.
        assert_eq!(p.ops[*id].est, 4);
    }

    #[test]
    fn union_estimate_is_capped_by_the_merged_domains() {
        // Operand estimates sum to 10 (5 suppliers + 5 agents), but a
        // distinct UNION over the city columns can emit at most
        // dom(SCITY) + dom(ACITY) = 3 + 4 = 7 rows — the Chen–Schneider
        // hard bound is strictly tighter than the additive estimate.
        let (p, _) = plan("SELECT S.SCITY FROM SUPPLIER S UNION SELECT A.ACITY FROM AGENTS A");
        let PhysNode::SetOp { id, .. } = &p.root else {
            panic!("expected setop root");
        };
        assert_eq!(p.ops[*id].est, 7);
        // UNION ALL has no dedup: the additive estimate stands.
        let (p2, _) = plan("SELECT S.SCITY FROM SUPPLIER S UNION ALL SELECT A.ACITY FROM AGENTS A");
        let PhysNode::SetOp { id: id2, .. } = &p2.root else {
            panic!("expected setop root");
        };
        assert_eq!(p2.ops[*id2].est, 10);
    }

    #[test]
    fn empty_outer_estimate_turns_join_into_nested_loop() {
        // `S.SNO = NULL` never matches → outer estimate 0 → nested
        // loops cost 0 scans, cheaper than building a hash table.
        let (p, _) = plan(
            "SELECT P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = NULL AND S.SNO = P.SNO",
        );
        let b = block(&p);
        assert_eq!(b.order[0], 0, "empty SUPPLIER side first");
        assert_eq!(b.joins[0].method, JoinMethod::NestedLoop);
    }

    #[test]
    fn serial_budget_never_assigns_parallel_degrees() {
        let (p, _) = plan(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO \
             UNION SELECT A.SNO FROM AGENTS A",
        );
        assert!(p.ops.iter().all(|op| op.deg == 1), "{:?}", p.ops);
        assert!(!p.render(0, None).contains("deg="));
    }

    #[test]
    fn key_covered_hash_join_is_marked_unique() {
        // SUPPLIER joins in by its full primary key → unique kernel.
        let (p, _) = plan(
            "SELECT P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        let b = block(&p);
        assert_eq!(b.joins[0].method, JoinMethod::Hash);
        assert!(b.joins[0].unique, "PK-covered join must be unique");
        // Joining on the non-key COLOR column must not be.
        let (p2, _) = plan("SELECT P.PNO FROM PARTS P, PARTS Q WHERE P.COLOR = Q.COLOR");
        let b2 = block(&p2);
        assert!(!b2.joins[0].unique, "COLOR covers no candidate key");
    }

    #[test]
    fn degrees_scale_with_estimated_work_and_respect_the_budget() {
        use crate::physical::Degree;
        use uniq_workload::{scaled_database, ScaleConfig};
        let db = scaled_database(&ScaleConfig {
            suppliers: 2400,
            parts_per_supplier: 4,
            ..Default::default()
        })
        .unwrap();
        let stats = Statistics::collect(&db);
        let sql = "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let budget = PlannerOptions {
            cost_based: true,
            degree: Degree::Fixed(4),
            columnar: false,
        };
        let p = plan_query(&q, &stats, budget);
        let b = block(&p);
        // 2400 suppliers and 9600 parts amortize 4 workers everywhere.
        assert_eq!(b.scan_deg, 4, "{:?}", p.ops);
        assert_eq!(b.joins[0].deg, 4, "{:?}", p.ops);
        assert!(p.render(0, None).contains("deg=4"));
        // A tiny query under the same budget stays serial: no operator
        // has ROWS_PER_WORKER of estimated work.
        let tiny_db = supplier_database().unwrap();
        let tiny_stats = Statistics::collect(&tiny_db);
        let tq = bind_query(tiny_db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let tp = plan_query(&tq, &tiny_stats, budget);
        assert!(tp.ops.iter().all(|op| op.deg == 1), "{:?}", tp.ops);
    }

    fn plan_columnar(sql: &str) -> (PhysicalPlan, BoundQuery) {
        let db = supplier_database().unwrap();
        let stats = Statistics::collect(&db);
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let opts = PlannerOptions {
            columnar: true,
            ..PlannerOptions::default()
        };
        (plan_query(&q, &stats, opts), q)
    }

    #[test]
    fn covered_blocks_are_licensed_columnar() {
        let sql = "SELECT S.SNO FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let (p, _) = plan_columnar(sql);
        let b = block(&p);
        assert!(b.columnar, "keyed hash join + str literal is covered");
        // PARTS scans first and carries string columns → dict marker.
        assert!(
            p.ops[b.scan].label.contains("Scan PARTS AS P enc=dict"),
            "{:?}",
            p.ops
        );
        assert!(p.render(0, None).contains("exec=columnar"));
        // Same query without the option: row plan, no markers.
        let (p2, _) = plan(sql);
        let b2 = block(&p2);
        assert!(!b2.columnar);
        assert!(!p2.ops[b2.scan].label.contains("enc=dict"), "{:?}", p2.ops);
    }

    #[test]
    fn uncovered_shapes_stay_on_the_row_path() {
        for sql in [
            // OR is not a conjunct the kernels compile.
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1 OR S.SNO = 2",
            // BETWEEN never reaches the predicate compiler.
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO BETWEEN 1 AND 3",
            // Keyless cross join: no columnar cross kernel.
            "SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A",
            // Empty outer flips the step to nested loops.
            "SELECT P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = NULL AND S.SNO = P.SNO",
            // Subqueries are row-executor territory.
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)",
            // Same-table column comparison is not a join key.
            "SELECT P.PNO FROM PARTS P WHERE P.PNO = P.SNO",
        ] {
            let (p, _) = plan_columnar(sql);
            let b = block(&p);
            assert!(!b.columnar, "{sql} must not be columnar");
            assert!(!p.render(0, None).contains("exec=columnar"), "{sql}");
        }
        // A NULL-literal comparison compiles (to the empty range) and
        // keeps the block columnar when it is the only predicate.
        let (p, _) = plan_columnar("SELECT S.SNO FROM SUPPLIER S WHERE S.SNAME = NULL");
        assert!(block(&p).columnar, "NULL literal compiles to Never");
    }

    fn indexed_supplier_db() -> uniq_catalog::Database {
        let mut db = supplier_database().unwrap();
        db.run_script(
            "CREATE UNIQUE INDEX IDX_S_SNO ON SUPPLIER (SNO);
             CREATE INDEX IDX_P_COLOR ON PARTS (COLOR);",
        )
        .unwrap();
        db
    }

    fn plan_on(db: &uniq_catalog::Database, sql: &str) -> PhysicalPlan {
        let stats = Statistics::collect(db);
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        plan_query(&q, &stats, PlannerOptions::default())
    }

    #[test]
    fn sargable_point_scan_becomes_an_ixscan_with_the_hard_bound() {
        let db = indexed_supplier_db();
        let p = plan_on(&db, "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3");
        let b = block(&p);
        let ix = b.ixscan.as_ref().expect("unique point probe licensed");
        assert_eq!(ix.index(), Some("IDX_S_SNO"));
        assert!(ix.is_unique_index());
        assert_eq!(
            p.ops[b.scan].est, 1,
            "unique probe estimate is the hard bound 1"
        );
        assert_eq!(b.scan_deg, 1, "point lookups have nothing to morselize");
        assert!(p.render(0, None).contains("ixscan(IDX_S_SNO, SNO=3)"));
        // Without a sargable conjunct the scan stays full.
        let p2 = plan_on(&db, "SELECT S.SNAME FROM SUPPLIER S");
        assert!(block(&p2).ixscan.is_none());
    }

    #[test]
    fn key_join_prefers_the_index_probe_when_build_cost_dominates() {
        let db = indexed_supplier_db();
        let p = plan_on(
            &db,
            "SELECT P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        let b = block(&p);
        // PARTS (filtered smaller) scans first; SUPPLIER joins in by a
        // probe of its unique index instead of building a hash table.
        assert_eq!(b.order[0], 1, "PARTS first");
        let ix = b.joins[0].ix.as_ref().expect("index probe licensed");
        assert_eq!(ix.index(), Some("IDX_S_SNO"));
        assert!(ix.is_unique_index());
        assert_eq!(b.joins[0].deg, 1);
        assert!(p.ops[b.joins[0].id]
            .label
            .contains("IxJoin with Scan SUPPLIER"));
        assert!(p.render(0, None).contains("ixjoin(IDX_S_SNO) unique=yes"));
        // The same query without indexes keeps the hash join.
        let plain = supplier_database().unwrap();
        let p2 = plan_on(
            &plain,
            "SELECT P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        );
        assert!(block(&p2).joins[0].ix.is_none());
    }

    #[test]
    fn index_operators_revoke_the_columnar_license() {
        let db = indexed_supplier_db();
        let stats = Statistics::collect(&db);
        let sql = "SELECT S.SNO FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let opts = PlannerOptions {
            columnar: true,
            ..PlannerOptions::default()
        };
        let p = plan_query(&q, &stats, opts);
        let b = block(&p);
        assert!(
            b.ixscan.is_some() || b.joins.iter().any(|j| j.ix.is_some()),
            "an index operator should be chosen here"
        );
        assert!(
            !b.columnar,
            "index access paths run on the serial row pipeline"
        );
    }

    #[test]
    fn every_operator_has_a_registry_slot() {
        let (p, _) = plan(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO \
             UNION SELECT A.SNO FROM AGENTS A",
        );
        // ops: scan+join+project+distinct (block 1) + scan+project
        // (block 2) + setop.
        assert_eq!(p.ops.len(), 7);
        let rendered = p.render(0, None);
        assert_eq!(rendered.lines().count(), 7);
        assert!(rendered.lines().all(|l| l.contains("est=")), "{rendered}");
    }
}
