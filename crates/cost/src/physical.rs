//! The physical-plan IR the executor consumes.
//!
//! A [`PhysicalPlan`] mirrors the shape of the optimized
//! [`BoundQuery`](uniq_plan::BoundQuery) it was planned for — one
//! [`BlockPlan`] per query block, one [`PhysNode::SetOp`] per set
//! operation — and records the planner's per-node choices: join input
//! order, hash vs. nested-loop per join, hash vs. sort per duplicate
//! elimination. Every operator owns a slot in the flat [`OpInfo`]
//! registry carrying its display label and estimated output
//! cardinality; the executor fills a parallel `actuals` array, which is
//! how `EXPLAIN` prints `est=… act=…` per operator and how q-error is
//! measured.
//!
//! The method enums live here (re-exported by `uniq-engine` for
//! compatibility) so the planner can be expressed without depending on
//! the executor.

use uniq_proof::Justification;

/// How duplicate elimination is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistinctMethod {
    /// Sort the result and collapse adjacent `=̇`-equal runs — the
    /// strategy whose cost the paper's §1 calls "expensive". Default.
    #[default]
    Sort,
    /// Hash-set elimination (ablation; see experiment E12).
    Hash,
}

/// How multi-table blocks are joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMethod {
    /// Build/probe hash tables on available equality conjuncts, falling
    /// back to nested loops when none apply. Default.
    #[default]
    Hash,
    /// Pure nested loops (the naive strategy subquery rewrites avoid).
    NestedLoop,
}

/// Parallel degree of the morsel-driven executor: how many workers a
/// query (or, in a cost-based plan, one operator) may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Degree {
    /// Single-threaded row-at-a-time execution — the correctness oracle
    /// every parallel path is property-tested against. Default.
    #[default]
    Serial,
    /// One worker per available core.
    Auto,
    /// Exactly this many workers (`0` and `1` both mean serial).
    Fixed(usize),
}

impl Degree {
    /// Resolve to a concrete worker count on this host, at least 1.
    pub fn resolve(self) -> usize {
        match self {
            Degree::Serial => 1,
            Degree::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Degree::Fixed(n) => n.max(1),
        }
    }
}

/// Index of an operator in [`PhysicalPlan::ops`].
pub type OpId = usize;

/// Registry entry for one physical operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpInfo {
    /// Display label, e.g. `HashJoin with Scan PARTS AS P`.
    pub label: String,
    /// Estimated output rows.
    pub est: u64,
    /// Workers the planner assigned to this operator (1 = serial);
    /// rendered as `deg=N` when parallel.
    pub deg: usize,
}

/// One pipeline join step (the table it introduces is
/// `order[position + 1]` of the owning [`BlockPlan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinStep {
    /// Physical join strategy for this step (the fallback when an
    /// index probe in `ix` fails run-time re-verification).
    pub method: JoinMethod,
    /// Operator slot.
    pub id: OpId,
    /// Workers for this step's build/probe phases (1 = serial).
    pub deg: usize,
    /// The step's equality keys cover a candidate key of the incoming
    /// table, so each outer partial matches at most one row — the
    /// parallel executor may use the unique-key hash kernel (no bucket
    /// chains, probe stops at the first match).
    pub unique: bool,
    /// Probe a secondary index per outer partial instead of building a
    /// hash table, when the planner found one covering the join keys
    /// and build cost dominates. Carried as a
    /// [`Justification::IndexAccess`] license (no sarg): like
    /// [`BlockPlan::columnar`] it is a **license, not a promise** — the
    /// executor re-derives the probe from the spec and live catalog and
    /// falls back to [`JoinStep::method`] on disagreement.
    pub ix: Option<Justification>,
}

/// The duplicate-elimination step of a `SELECT DISTINCT` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistinctStep {
    /// Physical duplicate-elimination strategy.
    pub method: DistinctMethod,
    /// Operator slot.
    pub id: OpId,
    /// Workers for partition-local duplicate elimination (1 = serial).
    pub deg: usize,
}

/// Physical choices for one query block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPlan {
    /// Execution order as positions into the block's `FROM` list:
    /// `order[0]` is scanned first, each later entry joins in turn.
    pub order: Vec<usize>,
    /// Operator slot of the initial filtered scan (`order[0]`).
    pub scan: OpId,
    /// Workers for the initial morselized scan (1 = serial).
    pub scan_deg: usize,
    /// Join steps, parallel to `order[1..]`.
    pub joins: Vec<JoinStep>,
    /// Operator slot of the projection (block output).
    pub project: OpId,
    /// Duplicate elimination, when the block is `SELECT DISTINCT`.
    pub distinct: Option<DistinctStep>,
    /// The planner proved every conjunct and join step of this block is
    /// covered by the vectorized columnar kernels, so the executor may
    /// run it on dictionary codes with late materialization (rendered
    /// as `exec=columnar` on the scan line). The executor re-verifies
    /// at runtime and falls back to row execution if the encoding is
    /// missing or stale — the flag is a license, not a promise.
    pub columnar: bool,
    /// Serve the initial scan through a secondary index instead of a
    /// full table scan (rendered as `ixscan(name, sarg)` on the scan
    /// line; same license semantics as `columnar`). Carried as a
    /// [`Justification::IndexAccess`] license with a sarg display
    /// fragment; a *unique*, fully point-bound index makes the scan
    /// estimate the hard bound 1, not a guess — and declares the
    /// candidate key the `uniq-proof` checker takes as an axiom.
    pub ixscan: Option<Justification>,
}

/// A node of the physical plan, structurally parallel to the bound
/// query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysNode {
    /// A planned query block.
    Block(BlockPlan),
    /// A planned set operation.
    SetOp {
        /// Strategy for the duplicate/counting pass.
        method: DistinctMethod,
        /// Operator slot.
        id: OpId,
        /// Workers for the partition-local counting pass (1 = serial).
        deg: usize,
        /// Left input plan.
        left: Box<PhysNode>,
        /// Right input plan.
        right: Box<PhysNode>,
    },
}

/// An output-shaping operator applied above the plan root: aggregation,
/// ordering, or a row cut. Stored in execution order (the aggregate
/// consumes the body first, the limit cuts last); rendered top-down in
/// reverse, above the body tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputOp {
    /// `GROUP BY` + aggregate evaluation over the body rows.
    Agg {
        /// Operator slot.
        id: OpId,
        /// Workers for the partial-aggregate pass (1 = serial).
        deg: usize,
        /// Proof-gated: the grouping columns were proved duplicate-free
        /// over the body, so every row is its own group — the executor
        /// skips the hash aggregate and computes aggregates per row in
        /// one pass (rendered as ` group-elided`).
        group_elided: bool,
        /// Proof-gated: at least one `COUNT(DISTINCT e)` was degraded
        /// to `COUNT(e)` because `(group keys, e)` was proved
        /// duplicate-free (rendered as ` count-distinct-elided`).
        count_distinct_elided: bool,
    },
    /// `ORDER BY` sort over the output rows. Absent when an early-stop
    /// license on the [`OutputOp::Limit`] serves the order from an
    /// ordered index instead.
    Sort {
        /// Operator slot.
        id: OpId,
    },
    /// `LIMIT k` row cut.
    Limit {
        /// Operator slot.
        id: OpId,
        /// License: the `ORDER BY` columns are an ascending prefix of
        /// an ordered (B-tree) index on the block's single table, so
        /// the executor may walk the index in order and **stop after k
        /// emitted rows** instead of materializing and sorting the full
        /// table (rendered as ` early-stop(index)`). Same semantics as
        /// [`BlockPlan::ixscan`]: a license, not a promise — the
        /// executor re-verifies against the live catalog and falls
        /// back to scan + sort + limit on disagreement.
        early_stop: Option<Justification>,
    },
}

impl OutputOp {
    /// The operator's slot in [`PhysicalPlan::ops`].
    pub fn id(&self) -> OpId {
        match self {
            OutputOp::Agg { id, .. } | OutputOp::Sort { id } | OutputOp::Limit { id, .. } => *id,
        }
    }
}

/// A complete physical plan: the choice tree plus the operator registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalPlan {
    /// Root of the plan tree.
    pub root: PhysNode,
    /// Output-shaping operators above the root, in execution order
    /// (empty for a plain `SELECT` without `ORDER BY`/`LIMIT`).
    pub output: Vec<OutputOp>,
    /// Flat operator registry, indexed by [`OpId`].
    pub ops: Vec<OpInfo>,
}

impl PhysicalPlan {
    /// Render the plan as an indented tree, one operator per line, each
    /// annotated `est=… act=…` (`act=?` when no actuals are supplied,
    /// e.g. the query needs host variables that EXPLAIN cannot bind).
    pub fn render(&self, depth: usize, actuals: Option<&[u64]>) -> String {
        let mut out = String::new();
        let mut depth = depth;
        // Output operators top-down: the last-applied (limit) first.
        for op in self.output.iter().rev() {
            let suffix = match op {
                OutputOp::Agg {
                    group_elided,
                    count_distinct_elided,
                    ..
                } => {
                    let mut s = String::new();
                    if *group_elided {
                        s.push_str(" group-elided");
                    }
                    if *count_distinct_elided {
                        s.push_str(" count-distinct-elided");
                    }
                    s
                }
                OutputOp::Sort { .. } => String::new(),
                OutputOp::Limit { early_stop, .. } => match early_stop {
                    Some(ix) => format!(" early-stop({})", ix.index().unwrap_or("?")),
                    None => String::new(),
                },
            };
            self.line_sfx(op.id(), depth, actuals, &suffix, &mut out);
            depth += 1;
        }
        self.render_node(&self.root, depth, actuals, &mut out);
        out
    }

    fn line(&self, id: OpId, depth: usize, actuals: Option<&[u64]>, out: &mut String) {
        self.line_sfx(id, depth, actuals, "", out);
    }

    fn line_sfx(
        &self,
        id: OpId,
        depth: usize,
        actuals: Option<&[u64]>,
        suffix: &str,
        out: &mut String,
    ) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let op = &self.ops[id];
        let deg = if op.deg > 1 {
            format!(" deg={}", op.deg)
        } else {
            String::new()
        };
        match actuals.and_then(|a| a.get(id)) {
            Some(act) => out.push_str(&format!(
                "{} est={} act={}{deg}{suffix}\n",
                op.label, op.est, act
            )),
            None => out.push_str(&format!("{} est={} act=?{deg}{suffix}\n", op.label, op.est)),
        }
    }

    fn render_node(
        &self,
        node: &PhysNode,
        depth: usize,
        actuals: Option<&[u64]>,
        out: &mut String,
    ) {
        match node {
            PhysNode::Block(block) => {
                let mut depth = depth;
                if let Some(d) = &block.distinct {
                    self.line(d.id, depth, actuals, out);
                    depth += 1;
                }
                self.line(block.project, depth, actuals, out);
                // Pipeline steps, deepest-first like the executor's
                // static EXPLAIN: the last join on top, the initial
                // scan at the bottom.
                for step in block.joins.iter().rev() {
                    let suffix = match &step.ix {
                        Some(ix) => format!(
                            " ixjoin({}) unique={}",
                            ix.index().unwrap_or("?"),
                            if ix.is_unique_index() { "yes" } else { "no" }
                        ),
                        None => String::new(),
                    };
                    self.line_sfx(step.id, depth + 1, actuals, &suffix, out);
                }
                let mut suffix = String::new();
                if let Some(ix) = &block.ixscan {
                    suffix.push_str(&format!(
                        " ixscan({}, {})",
                        ix.index().unwrap_or("?"),
                        ix.sarg().unwrap_or("")
                    ));
                }
                if block.columnar {
                    suffix.push_str(" exec=columnar");
                }
                self.line_sfx(block.scan, depth + 1, actuals, &suffix, out);
            }
            PhysNode::SetOp {
                id, left, right, ..
            } => {
                self.line(*id, depth, actuals, out);
                self.render_node(left, depth + 1, actuals, out);
                self.render_node(right, depth + 1, actuals, out);
            }
        }
    }

    /// Pair every operator's estimate with the executor's measured
    /// actual (see `Executor::actuals`).
    pub fn card_report(&self, actuals: &[u64]) -> crate::card::CardReport {
        crate::card::CardReport {
            rows: self
                .ops
                .iter()
                .enumerate()
                .map(|(id, op)| crate::card::CardRow {
                    op: op.label.clone(),
                    est: op.est,
                    act: actuals.get(id).copied().unwrap_or(0),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_premises() {
        assert_eq!(DistinctMethod::default(), DistinctMethod::Sort);
        assert_eq!(JoinMethod::default(), JoinMethod::Hash);
    }

    fn tiny_plan() -> PhysicalPlan {
        PhysicalPlan {
            root: PhysNode::Block(BlockPlan {
                order: vec![0, 1],
                scan: 0,
                scan_deg: 1,
                joins: vec![JoinStep {
                    method: JoinMethod::Hash,
                    id: 1,
                    deg: 2,
                    unique: true,
                    ix: None,
                }],
                project: 2,
                distinct: Some(DistinctStep {
                    method: DistinctMethod::Hash,
                    id: 3,
                    deg: 1,
                }),
                columnar: false,
                ixscan: None,
            }),
            output: Vec::new(),
            ops: vec![
                OpInfo {
                    label: "Scan SUPPLIER AS S".into(),
                    est: 5,
                    deg: 1,
                },
                OpInfo {
                    label: "HashJoin with Scan PARTS AS P".into(),
                    est: 7,
                    deg: 2,
                },
                OpInfo {
                    label: "Project [S.SNO]".into(),
                    est: 7,
                    deg: 1,
                },
                OpInfo {
                    label: "HashDistinct".into(),
                    est: 4,
                    deg: 1,
                },
            ],
        }
    }

    #[test]
    fn render_annotates_every_operator() {
        let plan = tiny_plan();
        let with = plan.render(0, Some(&[5, 6, 6, 4]));
        for needle in [
            "HashDistinct est=4 act=4",
            "Project [S.SNO] est=7 act=6",
            "HashJoin with Scan PARTS AS P est=7 act=6 deg=2",
            "Scan SUPPLIER AS S est=5 act=5",
        ] {
            assert!(with.contains(needle), "{with}");
        }
        // Serial operators carry no degree annotation.
        assert!(
            !with.contains("Scan SUPPLIER AS S est=5 act=5 deg"),
            "{with}"
        );
        // Distinct on top, scan at the bottom, indentation increasing.
        let lines: Vec<&str> = with.lines().collect();
        assert!(lines[0].starts_with("HashDistinct"));
        assert!(lines[3].trim_start().starts_with("Scan SUPPLIER"));
        let without = plan.render(1, None);
        assert!(
            without.contains("Scan SUPPLIER AS S est=5 act=?"),
            "{without}"
        );
        assert!(without.starts_with("  "), "base depth indents");
    }

    #[test]
    fn columnar_blocks_render_the_exec_marker() {
        let mut plan = tiny_plan();
        let rendered = plan.render(0, None);
        assert!(!rendered.contains("exec=columnar"), "{rendered}");
        if let PhysNode::Block(b) = &mut plan.root {
            b.columnar = true;
        }
        let rendered = plan.render(0, Some(&[5, 6, 6, 4]));
        assert!(
            rendered.contains("Scan SUPPLIER AS S est=5 act=5 exec=columnar"),
            "{rendered}"
        );
    }

    #[test]
    fn index_operators_render_their_markers() {
        let mut plan = tiny_plan();
        if let PhysNode::Block(b) = &mut plan.root {
            b.ixscan = Some(Justification::ix_scan("IDX_SNO", true, "SNO=3"));
            b.joins[0].ix = Some(Justification::ix_join("IDX_PARTS", true));
        }
        let rendered = plan.render(0, None);
        assert!(
            rendered.contains("Scan SUPPLIER AS S est=5 act=? ixscan(IDX_SNO, SNO=3)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("ixjoin(IDX_PARTS) unique=yes"),
            "{rendered}"
        );
    }

    #[test]
    fn output_operators_render_above_the_body_with_their_markers() {
        let mut plan = tiny_plan();
        plan.ops.push(OpInfo {
            label: "Aggregate [S.SNO, COUNT(*)]".into(),
            est: 4,
            deg: 1,
        });
        plan.ops.push(OpInfo {
            label: "Sort [S.SNO]".into(),
            est: 4,
            deg: 1,
        });
        plan.ops.push(OpInfo {
            label: "Limit 2".into(),
            est: 2,
            deg: 1,
        });
        plan.output = vec![
            OutputOp::Agg {
                id: 4,
                deg: 1,
                group_elided: true,
                count_distinct_elided: true,
            },
            OutputOp::Sort { id: 5 },
            OutputOp::Limit {
                id: 6,
                early_stop: None,
            },
        ];
        let rendered = plan.render(0, None);
        let lines: Vec<&str> = rendered.lines().collect();
        // Limit on top, then sort, then the aggregate, then the body.
        assert!(lines[0].starts_with("Limit 2"), "{rendered}");
        assert!(
            lines[1].trim_start().starts_with("Sort [S.SNO]"),
            "{rendered}"
        );
        assert!(
            lines[2]
                .trim_start()
                .starts_with("Aggregate [S.SNO, COUNT(*)]"),
            "{rendered}"
        );
        assert!(
            lines[2].contains("group-elided") && lines[2].contains("count-distinct-elided"),
            "{rendered}"
        );
        assert!(
            lines[3].trim_start().starts_with("HashDistinct"),
            "{rendered}"
        );
        // An early-stop license renders its index on the limit line.
        plan.output = vec![OutputOp::Limit {
            id: 6,
            early_stop: Some(Justification::ix_scan("IDX_SNO", true, "SNO")),
        }];
        let rendered = plan.render(0, None);
        assert!(
            rendered.contains("Limit 2 est=2 act=? early-stop(IDX_SNO)"),
            "{rendered}"
        );
    }

    #[test]
    fn card_report_pairs_est_with_act() {
        let plan = tiny_plan();
        let report = plan.card_report(&[5, 6, 6, 4]);
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.rows[1].est, 7);
        assert_eq!(report.rows[1].act, 6);
    }
}
