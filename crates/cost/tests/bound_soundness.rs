//! Property tests for the uniqueness-derived cardinality bounds.
//!
//! Over randomized workload instances, every bound the estimator
//! derives from a uniqueness proof must be a *true* upper bound on the
//! observed cardinality — never an approximation. Three facts are
//! checked per (corpus query, random instance) pair:
//!
//! * when [`Estimator::unique_output_bound`] returns a bound, the
//!   block's undeduplicated output never exceeds it;
//! * when Algorithm 1 answers YES, the proof is exact: running the
//!   block without `DISTINCT` produces no duplicates at all, and the
//!   bound exists;
//! * the deduplicated output of *any* block (provable or not) fits in
//!   the projection's active-domain product, since distinct tuples can
//!   only be drawn from the stored domains.
//!
//! A fourth property checks the collector itself: the declared-key
//! `ndv` shortcut agrees with an exhaustive distinct count.

use proptest::prelude::*;
use std::collections::HashSet;
use uniq_cost::{Estimator, Statistics};
use uniq_engine::{ExecOptions, Executor};
use uniq_plan::{bind_query, BoundQuery, HostVars};
use uniq_sql::{parse_query, Distinct};
use uniq_workload::{generate_corpus, random_instance};

/// Row count of `sql` over `db` with the requested `DISTINCT` mode.
fn run_counted(db: &uniq_catalog::Database, sql: &str, distinct: Distinct) -> usize {
    let mut bound = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
    if let BoundQuery::Spec(spec) = &mut bound {
        spec.distinct = distinct;
    }
    let hv = HostVars::new();
    let mut ex = Executor::new(db, &hv, ExecOptions::default());
    ex.run(&bound).unwrap().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every uniqueness-derived bound is a true upper bound on the
    /// observed cardinality, and exact duplicate-freeness holds
    /// whenever Algorithm 1 answers YES.
    #[test]
    fn unique_bounds_hold_on_random_instances(seed in 0u64..1u64 << 48) {
        let corpus = generate_corpus(seed, 8, 1).unwrap();
        let db = random_instance(seed, 12, 24, 12).unwrap();
        let stats = Statistics::collect(&db);
        let est = Estimator::new(&stats);
        for q in &corpus {
            let bound_q = bind_query(db.catalog(), &parse_query(&q.sql).unwrap()).unwrap();
            let spec = bound_q.as_spec().expect("corpus queries are single blocks");
            let all = run_counted(&db, &q.sql, Distinct::All);
            let dedup = run_counted(&db, &q.sql, Distinct::Distinct);
            if let Some(bound) = est.unique_output_bound(spec) {
                // The bound caps the block's raw output: a duplicate-free
                // block emits pairwise-distinct tuples, of which only
                // `Π domain` exist.
                prop_assert!(
                    all as f64 <= bound,
                    "{}: {all} rows exceed bound {bound}",
                    q.sql
                );
            }
            if q.alg1_unique {
                // Algorithm 1 YES ⇒ the FD test also proves it, so the
                // estimator must produce a bound…
                prop_assert!(
                    est.unique_output_bound(spec).is_some(),
                    "{}: Algorithm 1 YES but no bound",
                    q.sql
                );
                // …and the proof is exact: no duplicates to remove.
                prop_assert_eq!(all, dedup, "{}: duplicates despite proof", q.sql.clone());
            }
            // Deduplicated output always fits the projection's domain
            // product, provable or not.
            prop_assert!(
                dedup as f64 <= est.projection_domain(spec),
                "{}: {dedup} distinct rows exceed domain product {}",
                q.sql,
                est.projection_domain(spec)
            );
        }
    }

    /// The declared-key `ndv` shortcut is exact: it agrees with an
    /// exhaustive distinct count on every random instance.
    #[test]
    fn key_shortcut_ndv_is_exact(seed in 0u64..1u64 << 48) {
        let db = random_instance(seed, 15, 30, 15).unwrap();
        let stats = Statistics::collect(&db);
        for schema in db.catalog().tables() {
            let rows = db.rows(&schema.name).unwrap();
            for c in 0..schema.arity() {
                let col = stats.column(&schema.name, c).unwrap();
                if !col.from_key {
                    continue;
                }
                let exhaustive: HashSet<_> =
                    rows.iter().map(|r| &r[c]).filter(|v| !v.is_null()).collect();
                prop_assert_eq!(
                    col.ndv,
                    exhaustive.len() as u64,
                    "{}.{c}: shortcut ndv diverges from recount",
                    schema.name
                );
            }
        }
    }
}
