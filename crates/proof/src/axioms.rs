//! The checker's axiom set: keys, unique indexes, and derived FDs.
//!
//! Axioms come from the table schemas embedded in every bound block's
//! `FROM` list — the same source the planner's index licenses draw on:
//! [`TableSchema::candidate_keys`](uniq_catalog::TableSchema::candidate_keys)
//! yields declared `PRIMARY KEY`/`UNIQUE` constraints *and* the
//! candidate keys registered by `CREATE UNIQUE INDEX`, so an
//! index-derived key cover and a declared key are indistinguishable to
//! the checker (proof details name the index when one is the source).
//! On top of the key axioms, singleton CNF clauses of the block's
//! predicate contribute the paper's Type-1 (`col = const`) and Type-2
//! (`col = col`) derived FDs.
//!
//! This module deliberately *re-derives* the FD machinery instead of
//! reusing `uniq-core`'s analysis: the checker is the rewrite engine's
//! independent auditor, so its axiom engine must not share code with
//! the rules it audits (and the crate dependency points the other way).

use uniq_fd::{AttrSet, FdSet};
use uniq_plan::norm::to_cnf;
use uniq_plan::{BScalar, BoundExpr, BoundSpec, FromTable};
use uniq_sql::CmpOp;

/// CNF blow-up guard when mining predicate equalities.
const CNF_LIMIT: usize = 1024;

/// The outcome of an axiom query: whether the property was derived,
/// and from which axioms.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// The property holds under the axioms.
    pub holds: bool,
    /// The axioms used (or the first obstruction).
    pub detail: String,
}

impl Derivation {
    fn no(detail: impl Into<String>) -> Derivation {
        Derivation {
            holds: false,
            detail: detail.into(),
        }
    }
}

/// The FD set of one block: each table's candidate keys (declared and
/// unique-index-derived) determine the table's attributes, plus Type-1
/// and Type-2 FDs from equality conjuncts that survive every
/// interpretation of the predicate (singleton CNF clauses). With
/// `correlated_const`, references into enclosing blocks count as
/// constants — the reading under which a correlated subquery is probed
/// once per outer row.
pub fn block_fds(spec: &BoundSpec, correlated_const: bool) -> FdSet {
    let mut fds = FdSet::new(spec.product_arity());
    for t in &spec.from {
        for key in t.schema.candidate_keys() {
            fds.add_fd(key.columns.iter().map(|c| c + t.offset), t.attr_range());
        }
    }
    if let Some(p) = &spec.predicate {
        if let Some(cnf) = to_cnf(p, CNF_LIMIT) {
            for clause in &cnf {
                if let [atom] = clause.as_slice() {
                    add_equality(&mut fds, atom, correlated_const);
                }
            }
        }
    }
    fds
}

fn add_equality(fds: &mut FdSet, atom: &BoundExpr, correlated_const: bool) {
    let BoundExpr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = atom
    else {
        return;
    };
    let constant = |s: &BScalar| match s {
        BScalar::Literal(_) | BScalar::HostVar(_) => true,
        BScalar::Attr(a) => correlated_const && !a.is_local(),
    };
    match (left, right) {
        (BScalar::Attr(a), BScalar::Attr(b)) if a.is_local() && b.is_local() => {
            fds.add_equiv(a.idx, b.idx);
        }
        (BScalar::Attr(a), other) if a.is_local() && constant(other) => {
            fds.add_constant(a.idx);
        }
        (other, BScalar::Attr(b)) if b.is_local() && constant(other) => {
            fds.add_constant(b.idx);
        }
        _ => {}
    }
}

/// Describe one table's covered key for a proof detail, naming the
/// unique index when the key came from one.
fn key_desc(t: &FromTable, key: &uniq_catalog::Key) -> String {
    let cols: Vec<String> = key
        .columns
        .iter()
        .map(|c| t.schema.columns[*c].name.to_string())
        .collect();
    let source = match t.schema.key_index_name(key) {
        Some(ix) => format!("unique index {ix}"),
        None if key.primary => "primary key".to_string(),
        None => "unique".to_string(),
    };
    format!("key {}({}) [{}]", t.binding, cols.join(","), source)
}

/// Does the closure of `seed` cover a candidate key of *every* table
/// of `spec` under its derived FDs? This is the checker's independent
/// form of the paper's duplicate-free test (Theorem 1's side
/// condition) and, with an empty seed and correlated references read
/// as constants, of the single-tuple condition (Theorem 2's).
fn closure_covers_keys(
    spec: &BoundSpec,
    seed: AttrSet,
    correlated_const: bool,
    goal: &str,
) -> Derivation {
    let fds = block_fds(spec, correlated_const);
    let closure = fds.closure_of(&seed);
    let mut used = Vec::new();
    for t in &spec.from {
        // Among covered keys prefer one lying directly in the seed —
        // it names the axiom that actually did the work (e.g. the
        // unique index on the projected column, not the primary key
        // its FD closure happens to reach).
        let covered = t
            .schema
            .candidate_keys()
            .filter(|k| k.columns.iter().all(|c| closure.contains(c + t.offset)))
            .max_by_key(|k| k.columns.iter().all(|c| seed.contains(c + t.offset)));
        match covered {
            Some(k) => used.push(key_desc(t, k)),
            None => {
                return Derivation::no(format!(
                    "{goal}: closure does not cover a key of {} ({})",
                    t.binding, t.schema.name
                ));
            }
        }
    }
    Derivation {
        holds: true,
        detail: format!("{goal} via {}", used.join(" + ")),
    }
}

/// Is the block's output provably duplicate-free *without* its
/// `DISTINCT` flag — i.e. does the projection's FD closure cover a
/// candidate key of every `FROM` table?
pub fn projection_covers_keys(spec: &BoundSpec) -> Derivation {
    let seed = AttrSet::from_iter_attrs(spec.projection.iter().map(|p| p.attr));
    closure_covers_keys(spec, seed, false, "duplicate-free projection")
}

/// Does the (correlated) subquery yield at most one tuple per binding
/// of its outer references — the closure of its constants (literals,
/// host variables, correlated columns) covers a key of every table?
pub fn single_tuple(sub: &BoundSpec) -> Derivation {
    closure_covers_keys(sub, AttrSet::new(), true, "single-tuple subquery")
}
