//! The unified justification vocabulary.
//!
//! Before this crate existed, the rewrite engine (`uniq-core`) and the
//! physical planner (`uniq-cost`) each carried their own licensing
//! shapes: rewrite steps a `{theorem, detail}` struct, index access
//! paths a pair of ad-hoc index-license structs. Both are the
//! same thing — evidence that a semantic claim holds — so they now
//! share one [`Justification`] enum. A unique index *is* a candidate
//! key declaration, which is exactly the axiom shape the symbolic
//! checker consumes (see [`crate::axioms`]); unifying the two keeps a
//! planner license and a checker axiom traceable to the same source.

use std::fmt;

/// Whether a fired rewrite step has been *proved* equivalent or is
/// merely *property-tested* (no counterexample found).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStatus {
    /// The U-semiring checker proved before/after equivalence from the
    /// schema's key, foreign-key, and derived-FD axioms.
    Proved {
        /// The proof strategy that closed the goal (e.g. `Theorem 2
        /// (single-tuple subquery)`).
        strategy: &'static str,
        /// The axioms the proof used, human-readable.
        detail: String,
    },
    /// The checker returned `Unknown`; the step falls back to the
    /// execution-equivalence property-test oracle.
    PropertyTested {
        /// Why the checker could not decide.
        reason: String,
    },
}

impl ProofStatus {
    /// True for [`ProofStatus::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, ProofStatus::Proved { .. })
    }

    /// Short marker for EXPLAIN output: `✓` or `property-test`.
    pub fn marker(&self) -> &'static str {
        match self {
            ProofStatus::Proved { .. } => "✓",
            ProofStatus::PropertyTested { .. } => "property-test",
        }
    }
}

impl Default for ProofStatus {
    fn default() -> ProofStatus {
        ProofStatus::PropertyTested {
            reason: "not checked symbolically".into(),
        }
    }
}

impl fmt::Display for ProofStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofStatus::Proved { strategy, detail } => {
                write!(f, "proved by {strategy}: {detail}")
            }
            ProofStatus::PropertyTested { reason } => {
                write!(f, "property-tested ({reason})")
            }
        }
    }
}

/// Why a semantic claim — a rewrite step, or a physical access path —
/// is licensed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Justification {
    /// A rewrite firing: the paper theorem it instantiates, the prose
    /// account of its side conditions, and the step's proof status.
    Rewrite {
        /// The theorem or corollary from the paper (or an extension).
        theorem: &'static str,
        /// Why the side conditions hold for this query.
        detail: String,
        /// Symbolically proved, or covered by property tests.
        proof: ProofStatus,
    },
    /// A planned index access path (initial sargable scan or per-outer
    /// join probe). Like every planner license this is re-verified by
    /// the executor at run time; a *unique* index additionally declares
    /// a candidate key, feeding the checker's axiom set.
    IndexAccess {
        /// Name of the index to probe.
        index: String,
        /// Unique index: at most one row per key value, so the access
        /// is a guaranteed one-row lookup (hard bound, not a guess).
        unique: bool,
        /// Display fragment for the sargable predicate, e.g.
        /// `SNO=3,PNO>=2` — present for scans, absent for join probes.
        sarg: Option<String>,
    },
}

impl Justification {
    /// A rewrite justification, not yet symbolically checked.
    pub fn new(theorem: &'static str, detail: impl Into<String>) -> Justification {
        Justification::Rewrite {
            theorem,
            detail: detail.into(),
            proof: ProofStatus::default(),
        }
    }

    /// An index-scan license (`sarg` is the display form of the bound
    /// prefix).
    pub fn ix_scan(
        index: impl Into<String>,
        unique: bool,
        sarg: impl Into<String>,
    ) -> Justification {
        Justification::IndexAccess {
            index: index.into(),
            unique,
            sarg: Some(sarg.into()),
        }
    }

    /// An index-nested-loop join-probe license.
    pub fn ix_join(index: impl Into<String>, unique: bool) -> Justification {
        Justification::IndexAccess {
            index: index.into(),
            unique,
            sarg: None,
        }
    }

    /// Attach a proof status (rewrite justifications only; a no-op for
    /// index licenses, whose evidence is the catalog itself).
    pub fn with_proof(mut self, status: ProofStatus) -> Justification {
        if let Justification::Rewrite { proof, .. } = &mut self {
            *proof = status;
        }
        self
    }

    /// The cited theorem (index licenses cite the index kind).
    pub fn theorem(&self) -> &'static str {
        match self {
            Justification::Rewrite { theorem, .. } => theorem,
            Justification::IndexAccess { unique: true, .. } => "unique index",
            Justification::IndexAccess { unique: false, .. } => "index",
        }
    }

    /// The human-readable evidence.
    pub fn detail(&self) -> String {
        match self {
            Justification::Rewrite { detail, .. } => detail.clone(),
            Justification::IndexAccess { index, sarg, .. } => match sarg {
                Some(s) => format!("{index}, {s}"),
                None => index.clone(),
            },
        }
    }

    /// The proof status, when this is a rewrite justification.
    pub fn proof(&self) -> Option<&ProofStatus> {
        match self {
            Justification::Rewrite { proof, .. } => Some(proof),
            Justification::IndexAccess { .. } => None,
        }
    }

    /// The index name, when this is an index license.
    pub fn index(&self) -> Option<&str> {
        match self {
            Justification::IndexAccess { index, .. } => Some(index),
            Justification::Rewrite { .. } => None,
        }
    }

    /// Whether an index license is unique (false for rewrites).
    pub fn is_unique_index(&self) -> bool {
        matches!(self, Justification::IndexAccess { unique: true, .. })
    }

    /// The sargable-prefix display fragment of an index-scan license.
    pub fn sarg(&self) -> Option<&str> {
        match self {
            Justification::IndexAccess { sarg, .. } => sarg.as_deref(),
            Justification::Rewrite { .. } => None,
        }
    }
}

impl fmt::Display for Justification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Justification::Rewrite {
                theorem, detail, ..
            } => write!(f, "{theorem}: {detail}"),
            Justification::IndexAccess { unique, .. } => {
                let kind = if *unique { "unique index" } else { "index" };
                write!(f, "{kind}: {}", self.detail())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_justifications_render_theorem_and_detail() {
        let j = Justification::new("Theorem 1", "projection covers every key");
        assert_eq!(j.theorem(), "Theorem 1");
        assert_eq!(j.to_string(), "Theorem 1: projection covers every key");
        assert!(!j.proof().unwrap().is_proved());
        let j = j.with_proof(ProofStatus::Proved {
            strategy: "squash elimination",
            detail: "key(S)".into(),
        });
        assert!(j.proof().unwrap().is_proved());
        assert_eq!(j.proof().unwrap().marker(), "✓");
    }

    #[test]
    fn index_licenses_share_the_enum() {
        let scan = Justification::ix_scan("IDX_SNO", true, "SNO=3");
        assert_eq!(scan.index(), Some("IDX_SNO"));
        assert_eq!(scan.sarg(), Some("SNO=3"));
        assert!(scan.is_unique_index());
        assert_eq!(scan.theorem(), "unique index");
        assert!(scan.proof().is_none());
        // with_proof is a no-op on index licenses.
        let scan = scan.with_proof(ProofStatus::default());
        assert!(scan.proof().is_none());
        let probe = Justification::ix_join("IDX_PARTS", false);
        assert_eq!(probe.sarg(), None);
        assert_eq!(probe.theorem(), "index");
    }
}
