//! The equivalence decision procedure.
//!
//! A bound query denotes a U-semiring expression: a block is a sum over
//! tuple variables (one per `FROM` table) of a product of predicate
//! atoms, an `EXISTS` conjunct is a squashed factor `‖…‖`, and a
//! `DISTINCT` flag squashes the whole sum. The checker decides
//! `⟦before⟧ = ⟦after⟧` by normalizing both sides to canonical atoms
//! ([`crate::atom`]) and applying a small set of proof strategies whose
//! side conditions are discharged from the axiom set
//! ([`crate::axioms`]):
//!
//! 1. **Variable renaming** — a table-respecting bijection between the
//!    tuple variables maps one side's atoms, semijoin factors, and
//!    projection exactly onto the other's.
//! 2. **Squash elimination** (Theorem 1) — same as 1 but the squash
//!    flags differ; the unsquashed side must be provably duplicate-free
//!    (projection closure covers a key of every variable).
//! 3. **Semijoin absorption** (Theorem 2 / Corollary 1) — one side
//!    carries `‖Σ_s Q‖` as an `EXISTS` factor, the other inlines the
//!    subquery's variables into its product. Sound unconditionally when
//!    both sides are squashed; under bag semantics when the subquery is
//!    single-tuple per outer binding; across a squash change when the
//!    appropriate side is duplicate-free.
//! 4. **Inclusion dependency** (§7) — one side joins an extra variable
//!    whose only contribution is a declared-FK equality onto a
//!    candidate key with `NOT NULL` referencing columns: the factor
//!    `Σ_p Π [p.k = c.f]` is identically 1.
//! 5. **Set-operation lowering** (Theorem 3 / Corollary 2) —
//!    `INTERSECT`/`EXCEPT` against the `[NOT] EXISTS` form with the
//!    null-aware `=̇` pairing of the operands' projections.
//! 6. **Congruence** — set operations with identical operator and
//!    `ALL` flag and pairwise-proved operands (operand order may swap
//!    for the commutative `UNION`/`INTERSECT`).
//!
//! The procedure is sound and incomplete: every `Proved` is a theorem,
//! and anything it cannot close — including every bag-vs-set trap,
//! `UNION` vs `UNION ALL`, and `=` vs `=̇` on nullable columns — is
//! `Unknown`, never a false positive.

use crate::atom::{canon_conjuncts, canon_projection};
use crate::axioms::{projection_covers_keys, single_tuple};
use crate::justify::ProofStatus;
use uniq_plan::{AttrRef, BScalar, BoundExpr, BoundQuery, BoundSpec, FromTable, ProjItem};
use uniq_sql::{CmpOp, Distinct, SetOp};

/// Backtracking bound on the variable-bijection search.
const MAX_VARS: usize = 6;

/// The checker's answer. `Proved` is a soundness claim; `Unknown` is an
/// honest shrug (the step falls back to the property-test oracle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Equivalence was derived from the axioms.
    Proved {
        /// The strategy that closed the goal.
        strategy: &'static str,
        /// The axioms used.
        detail: String,
    },
    /// The checker could not decide (it never guesses).
    Unknown {
        /// The first obstruction met.
        reason: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved { .. })
    }

    /// Downgrade into the trace-facing [`ProofStatus`].
    pub fn into_status(self) -> ProofStatus {
        match self {
            Verdict::Proved { strategy, detail } => ProofStatus::Proved { strategy, detail },
            Verdict::Unknown { reason } => ProofStatus::PropertyTested { reason },
        }
    }
}

fn proved(strategy: &'static str, detail: impl Into<String>) -> Verdict {
    Verdict::Proved {
        strategy,
        detail: detail.into(),
    }
}

fn unknown(reason: impl Into<String>) -> Verdict {
    Verdict::Unknown {
        reason: reason.into(),
    }
}

/// Decide whether `before` and `after` provably denote the same
/// multiset function. Axioms (keys, unique indexes, foreign keys,
/// nullability) are read from the table schemas embedded in the bound
/// trees themselves.
pub fn check_equiv(before: &BoundQuery, after: &BoundQuery) -> Verdict {
    match (before, after) {
        (BoundQuery::Spec(b), BoundQuery::Spec(a)) => check_spec(b, a),
        (BoundQuery::SetOp { .. }, BoundQuery::SetOp { .. }) => check_setops(before, after),
        (BoundQuery::SetOp { .. }, BoundQuery::Spec(a)) => check_lowering(before, a),
        (BoundQuery::Spec(b), BoundQuery::SetOp { .. }) => check_lowering(after, b),
    }
}

// ---------------------------------------------------------------------
// Reference visitors (depth-aware; local twins of core's utilities —
// this crate audits `uniq-core`, so it shares no code with it).

fn visit_scalar(sc: &BScalar, depth: usize, f: &mut impl FnMut(usize, AttrRef)) {
    if let BScalar::Attr(a) = sc {
        f(depth, *a);
    }
}

/// Visit every attribute reference in `e`, reporting the subquery
/// nesting depth it was seen at (0 = `e`'s own block).
fn visit_refs(e: &BoundExpr, depth: usize, f: &mut impl FnMut(usize, AttrRef)) {
    match e {
        BoundExpr::Cmp { left, right, .. } => {
            visit_scalar(left, depth, f);
            visit_scalar(right, depth, f);
        }
        BoundExpr::Between {
            scalar, low, high, ..
        } => {
            visit_scalar(scalar, depth, f);
            visit_scalar(low, depth, f);
            visit_scalar(high, depth, f);
        }
        BoundExpr::InList { scalar, list, .. } => {
            visit_scalar(scalar, depth, f);
            for item in list {
                visit_scalar(item, depth, f);
            }
        }
        BoundExpr::IsNull { scalar, .. } => visit_scalar(scalar, depth, f),
        BoundExpr::Exists { subquery, .. } => {
            if let Some(p) = &subquery.predicate {
                visit_refs(p, depth + 1, f);
            }
        }
        BoundExpr::InSubquery {
            scalar, subquery, ..
        } => {
            visit_scalar(scalar, depth, f);
            if let Some(p) = &subquery.predicate {
                visit_refs(p, depth + 1, f);
            }
        }
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            visit_refs(a, depth, f);
            visit_refs(b, depth, f);
        }
        BoundExpr::Not(a) => visit_refs(a, depth, f),
    }
}

fn map_scalar(sc: &mut BScalar, depth: usize, f: &mut impl FnMut(usize, &mut AttrRef)) {
    if let BScalar::Attr(a) = sc {
        f(depth, a);
    }
}

/// Rewrite every attribute reference in `e` in place, reporting the
/// subquery nesting depth alongside.
fn map_refs(e: &mut BoundExpr, depth: usize, f: &mut impl FnMut(usize, &mut AttrRef)) {
    match e {
        BoundExpr::Cmp { left, right, .. } => {
            map_scalar(left, depth, f);
            map_scalar(right, depth, f);
        }
        BoundExpr::Between {
            scalar, low, high, ..
        } => {
            map_scalar(scalar, depth, f);
            map_scalar(low, depth, f);
            map_scalar(high, depth, f);
        }
        BoundExpr::InList { scalar, list, .. } => {
            map_scalar(scalar, depth, f);
            for item in list {
                map_scalar(item, depth, f);
            }
        }
        BoundExpr::IsNull { scalar, .. } => map_scalar(scalar, depth, f),
        BoundExpr::Exists { subquery, .. } => {
            if let Some(p) = &mut subquery.predicate {
                map_refs(p, depth + 1, f);
            }
        }
        BoundExpr::InSubquery {
            scalar, subquery, ..
        } => {
            map_scalar(scalar, depth, f);
            if let Some(p) = &mut subquery.predicate {
                map_refs(p, depth + 1, f);
            }
        }
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            map_refs(a, depth, f);
            map_refs(b, depth, f);
        }
        BoundExpr::Not(a) => map_refs(a, depth, f),
    }
}

fn cloned_conjuncts(spec: &BoundSpec) -> Vec<BoundExpr> {
    match &spec.predicate {
        Some(p) => p.conjuncts().into_iter().cloned().collect(),
        None => Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Variable bijection search.

/// Find a table-respecting bijection `σ : vars(b) → vars(a)` under
/// which `b`'s canonical atoms and projection equal `a`'s. Squash
/// (`DISTINCT`) flags are *not* compared — callers judge them.
fn find_iso(b: &BoundSpec, a: &BoundSpec) -> Option<Vec<usize>> {
    let n = b.from.len();
    if a.from.len() != n || n > MAX_VARS || b.projection.len() != a.projection.len() {
        return None;
    }
    let a_atoms = canon_conjuncts(a, None);
    let a_proj = canon_projection(a, None);
    let mut assign = vec![usize::MAX; n];
    let mut used = vec![false; n];
    fn rec(
        i: usize,
        b: &BoundSpec,
        a: &BoundSpec,
        assign: &mut Vec<usize>,
        used: &mut Vec<bool>,
        a_atoms: &[crate::atom::PAtom],
        a_proj: &[(crate::atom::PScalar, String)],
    ) -> bool {
        let n = b.from.len();
        if i == n {
            let mut map = vec![0usize; b.product_arity()];
            for (bi, &ai) in assign.iter().enumerate() {
                let (bt, at) = (&b.from[bi], &a.from[ai]);
                for c in 0..bt.schema.arity() {
                    map[bt.offset + c] = at.offset + c;
                }
            }
            return canon_conjuncts(b, Some(&map)) == a_atoms
                && canon_projection(b, Some(&map)) == a_proj;
        }
        for j in 0..n {
            if used[j]
                || b.from[i].schema.name != a.from[j].schema.name
                || b.from[i].schema.arity() != a.from[j].schema.arity()
            {
                continue;
            }
            assign[i] = j;
            used[j] = true;
            if rec(i + 1, b, a, assign, used, a_atoms, a_proj) {
                return true;
            }
            used[j] = false;
        }
        false
    }
    rec(0, b, a, &mut assign, &mut used, &a_atoms, &a_proj).then_some(assign)
}

// ---------------------------------------------------------------------
// Single-block strategies.

fn check_spec(b: &BoundSpec, a: &BoundSpec) -> Verdict {
    if find_iso(b, a).is_some() {
        return judge_flags(b, a);
    }
    if let Some(v) = try_absorb(b, a) {
        return v;
    }
    if let Some(v) = try_absorb(a, b) {
        return v;
    }
    if let Some(v) = try_fk_elim(b, a) {
        return v;
    }
    if let Some(v) = try_fk_elim(a, b) {
        return v;
    }
    unknown("no strategy applies (variable bijection, semijoin absorption, inclusion dependency)")
}

/// Same atoms under a bijection; judge the squash flags.
fn judge_flags(b: &BoundSpec, a: &BoundSpec) -> Verdict {
    match (b.distinct, a.distinct) {
        (Distinct::All, Distinct::All) | (Distinct::Distinct, Distinct::Distinct) => proved(
            "variable renaming",
            "blocks are isomorphic up to tuple-variable renaming",
        ),
        (Distinct::Distinct, Distinct::All) => squash_elim(a),
        (Distinct::All, Distinct::Distinct) => squash_elim(b),
    }
}

/// `‖e‖ = e` when `e` is provably duplicate-free (Theorem 1).
fn squash_elim(unsquashed: &BoundSpec) -> Verdict {
    let d = projection_covers_keys(unsquashed);
    if d.holds {
        proved("squash elimination (Theorem 1)", d.detail)
    } else {
        unknown(d.detail)
    }
}

/// Inline the subquery of the `idx`-th conjunct (a positive `EXISTS`)
/// into `x`'s product: sub tables append after `x`'s, sub conjuncts
/// hoist with their references shifted into the merged space.
fn merge_exists(x: &BoundSpec, idx: usize) -> BoundSpec {
    let conj = cloned_conjuncts(x);
    let BoundExpr::Exists { subquery, .. } = &conj[idx] else {
        unreachable!("caller checked the conjunct is EXISTS");
    };
    let sub = subquery.as_ref();
    let offset = x.product_arity();
    let mut from = x.from.clone();
    for t in &sub.from {
        from.push(FromTable {
            binding: t.binding.clone(),
            schema: t.schema.clone(),
            offset: t.offset + offset,
        });
    }
    let mut preds: Vec<BoundExpr> = conj
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, c)| c.clone())
        .collect();
    if let Some(p) = &sub.predicate {
        for c in p.conjuncts() {
            let mut c = c.clone();
            map_refs(&mut c, 0, &mut |d, a| {
                if a.up == d {
                    // Local to the dissolved subquery: shift into the
                    // merged product.
                    a.idx += offset;
                } else if a.up > d {
                    // Pointed above the dissolved block: one level
                    // closer now.
                    a.up -= 1;
                }
            });
            preds.push(c);
        }
    }
    BoundSpec {
        distinct: x.distinct,
        from,
        predicate: BoundExpr::conjoin(preds),
        projection: x.projection.clone(),
    }
}

/// Absorption: `x` carries a positive `EXISTS` factor whose inlined
/// form matches `y`.
fn try_absorb(x: &BoundSpec, y: &BoundSpec) -> Option<Verdict> {
    if x.from.len() >= y.from.len() {
        return None;
    }
    let conj: Vec<&BoundExpr> = match &x.predicate {
        Some(p) => p.conjuncts(),
        None => return None,
    };
    for (i, c) in conj.iter().enumerate() {
        let BoundExpr::Exists {
            negated: false,
            subquery,
        } = c
        else {
            continue;
        };
        let merged = merge_exists(x, i);
        if merged.from.len() != y.from.len() || find_iso(&merged, y).is_none() {
            continue;
        }
        let verdict = match (x.distinct, y.distinct) {
            // ‖Σ_o P·‖Σ_s Q‖‖ = ‖Σ_o Σ_s P·Q‖ unconditionally: both
            // squashes test bare existence.
            (Distinct::Distinct, Distinct::Distinct) => Some(proved(
                "squash absorption",
                "both sides squashed; EXISTS inlines into the product",
            )),
            // Σ_o P·‖Σ_s Q‖ = Σ_o Σ_s P·Q needs Σ_s Q ≤ 1 per outer
            // binding.
            (Distinct::All, Distinct::All) => {
                let d = single_tuple(subquery);
                d.holds
                    .then(|| proved("semijoin absorption (Theorem 2)", d.detail))
            }
            // Σ_o P·‖Σ_s Q‖ = ‖Σ_o Σ_s P·Q‖ needs the semijoin side
            // duplicate-free (then both sides are 0/1 with the same
            // support) — Corollary 1, and the license of the DISTINCT
            // pushdown rewrite.
            (Distinct::All, Distinct::Distinct) => {
                let d = projection_covers_keys(x);
                d.holds
                    .then(|| proved("duplicate-free semijoin (Corollary 1)", d.detail))
            }
            // ‖Σ_o P·‖Σ_s Q‖‖ = Σ_o Σ_s P·Q needs the *merged* side
            // duplicate-free.
            (Distinct::Distinct, Distinct::All) => {
                let d = projection_covers_keys(y);
                d.holds
                    .then(|| proved("squash absorption + squash elimination", d.detail))
            }
        };
        if let Some(v) = verdict {
            return Some(v);
        }
    }
    None
}

// ---------------------------------------------------------------------
// Inclusion-dependency (foreign-key) elimination.

fn mentions_locally(e: &BoundExpr, range: &std::ops::Range<usize>) -> bool {
    let mut hit = false;
    e.visit_local_attrs(&mut |i| {
        if range.contains(&i) {
            hit = true;
        }
    });
    hit
}

fn mentioned_from_subquery(e: &BoundExpr, range: &std::ops::Range<usize>) -> bool {
    let mut hit = false;
    visit_refs(e, 0, &mut |d, a| {
        if d > 0 && a.up == d && range.contains(&a.idx) {
            hit = true;
        }
    });
    hit
}

/// `big` joins one extra variable `p` whose every mention is an
/// equality pairing a candidate key of `p` with declared-FK columns of
/// a single child variable; removing `p` yields `small`. The factor
/// `Σ_p Π [p.k =̇ c.f]` is identically 1: the FK guarantees at least
/// one match (and `NOT NULL` referencing columns rule out null probes),
/// the key at most one.
fn try_fk_elim(big: &BoundSpec, small: &BoundSpec) -> Option<Verdict> {
    if big.from.len() != small.from.len() + 1 || big.distinct != small.distinct {
        return None;
    }
    let conj = cloned_conjuncts(big);
    'parents: for p_idx in 0..big.from.len() {
        let parent = &big.from[p_idx];
        let range = parent.attr_range();
        if big.projection.iter().any(|pi| range.contains(&pi.attr)) {
            continue;
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new(); // (parent col, other attr)
        let mut kept: Vec<BoundExpr> = Vec::new();
        for c in &conj {
            if mentioned_from_subquery(c, &range) {
                continue 'parents;
            }
            if !mentions_locally(c, &range) {
                kept.push(c.clone());
                continue;
            }
            let BoundExpr::Cmp {
                op: CmpOp::Eq,
                left: BScalar::Attr(l),
                right: BScalar::Attr(r),
            } = c
            else {
                continue 'parents;
            };
            if !l.is_local() || !r.is_local() {
                continue 'parents;
            }
            let (p, o) = if range.contains(&l.idx) {
                (l.idx, r.idx)
            } else {
                (r.idx, l.idx)
            };
            if range.contains(&o) {
                continue 'parents; // parent-internal equality
            }
            pairs.push((p - parent.offset, o));
        }
        if pairs.is_empty() {
            continue;
        }
        // All partner columns must live in one child variable.
        let child = match big.attr_owner(pairs[0].1) {
            Some((t, _)) => t,
            None => continue,
        };
        if pairs.iter().any(|(_, o)| !child.attr_range().contains(o)) {
            continue;
        }
        let mut query_pairs: Vec<(usize, usize)> =
            pairs.iter().map(|(p, o)| (*p, o - child.offset)).collect();
        query_pairs.sort_unstable();
        query_pairs.dedup();
        // A declared FK of the child must match the pairing exactly,
        // target a candidate key of the parent, and have NOT NULL
        // referencing columns.
        let licensed = child.schema.foreign_keys().any(|fk| {
            if fk.parent != parent.schema.name {
                return false;
            }
            let Ok(pcols) = fk
                .parent_columns
                .iter()
                .map(|pc| parent.schema.column_position(pc))
                .collect::<Result<Vec<usize>, _>>()
            else {
                return false;
            };
            let mut declared: Vec<(usize, usize)> = pcols
                .iter()
                .zip(&fk.columns)
                .map(|(p, c)| (*p, *c))
                .collect();
            declared.sort_unstable();
            if declared != query_pairs {
                return false;
            }
            let mut sorted = pcols;
            sorted.sort_unstable();
            parent.schema.candidate_keys().any(|k| k.columns == sorted)
                && fk
                    .columns
                    .iter()
                    .all(|c| !child.schema.columns[*c].nullable)
        });
        if !licensed {
            continue;
        }
        // Build `big` without the parent variable and match.
        let arity = parent.schema.arity();
        let cut = parent.offset;
        let shift = |idx: usize| if idx >= cut + arity { idx - arity } else { idx };
        let from: Vec<FromTable> = big
            .from
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != p_idx)
            .map(|(_, t)| FromTable {
                binding: t.binding.clone(),
                schema: t.schema.clone(),
                offset: shift(t.offset),
            })
            .collect();
        let preds: Vec<BoundExpr> = kept
            .into_iter()
            .map(|mut c| {
                map_refs(&mut c, 0, &mut |d, a| {
                    if a.up == d {
                        a.idx = shift(a.idx);
                    }
                });
                c
            })
            .collect();
        let reduced = BoundSpec {
            distinct: big.distinct,
            from,
            predicate: BoundExpr::conjoin(preds),
            projection: big
                .projection
                .iter()
                .map(|pi| ProjItem {
                    attr: shift(pi.attr),
                    name: pi.name.clone(),
                })
                .collect(),
        };
        if find_iso(&reduced, small).is_some() {
            return Some(proved(
                "inclusion dependency (§7 join elimination)",
                format!(
                    "FK {}→{} onto a candidate key, referencing columns NOT NULL",
                    child.binding, parent.binding
                ),
            ));
        }
    }
    None
}

// ---------------------------------------------------------------------
// Set operations.

fn check_setops(b: &BoundQuery, a: &BoundQuery) -> Verdict {
    let (
        BoundQuery::SetOp {
            op: bo,
            all: ball,
            left: bl,
            right: br,
        },
        BoundQuery::SetOp {
            op: ao,
            all: aall,
            left: al,
            right: ar,
        },
    ) = (b, a)
    else {
        unreachable!("caller matched SetOp");
    };
    if bo != ao || ball != aall {
        return unknown("set operations differ in operator or ALL");
    }
    let pair = |l1: &BoundQuery, l2: &BoundQuery, r1: &BoundQuery, r2: &BoundQuery| match (
        check_equiv(l1, l2),
        check_equiv(r1, r2),
    ) {
        (Verdict::Proved { .. }, Verdict::Proved { .. }) => {
            Some(proved("congruence", "both operands proved equivalent"))
        }
        _ => None,
    };
    if let Some(v) = pair(bl, al, br, ar) {
        return v;
    }
    // UNION and INTERSECT commute (under both ALL and DISTINCT).
    if matches!(bo, SetOp::Union | SetOp::Intersect) {
        if let Some(v) = pair(bl, ar, br, al) {
            return v;
        }
    }
    unknown("operand pair not proved equivalent")
}

/// `INTERSECT`/`EXCEPT` vs its `[NOT] EXISTS` lowering.
fn check_lowering(setop: &BoundQuery, spec: &BoundSpec) -> Verdict {
    let BoundQuery::SetOp {
        op,
        all,
        left,
        right,
    } = setop
    else {
        unreachable!("caller matched SetOp");
    };
    let (Some(lb), Some(rb)) = (left.as_spec(), right.as_spec()) else {
        return unknown("set-operation operands are not single blocks");
    };
    match op {
        SetOp::Union => unknown("no lowering rule for UNION"),
        SetOp::Intersect => {
            for (lead, other) in [(lb, rb), (rb, lb)] {
                if let Some(v) = match_lowered(lead, other, false, *all, spec) {
                    return v;
                }
            }
            unknown("EXISTS form does not match INTERSECT with either operand as lead")
        }
        SetOp::Except => match_lowered(lb, rb, true, *all, spec).unwrap_or_else(|| {
            unknown("NOT EXISTS form does not match EXCEPT with the left operand as lead")
        }),
    }
}

/// `x =̇ y` in its explicit spelling (the canonicalizer collapses both
/// legal spellings to the same atom).
fn dotted_eq(outer_attr: usize, inner_attr: usize) -> BoundExpr {
    let o = BScalar::Attr(AttrRef {
        up: 1,
        idx: outer_attr,
    });
    let i = BScalar::Attr(AttrRef::local(inner_attr));
    BoundExpr::or(
        BoundExpr::and(
            BoundExpr::IsNull {
                scalar: o.clone(),
                negated: false,
            },
            BoundExpr::IsNull {
                scalar: i.clone(),
                negated: false,
            },
        ),
        BoundExpr::Cmp {
            op: CmpOp::Eq,
            left: o,
            right: i,
        },
    )
}

/// Match `spec` against `lead + [NOT] EXISTS(other ∧ π-pairwise =̇)`
/// and judge the multiplicity conditions.
fn match_lowered(
    lead: &BoundSpec,
    other: &BoundSpec,
    negated: bool,
    all: bool,
    spec: &BoundSpec,
) -> Option<Verdict> {
    if lead.projection.len() != other.projection.len() {
        return None;
    }
    let mut sub = other.clone();
    let mut sub_conj = cloned_conjuncts(other);
    for (lo, li) in lead.projection.iter().zip(&other.projection) {
        sub_conj.push(dotted_eq(lo.attr, li.attr));
    }
    sub.predicate = BoundExpr::conjoin(sub_conj);
    let mut expected = lead.clone();
    let mut conj = cloned_conjuncts(lead);
    conj.push(BoundExpr::Exists {
        negated,
        subquery: Box::new(sub),
    });
    expected.predicate = BoundExpr::conjoin(conj);
    find_iso(&expected, spec)?;
    // Multiplicities. Lead body L (its *bag* multiplicity — the iso
    // search never compares squash flags, so the lowered block's body
    // is the lead's body without the lead's own DISTINCT), other R
    // (counting =̇-equal tuples):
    //   INTERSECT          ‖L‖·‖R‖        INTERSECT ALL  min(sq?L, R)
    //   EXCEPT             ‖L‖·(1−‖R‖)    EXCEPT ALL     max(sq?L−R, 0)
    // The lowered form denotes  sq?( L·‖R‖ )  resp.  sq?( L·(1−‖R‖) ).
    // Three sound coincidences:
    //   * DISTINCT operators with a squashed lowered block — the outer
    //     squash restores set semantics whatever L is;
    //   * L ∈ {0,1} *by key coverage* — the body itself is
    //     duplicate-free, so sq is the identity everywhere;
    //   * a lead that is duplicate-free only by its declared DISTINCT
    //     lends nothing to a lowered block that dropped the squash —
    //     it counts only when the lowered block keeps it.
    let strategy = match (negated, all) {
        (false, false) => "set-intersection lowering (Theorem 3)",
        (false, true) => "set-intersection lowering (Corollary 2)",
        (true, false) => "set-difference lowering (Theorem 3)",
        (true, true) => "set-difference lowering (Corollary 2)",
    };
    if !all && spec.distinct == Distinct::Distinct {
        return Some(proved(
            strategy,
            "outer squash restores set semantics; operands pair by =̇",
        ));
    }
    let key_df = projection_covers_keys(lead);
    if key_df.holds {
        return Some(proved(
            strategy,
            format!("duplicate-free lead: {}", key_df.detail),
        ));
    }
    if lead.distinct == Distinct::Distinct && spec.distinct == Distinct::Distinct {
        return Some(proved(
            strategy,
            "duplicate-free lead: declared DISTINCT, and the lowered block keeps the squash",
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn bind(sql: &str) -> BoundQuery {
        let db = supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap()
    }

    fn check(before: &str, after: &str) -> Verdict {
        check_equiv(&bind(before), &bind(after))
    }

    fn assert_proved(before: &str, after: &str, strategy_frag: &str) {
        match check(before, after) {
            Verdict::Proved { strategy, detail } => assert!(
                strategy.contains(strategy_frag),
                "proved by {strategy} ({detail}), wanted strategy containing {strategy_frag:?}"
            ),
            Verdict::Unknown { reason } => {
                panic!("expected Proved({strategy_frag}), got Unknown: {reason}")
            }
        }
    }

    fn assert_unknown(before: &str, after: &str) {
        let v = check(before, after);
        assert!(!v.is_proved(), "expected Unknown, got {v:?}");
    }

    #[test]
    fn variable_renaming_is_an_isomorphism() {
        assert_proved(
            "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SCITY = 'Toronto'",
            "SELECT X.SNO, X.SNAME FROM SUPPLIER X WHERE X.SCITY = 'Toronto'",
            "variable renaming",
        );
        // Join order and binding names are erased too.
        assert_proved(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            "SELECT DISTINCT T.SNAME FROM PARTS Q, SUPPLIER T WHERE Q.SNO = T.SNO",
            "variable renaming",
        );
    }

    #[test]
    fn distinct_removal_needs_a_covered_key() {
        // Theorem 1: projection covers SUPPLIER's key.
        assert_proved(
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S",
            "SELECT S.SNO, S.SNAME FROM SUPPLIER S",
            "squash elimination",
        );
        // ... and is symmetric in argument order.
        assert_proved(
            "SELECT S.SNO, S.SNAME FROM SUPPLIER S",
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S",
            "squash elimination",
        );
        // Bag-vs-set trap: SNAME alone covers no key.
        assert_unknown(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S",
            "SELECT S.SNAME FROM SUPPLIER S",
        );
    }

    #[test]
    fn type1_equalities_extend_the_projection_closure() {
        // SNO = 3 makes SNO constant, so any projection covers the key.
        assert_proved(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3",
            "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3",
            "squash elimination",
        );
        // ... but not under a disjunction (the equality is no longer a
        // singleton CNF clause).
        assert_unknown(
            "SELECT DISTINCT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3 OR S.SCITY = 'Hull'",
            "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3 OR S.SCITY = 'Hull'",
        );
    }

    #[test]
    fn unique_index_key_alone_licenses_a_proof() {
        // A key declared only via CREATE UNIQUE INDEX feeds the axiom
        // set exactly like a declared constraint — and the proof detail
        // names the index.
        let mut db = supplier_schema().unwrap();
        db.run_script("CREATE UNIQUE INDEX IX_SNAME ON SUPPLIER (SNAME)")
            .unwrap();
        let bind = |sql: &str| bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let before = bind("SELECT DISTINCT S.SNAME FROM SUPPLIER S");
        let after = bind("SELECT S.SNAME FROM SUPPLIER S");
        match check_equiv(&before, &after) {
            Verdict::Proved { strategy, detail } => {
                assert_eq!(strategy, "squash elimination (Theorem 1)");
                assert!(detail.contains("IX_SNAME"), "{detail}");
            }
            Verdict::Unknown { reason } => panic!("expected Proved: {reason}"),
        }
    }

    #[test]
    fn theorem_2_absorption_needs_a_single_tuple_subquery() {
        // The correlated PARTS probe binds its full key (SNO from the
        // correlation, PNO from the constant), so EXISTS ⇔ join even
        // under bag semantics.
        assert_proved(
            "SELECT S.SNAME FROM SUPPLIER S \
             WHERE EXISTS (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = 10)",
            "SELECT S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.PNO = 10",
            "Theorem 2",
        );
        // Without PNO bound the subquery may yield several tuples:
        // the pair is NOT equivalent under bag semantics.
        assert_unknown(
            "SELECT S.SNAME FROM SUPPLIER S \
             WHERE EXISTS (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)",
            "SELECT S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        );
    }

    #[test]
    fn corollary_1_absorption_covers_distinct_pushdown() {
        // DISTINCT join vs undistinct semijoin: sound because the
        // semijoin side's projection covers SUPPLIER's key. This is
        // exactly the DISTINCT-pushdown rewrite's proof obligation.
        assert_proved(
            "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            "SELECT S.SNO, S.SNAME FROM SUPPLIER S \
             WHERE EXISTS (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)",
            "Corollary 1",
        );
        // Non-key projection: pushing DISTINCT into a semijoin would
        // change multiplicities. Never proved.
        assert_unknown(
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            "SELECT S.SCITY FROM SUPPLIER S \
             WHERE EXISTS (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)",
        );
    }

    #[test]
    fn squash_absorption_when_both_sides_are_squashed() {
        assert_proved(
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S \
             WHERE EXISTS (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)",
            "squash absorption",
        );
    }

    #[test]
    fn fk_join_elimination_needs_the_declared_fk() {
        // PARTS.SNO → SUPPLIER.SNO, NOT NULL, onto the parent key.
        assert_proved(
            "SELECT P.PNO, P.PNAME FROM PARTS P, SUPPLIER S WHERE P.SNO = S.SNO",
            "SELECT P.PNO, P.PNAME FROM PARTS P",
            "inclusion dependency",
        );
        // Reverse direction: suppliers without parts would be lost;
        // there is no FK SUPPLIER → PARTS. Never proved.
        assert_unknown(
            "SELECT S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            "SELECT S.SNAME FROM SUPPLIER S",
        );
        // Extra predicate on the parent defeats the elimination.
        assert_unknown(
            "SELECT P.PNO FROM PARTS P, SUPPLIER S WHERE P.SNO = S.SNO AND S.BUDGET > 0",
            "SELECT P.PNO FROM PARTS P",
        );
    }

    #[test]
    fn intersect_lowering_is_proved_with_the_null_aware_pairing() {
        assert_proved(
            "SELECT S.SCITY FROM SUPPLIER S INTERSECT SELECT A.ACITY FROM AGENTS A",
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S \
             WHERE EXISTS (SELECT A.ACITY FROM AGENTS A \
                           WHERE (S.SCITY IS NULL AND A.ACITY IS NULL) OR S.SCITY = A.ACITY)",
            "set-intersection lowering",
        );
        // A plain `=` pairing on nullable columns is NOT the =̇ the set
        // operation uses: NULL cities would be dropped. Never proved.
        assert_unknown(
            "SELECT S.SCITY FROM SUPPLIER S INTERSECT SELECT A.ACITY FROM AGENTS A",
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S \
             WHERE EXISTS (SELECT A.ACITY FROM AGENTS A WHERE S.SCITY = A.ACITY)",
        );
    }

    #[test]
    fn except_lowering_and_its_operand_order_trap() {
        let lowered = "SELECT DISTINCT S.SCITY FROM SUPPLIER S \
             WHERE NOT EXISTS (SELECT A.ACITY FROM AGENTS A \
                               WHERE (S.SCITY IS NULL AND A.ACITY IS NULL) OR S.SCITY = A.ACITY)";
        assert_proved(
            "SELECT S.SCITY FROM SUPPLIER S EXCEPT SELECT A.ACITY FROM AGENTS A",
            lowered,
            "set-difference lowering",
        );
        // EXCEPT does not commute: the swapped operands must not match
        // the same lowered form.
        assert_unknown(
            "SELECT A.ACITY FROM AGENTS A EXCEPT SELECT S.SCITY FROM SUPPLIER S",
            lowered,
        );
    }

    #[test]
    fn union_has_no_lowering_and_all_flags_never_mix() {
        assert_unknown(
            "SELECT S.SCITY FROM SUPPLIER S UNION SELECT A.ACITY FROM AGENTS A",
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S",
        );
        // UNION vs UNION ALL is the classic bag-vs-set trap.
        assert_unknown(
            "SELECT S.SCITY FROM SUPPLIER S UNION SELECT A.ACITY FROM AGENTS A",
            "SELECT S.SCITY FROM SUPPLIER S UNION ALL SELECT A.ACITY FROM AGENTS A",
        );
    }

    #[test]
    fn setop_congruence_commutes_union_but_not_except() {
        assert_proved(
            "SELECT S.SCITY FROM SUPPLIER S UNION SELECT A.ACITY FROM AGENTS A",
            "SELECT A.ACITY FROM AGENTS A UNION SELECT S.SCITY FROM SUPPLIER S",
            "congruence",
        );
        assert_unknown(
            "SELECT S.SCITY FROM SUPPLIER S EXCEPT SELECT A.ACITY FROM AGENTS A",
            "SELECT A.ACITY FROM AGENTS A EXCEPT SELECT S.SCITY FROM SUPPLIER S",
        );
    }

    #[test]
    fn verdict_downgrades_into_proof_status() {
        let v = check(
            "SELECT DISTINCT S.SNO FROM SUPPLIER S",
            "SELECT S.SNO FROM SUPPLIER S",
        );
        assert!(v.is_proved());
        assert!(v.into_status().is_proved());
        let u = unknown("why not");
        assert_eq!(
            u.into_status(),
            ProofStatus::PropertyTested {
                reason: "why not".into()
            }
        );
    }
}
