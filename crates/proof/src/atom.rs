//! Canonical predicate atoms.
//!
//! The checker compares two query blocks by comparing their predicates
//! *as sorted multisets of canonical atoms* under a candidate variable
//! bijection. [`PAtom`] is a normal form for [`BoundExpr`] that erases
//! the differences equivalent rewrites are allowed to introduce:
//!
//! - symmetric comparisons (`=`, `<>`) sort their operands; `>`/`>=`
//!   normalize to `<`/`<=` with swapped operands;
//! - `AND`/`OR` chains flatten, sort, and deduplicate (idempotence);
//! - `NOT` pushes through comparisons (sound in three-valued logic:
//!   both sides map `unknown → unknown`) and through the two-valued
//!   `IS NULL` / `EXISTS` / `IN` forms;
//! - the null-aware equality `x =̇ y` is recognized in both of its
//!   legal spellings: the explicit
//!   `(x IS NULL AND y IS NULL) OR x = y` disjunction, and a plain
//!   `x = y` **when both columns are declared `NOT NULL`** (the only
//!   situation where `=` and `=̇` coincide) — both become
//!   [`PAtom::NullEq`]. A rewrite that emits a plain `=` on a nullable
//!   column does *not* canonicalize to `NullEq` and therefore cannot be
//!   proved equivalent to a set operation's `=̇` pairing;
//! - subqueries under `EXISTS` drop their projection and `DISTINCT`
//!   flag (neither affects `EXISTS` truth); subqueries under `IN` drop
//!   only the flag.
//!
//! Every erasure above is an equivalence, so two blocks whose canonical
//! atoms differ are simply `Unknown` — never wrongly proved.

use uniq_plan::{BScalar, BoundExpr, BoundSpec};
use uniq_sql::CmpOp;

/// A canonical scalar operand. Attribute indices are in the space of
/// the block being *matched against* (the canonicalizer applies the
/// candidate variable bijection's attribute map on the fly).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PScalar {
    /// A column reference: `up` block levels out, position `idx`.
    Attr {
        /// Blocks to walk outwards (0 = the atom's own block).
        up: usize,
        /// Flat attribute position in that block.
        idx: usize,
    },
    /// A literal, encoded canonically.
    Lit(String),
    /// A host variable, by name.
    Host(String),
}

/// Comparison operators surviving canonicalization (`>`/`>=` normalize
/// away). Encoded as ordered codes so atoms sort.
pub const OP_EQ: u8 = 0;
/// `<>`.
pub const OP_NE: u8 = 1;
/// `<`.
pub const OP_LT: u8 = 2;
/// `<=`.
pub const OP_LE: u8 = 3;

/// A canonical predicate atom. Ordered so atom lists can be sorted and
/// compared as multisets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PAtom {
    /// Null-aware equality `x =̇ y` (operands sorted).
    NullEq(PScalar, PScalar),
    /// `left op right` after operator normalization.
    Cmp {
        /// One of [`OP_EQ`], [`OP_NE`], [`OP_LT`], [`OP_LE`].
        op: u8,
        /// Left operand.
        left: PScalar,
        /// Right operand.
        right: PScalar,
    },
    /// `scalar [NOT] BETWEEN low AND high`.
    Between {
        /// Tested operand.
        scalar: PScalar,
        /// Lower bound.
        low: PScalar,
        /// Upper bound.
        high: PScalar,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `scalar [NOT] IN (list…)` (list sorted).
    InList {
        /// Tested operand.
        scalar: PScalar,
        /// List elements.
        list: Vec<PScalar>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `scalar IS [NOT] NULL`.
    IsNull {
        /// Tested operand.
        scalar: PScalar,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// `NOT EXISTS`.
        negated: bool,
        /// Canonical subquery block.
        sub: PBlock,
    },
    /// `scalar [NOT] IN (subquery)`.
    InSub {
        /// Tested operand.
        scalar: PScalar,
        /// `NOT IN`.
        negated: bool,
        /// Canonical subquery block.
        sub: PBlock,
    },
    /// Conjunction (flattened, sorted, deduplicated).
    And(Vec<PAtom>),
    /// Disjunction (flattened, sorted, deduplicated).
    Or(Vec<PAtom>),
    /// Negation (only of `And`/`Or`/`NullEq`; all other negations
    /// push inside).
    Not(Box<PAtom>),
}

/// A canonical subquery block: tables in `FROM` order (by schema name),
/// sorted conjunct atoms, and — for `IN` subqueries only — the
/// projected scalar.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PBlock {
    /// Schema names of the `FROM` tables, in declaration order.
    pub tables: Vec<String>,
    /// Sorted, deduplicated canonical conjuncts.
    pub atoms: Vec<PAtom>,
    /// Projected scalars (`EXISTS` blocks erase these).
    pub proj: Vec<PScalar>,
}

/// Canonicalizes expressions of one root block, optionally rewriting
/// that block's attribute positions through a bijection's map.
pub struct Canonicalizer<'a> {
    /// Enclosing blocks, root first; the last entry is the block whose
    /// expressions are currently being walked.
    stack: Vec<&'a BoundSpec>,
    /// Attribute map for references resolving to the *root* block
    /// (`map[idx]` = position in the space being matched against).
    map: Option<&'a [usize]>,
}

impl<'a> Canonicalizer<'a> {
    /// A canonicalizer rooted at `root`. `map`, when present, rewrites
    /// every reference that resolves to `root` into the peer block's
    /// attribute space.
    pub fn new(root: &'a BoundSpec, map: Option<&'a [usize]>) -> Canonicalizer<'a> {
        Canonicalizer {
            stack: vec![root],
            map,
        }
    }

    /// Canonicalize the root block's top-level conjuncts (sorted,
    /// deduplicated).
    pub fn conjuncts(&mut self) -> Vec<PAtom> {
        let root: &'a BoundSpec = self.stack[0];
        let mut atoms: Vec<PAtom> = match &root.predicate {
            Some(p) => p.conjuncts().into_iter().map(|c| self.expr(c)).collect(),
            None => Vec::new(),
        };
        atoms.sort();
        atoms.dedup();
        atoms
    }

    /// Canonicalize the root block's projection (scalar + output name
    /// per item, in order — projection order is output column order).
    pub fn projection(&mut self) -> Vec<(PScalar, String)> {
        self.stack[0]
            .projection
            .iter()
            .map(|p| {
                let idx = match self.map {
                    Some(m) => m[p.attr],
                    None => p.attr,
                };
                (PScalar::Attr { up: 0, idx }, p.name.to_string())
            })
            .collect()
    }

    fn scalar(&self, s: &BScalar) -> PScalar {
        match s {
            BScalar::Attr(a) => {
                let depth = self.stack.len() - 1;
                let idx = if a.up == depth {
                    // Resolves to the root block: apply the bijection.
                    match self.map {
                        Some(m) => m[a.idx],
                        None => a.idx,
                    }
                } else {
                    a.idx
                };
                PScalar::Attr { up: a.up, idx }
            }
            BScalar::Literal(v) => PScalar::Lit(format!("{v:?}")),
            BScalar::HostVar(h) => PScalar::Host(h.to_string()),
        }
    }

    /// Whether a scalar is an attribute declared `NOT NULL` (resolved
    /// against the *original* block stack, before any remapping —
    /// nullability is a schema property and survives the bijection).
    fn non_nullable_attr(&self, s: &BScalar) -> bool {
        let BScalar::Attr(a) = s else { return false };
        let depth = self.stack.len() - 1;
        if a.up > depth {
            return false; // escapes the root: unknown, stay conservative
        }
        let block = self.stack[depth - a.up];
        match block.attr_owner(a.idx) {
            Some((t, c)) => !t.schema.columns[c].nullable,
            None => false,
        }
    }

    fn sub_block(&mut self, sub: &'a BoundSpec, keep_proj: bool) -> PBlock {
        self.stack.push(sub);
        let mut atoms: Vec<PAtom> = match &sub.predicate {
            Some(p) => p.conjuncts().into_iter().map(|c| self.expr(c)).collect(),
            None => Vec::new(),
        };
        atoms.sort();
        atoms.dedup();
        let proj = if keep_proj {
            sub.projection
                .iter()
                .map(|p| self.scalar(&BScalar::Attr(uniq_plan::AttrRef::local(p.attr))))
                .collect()
        } else {
            Vec::new()
        };
        self.stack.pop();
        PBlock {
            tables: sub.from.iter().map(|t| t.schema.name.to_string()).collect(),
            atoms,
            proj,
        }
    }

    /// Canonicalize one (sub)expression of the current block.
    pub fn expr(&mut self, e: &'a BoundExpr) -> PAtom {
        match e {
            BoundExpr::Cmp { op, left, right } => self.cmp(*op, left, right),
            BoundExpr::Between {
                scalar,
                low,
                high,
                negated,
            } => PAtom::Between {
                scalar: self.scalar(scalar),
                low: self.scalar(low),
                high: self.scalar(high),
                negated: *negated,
            },
            BoundExpr::InList {
                scalar,
                list,
                negated,
            } => {
                let mut list: Vec<PScalar> = list.iter().map(|s| self.scalar(s)).collect();
                list.sort();
                list.dedup();
                PAtom::InList {
                    scalar: self.scalar(scalar),
                    list,
                    negated: *negated,
                }
            }
            BoundExpr::IsNull { scalar, negated } => PAtom::IsNull {
                scalar: self.scalar(scalar),
                negated: *negated,
            },
            BoundExpr::Exists { negated, subquery } => PAtom::Exists {
                negated: *negated,
                sub: self.sub_block(subquery, false),
            },
            BoundExpr::InSubquery {
                scalar,
                subquery,
                negated,
            } => PAtom::InSub {
                scalar: self.scalar(scalar),
                negated: *negated,
                sub: self.sub_block(subquery, true),
            },
            BoundExpr::And(a, b) => {
                let mut kids = Vec::new();
                flatten_and(self.expr(a), &mut kids);
                flatten_and(self.expr(b), &mut kids);
                norm_nary(kids, true)
            }
            BoundExpr::Or(a, b) => {
                let mut kids = Vec::new();
                flatten_or(self.expr(a), &mut kids);
                flatten_or(self.expr(b), &mut kids);
                norm_nary(kids, false)
            }
            BoundExpr::Not(x) => negate(self.expr(x)),
        }
    }

    fn cmp(&self, op: CmpOp, left: &BScalar, right: &BScalar) -> PAtom {
        // Normalize direction: a > b ≡ b < a, a >= b ≡ b <= a.
        let (op, l, r) = match op {
            CmpOp::Gt => (OP_LT, right, left),
            CmpOp::Ge => (OP_LE, right, left),
            CmpOp::Lt => (OP_LT, left, right),
            CmpOp::Le => (OP_LE, left, right),
            CmpOp::Eq => (OP_EQ, left, right),
            CmpOp::Ne => (OP_NE, left, right),
        };
        let (mut cl, mut cr) = (self.scalar(l), self.scalar(r));
        if (op == OP_EQ || op == OP_NE) && cl > cr {
            std::mem::swap(&mut cl, &mut cr);
        }
        // On two NOT NULL columns `=` and the null-aware `=̇` coincide.
        if op == OP_EQ && self.non_nullable_attr(l) && self.non_nullable_attr(r) {
            return PAtom::NullEq(cl, cr);
        }
        PAtom::Cmp {
            op,
            left: cl,
            right: cr,
        }
    }
}

fn flatten_and(a: PAtom, out: &mut Vec<PAtom>) {
    match a {
        PAtom::And(kids) => out.extend(kids),
        other => out.push(other),
    }
}

fn flatten_or(a: PAtom, out: &mut Vec<PAtom>) {
    match a {
        PAtom::Or(kids) => out.extend(kids),
        other => out.push(other),
    }
}

/// Sort + dedup an n-ary chain; unwrap singletons; recognize the
/// explicit `=̇` spelling on disjunctions.
fn norm_nary(mut kids: Vec<PAtom>, conj: bool) -> PAtom {
    kids.sort();
    kids.dedup();
    if kids.len() == 1 {
        return kids.pop().expect("non-empty");
    }
    if !conj {
        if let Some(ne) = match_null_eq(&kids) {
            return ne;
        }
        return PAtom::Or(kids);
    }
    PAtom::And(kids)
}

/// Recognize `(x IS NULL AND y IS NULL) OR x = y` — the explicit
/// spelling of `x =̇ y` — among sorted disjuncts.
fn match_null_eq(kids: &[PAtom]) -> Option<PAtom> {
    if kids.len() != 2 {
        return None;
    }
    let mut nulls: Option<(&PScalar, &PScalar)> = None;
    let mut eqs: Option<(&PScalar, &PScalar)> = None;
    for k in kids {
        match k {
            PAtom::And(two) => {
                if let [PAtom::IsNull {
                    scalar: x,
                    negated: false,
                }, PAtom::IsNull {
                    scalar: y,
                    negated: false,
                }] = two.as_slice()
                {
                    nulls = Some((x, y));
                }
            }
            PAtom::Cmp {
                op: OP_EQ,
                left,
                right,
            } => eqs = Some((left, right)),
            PAtom::NullEq(left, right) => eqs = Some((left, right)),
            _ => {}
        }
    }
    let ((nx, ny), (ex, ey)) = (nulls?, eqs?);
    // Both pair lists are sorted, so compare positionally.
    if nx == ex && ny == ey {
        return Some(PAtom::NullEq(ex.clone(), ey.clone()));
    }
    None
}

/// Push a negation inside. Sound in three-valued logic: every folded
/// pair maps `unknown` to `unknown` on both sides, and `IS NULL`,
/// `EXISTS`, and `[NOT] IN` carry their negation as a flag by SQL
/// definition.
fn negate(a: PAtom) -> PAtom {
    match a {
        PAtom::Cmp { op, left, right } => {
            let (op, left, right) = match op {
                OP_EQ => (OP_NE, left, right),
                OP_NE => (OP_EQ, left, right),
                OP_LT => (OP_LE, right, left),
                _ => (OP_LT, right, left),
            };
            let (mut left, mut right) = (left, right);
            if (op == OP_EQ || op == OP_NE) && left > right {
                std::mem::swap(&mut left, &mut right);
            }
            PAtom::Cmp { op, left, right }
        }
        PAtom::Between {
            scalar,
            low,
            high,
            negated,
        } => PAtom::Between {
            scalar,
            low,
            high,
            negated: !negated,
        },
        PAtom::InList {
            scalar,
            list,
            negated,
        } => PAtom::InList {
            scalar,
            list,
            negated: !negated,
        },
        PAtom::IsNull { scalar, negated } => PAtom::IsNull {
            scalar,
            negated: !negated,
        },
        PAtom::Exists { negated, sub } => PAtom::Exists {
            negated: !negated,
            sub,
        },
        PAtom::InSub {
            scalar,
            negated,
            sub,
        } => PAtom::InSub {
            scalar,
            negated: !negated,
            sub,
        },
        PAtom::Not(inner) => *inner,
        other => PAtom::Not(Box::new(other)),
    }
}

/// Canonicalize `spec`'s top-level conjuncts under an optional root
/// attribute map.
pub fn canon_conjuncts(spec: &BoundSpec, map: Option<&[usize]>) -> Vec<PAtom> {
    Canonicalizer::new(spec, map).conjuncts()
}

/// Canonicalize `spec`'s projection under an optional root attribute
/// map.
pub fn canon_projection(spec: &BoundSpec, map: Option<&[usize]>) -> Vec<(PScalar, String)> {
    Canonicalizer::new(spec, map).projection()
}
