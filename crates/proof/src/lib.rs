//! `uniq-proof` — a U-semiring symbolic equivalence checker for the
//! rewrite engine.
//!
//! Every query denotes a function from tuples to a commutative
//! semiring with squash: a block is
//! `sq?( Σ_{v₁…vₙ} Π atoms(v) · Π ‖sub(v)‖ · [u = π(v)] )`, where the
//! sum ranges over one tuple variable per `FROM` table, `‖·‖` squashes
//! a sub-sum to 0/1 (`EXISTS`, `IN`), and the outer `sq?` is the
//! block's `DISTINCT` flag. Two queries are equivalent iff their
//! denotations agree on every database satisfying the schema's
//! integrity constraints — keys, unique indexes, foreign keys,
//! nullability — which are exactly the checker's axioms.
//!
//! The crate is organized as:
//!
//! - [`atom`]: canonical atom normal form, erasing only
//!   equivalence-preserving differences (operand order, `AND`/`OR`
//!   flattening, the two spellings of the null-aware `=̇`,
//!   three-valued-logic-sound `NOT` pushing).
//! - [`axioms`]: FD derivation from candidate keys (declared and
//!   unique-index-registered) plus predicate equalities, answering the
//!   duplicate-free and single-tuple side-condition queries.
//! - [`check`]: the decision procedure — [`check_equiv`] returns
//!   [`Verdict::Proved`] or [`Verdict::Unknown`], sound and incomplete.
//! - [`justify`]: the unified [`Justification`] vocabulary shared by
//!   the rewrite engine and the physical planner, carrying each step's
//!   [`ProofStatus`].
//!
//! The checker is the rewrite engine's *independent auditor*: it
//! depends only on the bound representation and the catalog, never on
//! `uniq-core`, and re-derives every side condition from the axioms
//! rather than trusting the firing rule's own analysis. A `Proved`
//! verdict is a theorem; an `Unknown` verdict sends the step to the
//! execution-equivalence property-test oracle.

pub mod atom;
pub mod axioms;
pub mod check;
pub mod justify;

pub use check::{check_equiv, Verdict};
pub use justify::{Justification, ProofStatus};
