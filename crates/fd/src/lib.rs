//! Functional-dependency machinery.
//!
//! The paper's Theorem 1 is, at heart, a functional-dependency question:
//! *is the projection list a superkey of the derived table?* This crate
//! provides the classical tools to answer it — attribute sets as bitsets
//! ([`AttrSet`]), FD sets with attribute-set closure ([`FdSet`], the
//! textbook fixpoint algorithm, cf. Ullman and Klug), and candidate-key
//! extraction ([`keys`], in the spirit of Darwen).
//!
//! Null semantics: every FD here is an FD *under the `=̇` comparison* of
//! the paper's Definition 1 — two tuples agreeing (null-aware) on the LHS
//! agree (null-aware) on the RHS. Under SQL2's treatment of `NULL` key
//! values as a single special value (§2.1), both `PRIMARY KEY` and
//! `UNIQUE` constraints yield such FDs, which is why `uniq-core` can feed
//! candidate keys of either kind into this machinery unchanged.

pub mod attrset;
pub mod fdset;
pub mod keys;

pub use attrset::AttrSet;
pub use fdset::{Fd, FdSet};
pub use keys::{candidate_keys, minimize_key};
