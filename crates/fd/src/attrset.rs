//! Attribute sets as growable bitsets.
//!
//! Attribute positions in a query block's Cartesian product are small
//! dense integers, so a `Vec<u64>` bitset gives O(words) set algebra —
//! the closure fixpoint in [`crate::fdset`] is dominated by these
//! operations.

use std::fmt;

/// A set of attribute positions.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet {
    words: Vec<u64>,
}

impl AttrSet {
    /// The empty set.
    pub fn new() -> AttrSet {
        AttrSet::default()
    }

    /// Set containing the given attributes.
    pub fn from_iter_attrs(attrs: impl IntoIterator<Item = usize>) -> AttrSet {
        let mut s = AttrSet::new();
        for a in attrs {
            s.insert(a);
        }
        s
    }

    /// The set `{0, 1, …, n-1}`.
    pub fn all(n: usize) -> AttrSet {
        AttrSet::from_iter_attrs(0..n)
    }

    /// Singleton set.
    pub fn single(a: usize) -> AttrSet {
        AttrSet::from_iter_attrs([a])
    }

    /// Insert an attribute; returns whether it was newly added.
    pub fn insert(&mut self, a: usize) -> bool {
        let w = a / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (a % 64);
        let newly = self.words[w] & bit == 0;
        self.words[w] |= bit;
        newly
    }

    /// Remove an attribute; returns whether it was present.
    pub fn remove(&mut self, a: usize) -> bool {
        let w = a / 64;
        if w >= self.words.len() {
            return false;
        }
        let bit = 1u64 << (a % 64);
        let present = self.words[w] & bit != 0;
        self.words[w] &= !bit;
        present
    }

    /// Membership test.
    pub fn contains(&self, a: usize) -> bool {
        let w = a / 64;
        w < self.words.len() && self.words[w] & (1u64 << (a % 64)) != 0
    }

    /// In-place union; returns whether `self` grew.
    pub fn union_with(&mut self, other: &AttrSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut grew = false;
        for (i, &w) in other.words.iter().enumerate() {
            let before = self.words[i];
            self.words[i] |= w;
            grew |= self.words[i] != before;
        }
        grew
    }

    /// Union, by value.
    pub fn union(mut self, other: &AttrSet) -> AttrSet {
        self.union_with(other);
        self
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        for (i, &w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            if w & !o != 0 {
                return false;
            }
        }
        true
    }

    /// Do the sets share any attribute?
    pub fn intersects(&self, other: &AttrSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate attributes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(i * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// Shift every attribute up by `offset` (used when embedding one
    /// table's attributes into a product's flat space).
    pub fn shifted(&self, offset: usize) -> AttrSet {
        AttrSet::from_iter_attrs(self.iter().map(|a| a + offset))
    }
}

impl FromIterator<usize> for AttrSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> AttrSet {
        AttrSet::from_iter_attrs(iter)
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = AttrSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3));
        assert!(s.contains(100));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn subset_and_union() {
        let a = AttrSet::from_iter_attrs([1, 2]);
        let b = AttrSet::from_iter_attrs([1, 2, 3, 70]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = a.clone();
        assert!(c.union_with(&b));
        assert_eq!(c, b);
        assert!(!c.union_with(&b), "no growth on second union");
    }

    #[test]
    fn subset_handles_length_mismatch() {
        let small = AttrSet::from_iter_attrs([1]);
        let large = AttrSet::from_iter_attrs([1, 200]);
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(AttrSet::new().is_subset(&small));
    }

    #[test]
    fn iter_is_sorted() {
        let s = AttrSet::from_iter_attrs([65, 2, 130, 0]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 65, 130]);
    }

    #[test]
    fn shifted_offsets_all_attrs() {
        let s = AttrSet::from_iter_attrs([0, 3]);
        assert_eq!(s.shifted(5).iter().collect::<Vec<_>>(), vec![5, 8]);
    }

    #[test]
    fn all_and_single() {
        assert_eq!(AttrSet::all(3).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(AttrSet::single(7).len(), 1);
    }

    #[test]
    fn intersects() {
        let a = AttrSet::from_iter_attrs([1, 2]);
        let b = AttrSet::from_iter_attrs([2, 3]);
        let c = AttrSet::from_iter_attrs([4]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }
}
