//! Candidate-key extraction from an FD set.
//!
//! Used to report the derived keys of a rewritten query (Darwen-style
//! "role of functional dependence in query decomposition") and by tests
//! that cross-check the analyzers. Worst case the number of candidate keys
//! is exponential; [`candidate_keys`] is bounded and intended for the
//! small aritiess of query blocks (tens of attributes), while
//! [`minimize_key`] cheaply extracts *one* minimal key from a superkey.

use crate::attrset::AttrSet;
use crate::fdset::FdSet;

/// Shrink a superkey to a minimal key by dropping redundant attributes
/// (linear number of closure computations; result depends on iteration
/// order, as usual).
pub fn minimize_key(fds: &FdSet, superkey: &AttrSet) -> AttrSet {
    let mut key = superkey.clone();
    let attrs: Vec<usize> = key.iter().collect();
    for a in attrs {
        let mut candidate = key.clone();
        candidate.remove(a);
        if fds.is_superkey(&candidate) {
            key = candidate;
        }
    }
    key
}

/// Enumerate candidate keys of the universe, up to `limit` keys
/// (breadth-first over attribute subsets seeded with one minimized key;
/// complete for small schemas, bounded everywhere).
pub fn candidate_keys(fds: &FdSet, limit: usize) -> Vec<AttrSet> {
    let universe = AttrSet::all(fds.arity());
    if !fds.is_superkey(&universe) {
        // The universe always determines itself; this can only fail for
        // arity 0, where the empty set is the (degenerate) key.
        return vec![AttrSet::new()];
    }
    let first = minimize_key(fds, &universe);
    let mut keys: Vec<AttrSet> = vec![first];
    let mut queue: Vec<AttrSet> = keys.clone();
    // Lucchesi–Osborn style exploration: for each known key K and each FD
    // X → Y with Y ∩ K ≠ ∅, the set X ∪ (K − Y) is a superkey whose
    // minimization may be a new key.
    while let Some(key) = queue.pop() {
        if keys.len() >= limit {
            break;
        }
        for fd in fds.fds() {
            if !fd.rhs.intersects(&key) {
                continue;
            }
            let mut candidate = fd.lhs.clone();
            for a in key.iter() {
                if !fd.rhs.contains(a) {
                    candidate.insert(a);
                }
            }
            if !fds.is_superkey(&candidate) {
                continue;
            }
            let minimized = minimize_key(fds, &candidate);
            if !keys.contains(&minimized) {
                keys.push(minimized.clone());
                queue.push(minimized);
                if keys.len() >= limit {
                    break;
                }
            }
        }
    }
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(attrs: &[usize]) -> AttrSet {
        AttrSet::from_iter_attrs(attrs.iter().copied())
    }

    #[test]
    fn minimize_drops_redundant_attrs() {
        // 0 → 1,2,3 : {0,1,2,3} minimizes to {0}.
        let mut fds = FdSet::new(4);
        fds.add_fd([0], [1, 2, 3]);
        assert_eq!(minimize_key(&fds, &AttrSet::all(4)), set(&[0]));
    }

    #[test]
    fn finds_multiple_candidate_keys() {
        // Classic: R(A,B,C) with A→B, B→A, AB→C ⇒ keys {A,C}? No:
        // A→B, B→A, A→C gives keys {A} and {B}.
        let mut fds = FdSet::new(3);
        fds.add_fd([0], [1]);
        fds.add_fd([1], [0]);
        fds.add_fd([0], [2]);
        let keys = candidate_keys(&fds, 10);
        assert_eq!(keys, vec![set(&[0]), set(&[1])]);
    }

    #[test]
    fn composite_keys() {
        // R(A,B,C,D): AB → CD, CD → AB ⇒ keys {A,B} and {C,D}.
        let mut fds = FdSet::new(4);
        fds.add_fd([0, 1], [2, 3]);
        fds.add_fd([2, 3], [0, 1]);
        let keys = candidate_keys(&fds, 10);
        assert!(keys.contains(&set(&[0, 1])));
        assert!(keys.contains(&set(&[2, 3])));
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn no_fds_means_whole_universe_is_the_key() {
        let fds = FdSet::new(3);
        assert_eq!(candidate_keys(&fds, 10), vec![set(&[0, 1, 2])]);
    }

    #[test]
    fn constants_shrink_keys() {
        // 2 constant, 0 → 1 : key is {0} (0 determines 1; 2 from ∅).
        let mut fds = FdSet::new(3);
        fds.add_constant(2);
        fds.add_fd([0], [1]);
        assert_eq!(candidate_keys(&fds, 10), vec![set(&[0])]);
    }

    #[test]
    fn limit_bounds_enumeration() {
        // Pairwise equivalent attributes: every singleton is a key.
        let mut fds = FdSet::new(6);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    fds.add_fd([i], [j]);
                }
            }
        }
        let keys = candidate_keys(&fds, 3);
        assert_eq!(keys.len(), 3);
        assert!(keys.iter().all(|k| k.len() == 1));
    }
}
