//! Functional dependencies and attribute-set closure.

use crate::attrset::AttrSet;
use std::fmt;

/// A functional dependency `lhs → rhs` (under the null-aware `=̇`
/// comparison; see the crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// Determinant.
    pub lhs: AttrSet,
    /// Dependent attributes.
    pub rhs: AttrSet,
}

impl Fd {
    /// Construct `lhs → rhs`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Fd {
        Fd { lhs, rhs }
    }

    /// `∅ → {a}`: attribute `a` is constant across all qualifying tuples
    /// (the paper's Type-1 equality `v = c` yields exactly this).
    pub fn constant(a: usize) -> Fd {
        Fd::new(AttrSet::new(), AttrSet::single(a))
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} -> {:?}", self.lhs, self.rhs)
    }
}

/// A set of functional dependencies over an attribute universe
/// `{0, …, arity-1}`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FdSet {
    arity: usize,
    fds: Vec<Fd>,
}

impl FdSet {
    /// An empty FD set over `arity` attributes.
    pub fn new(arity: usize) -> FdSet {
        FdSet {
            arity,
            fds: Vec::new(),
        }
    }

    /// The attribute universe size.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The stored (non-closed) dependency list.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Add a dependency.
    pub fn add(&mut self, fd: Fd) {
        debug_assert!(fd.lhs.iter().all(|a| a < self.arity));
        debug_assert!(fd.rhs.iter().all(|a| a < self.arity));
        self.fds.push(fd);
    }

    /// Add `lhs → rhs` from iterators.
    pub fn add_fd(
        &mut self,
        lhs: impl IntoIterator<Item = usize>,
        rhs: impl IntoIterator<Item = usize>,
    ) {
        self.add(Fd::new(
            AttrSet::from_iter_attrs(lhs),
            AttrSet::from_iter_attrs(rhs),
        ));
    }

    /// Mark attribute `a` constant (`∅ → a`).
    pub fn add_constant(&mut self, a: usize) {
        self.add(Fd::constant(a));
    }

    /// Record the equivalence `a ↔ b` (a Type-2 equality `v1 = v2`
    /// surviving a false-interpreted `WHERE` makes the two columns
    /// mutually determining).
    pub fn add_equiv(&mut self, a: usize, b: usize) {
        self.add_fd([a], [b]);
        self.add_fd([b], [a]);
    }

    /// Embed another FD set whose attributes start at `offset` (Cartesian
    /// product composition: FDs of each operand carry over verbatim into
    /// the product's flat attribute space).
    pub fn absorb_shifted(&mut self, other: &FdSet, offset: usize) {
        for fd in &other.fds {
            self.add(Fd::new(fd.lhs.shifted(offset), fd.rhs.shifted(offset)));
        }
    }

    /// Attribute-set closure `attrs⁺`: the largest set functionally
    /// determined by `attrs` (textbook fixpoint; O(|fds|²) worst case,
    /// linear in practice here).
    pub fn closure_of(&self, attrs: &AttrSet) -> AttrSet {
        let mut closure = attrs.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &self.fds {
                if fd.lhs.is_subset(&closure) && !fd.rhs.is_subset(&closure) {
                    closure.union_with(&fd.rhs);
                    changed = true;
                }
            }
        }
        closure
    }

    /// Does this FD set imply `lhs → rhs`?
    pub fn implies(&self, lhs: &AttrSet, rhs: &AttrSet) -> bool {
        rhs.is_subset(&self.closure_of(lhs))
    }

    /// Is `attrs` a superkey of the universe (its closure covers all
    /// attributes)?
    pub fn is_superkey(&self, attrs: &AttrSet) -> bool {
        self.closure_of(attrs).len() == self.arity
    }

    /// Does `attrs` functionally determine `target`?
    /// This is Theorem 1's consequent with `target` = `Key(R) ⊕ Key(S)`:
    /// the projection determines the product key, hence no duplicates.
    pub fn determines(&self, attrs: &AttrSet, target: &AttrSet) -> bool {
        target.is_subset(&self.closure_of(attrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(attrs: &[usize]) -> AttrSet {
        AttrSet::from_iter_attrs(attrs.iter().copied())
    }

    #[test]
    fn closure_fixpoint() {
        // A → B, B → C : closure(A) = {A, B, C}
        let mut fds = FdSet::new(4);
        fds.add_fd([0], [1]);
        fds.add_fd([1], [2]);
        assert_eq!(fds.closure_of(&set(&[0])), set(&[0, 1, 2]));
        assert_eq!(fds.closure_of(&set(&[3])), set(&[3]));
    }

    #[test]
    fn constants_are_in_every_closure() {
        let mut fds = FdSet::new(3);
        fds.add_constant(2);
        assert_eq!(fds.closure_of(&AttrSet::new()), set(&[2]));
        assert_eq!(fds.closure_of(&set(&[0])), set(&[0, 2]));
    }

    #[test]
    fn equivalence_is_bidirectional() {
        let mut fds = FdSet::new(3);
        fds.add_equiv(0, 1);
        assert!(fds.implies(&set(&[0]), &set(&[1])));
        assert!(fds.implies(&set(&[1]), &set(&[0])));
        assert!(!fds.implies(&set(&[2]), &set(&[0])));
    }

    #[test]
    fn superkey_detection() {
        // Key {0,1} over 4 attrs.
        let mut fds = FdSet::new(4);
        fds.add_fd([0, 1], [2, 3]);
        assert!(fds.is_superkey(&set(&[0, 1])));
        assert!(fds.is_superkey(&set(&[0, 1, 2])));
        assert!(!fds.is_superkey(&set(&[0])));
    }

    #[test]
    fn absorb_shifted_composes_product_fds() {
        // R(0,1) with 0→1; S(0,1,2) with {0,1}→2. Product: 5 attrs.
        let mut r = FdSet::new(2);
        r.add_fd([0], [1]);
        let mut s = FdSet::new(3);
        s.add_fd([0, 1], [2]);
        let mut prod = FdSet::new(5);
        prod.absorb_shifted(&r, 0);
        prod.absorb_shifted(&s, 2);
        assert!(prod.implies(&set(&[0]), &set(&[1])));
        assert!(prod.implies(&set(&[2, 3]), &set(&[4])));
        assert!(!prod.implies(&set(&[0]), &set(&[4])));
    }

    // --- Armstrong's axioms (soundness sanity checks) ---

    #[test]
    fn armstrong_reflexivity() {
        // B ⊆ A ⇒ A → B holds vacuously through closure.
        let fds = FdSet::new(4);
        assert!(fds.implies(&set(&[0, 1, 2]), &set(&[1])));
    }

    #[test]
    fn armstrong_augmentation() {
        // A → B ⇒ AC → BC.
        let mut fds = FdSet::new(4);
        fds.add_fd([0], [1]);
        assert!(fds.implies(&set(&[0, 2]), &set(&[1, 2])));
    }

    #[test]
    fn armstrong_transitivity() {
        let mut fds = FdSet::new(4);
        fds.add_fd([0], [1]);
        fds.add_fd([1], [2]);
        assert!(fds.implies(&set(&[0]), &set(&[2])));
    }

    #[test]
    fn pseudo_transitivity() {
        // A → B, BC → D ⇒ AC → D.
        let mut fds = FdSet::new(5);
        fds.add_fd([0], [1]);
        fds.add_fd([1, 2], [3]);
        assert!(fds.implies(&set(&[0, 2]), &set(&[3])));
    }
}
