//! Host variable bindings.
//!
//! The paper's queries contain host variables (`:SUPPLIER-NO`) — constants
//! whose values are known only at query execution (paper §3.2). The
//! analyzers never need their values (a host variable is a "constant" for
//! Type-1 reasoning no matter what it holds); the executor resolves them
//! through a [`HostVars`] map supplied per execution.

use std::collections::BTreeMap;
use uniq_types::{Error, HostVarName, Result, Value};

/// A binding of host variable names to values for one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostVars {
    bindings: BTreeMap<HostVarName, Value>,
}

impl HostVars {
    /// No bindings.
    pub fn new() -> HostVars {
        HostVars::default()
    }

    /// Bind `name` to `value`, replacing any previous binding.
    pub fn set(&mut self, name: impl Into<HostVarName>, value: impl Into<Value>) -> &mut Self {
        self.bindings.insert(name.into(), value.into());
        self
    }

    /// Builder-style [`HostVars::set`].
    pub fn with(mut self, name: impl Into<HostVarName>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Look up a binding; unbound host variables are an execution error.
    pub fn get(&self, name: &HostVarName) -> Result<&Value> {
        self.bindings
            .get(name)
            .ok_or_else(|| Error::UnboundHostVar(name.to_string()))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True iff no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let hv = HostVars::new()
            .with("SUPPLIER-NO", 3i64)
            .with("part-name", "bolt");
        assert_eq!(hv.get(&"supplier-no".into()).unwrap(), &Value::Int(3));
        assert_eq!(hv.get(&"PART-NAME".into()).unwrap(), &Value::str("bolt"));
        assert_eq!(hv.len(), 2);
    }

    #[test]
    fn unbound_is_an_error() {
        let hv = HostVars::new();
        assert!(matches!(hv.get(&"X".into()), Err(Error::UnboundHostVar(_))));
    }

    #[test]
    fn rebinding_replaces() {
        let mut hv = HostVars::new();
        hv.set("X", 1i64);
        hv.set("X", 2i64);
        assert_eq!(hv.get(&"X".into()).unwrap(), &Value::Int(2));
        assert_eq!(hv.len(), 1);
    }
}
