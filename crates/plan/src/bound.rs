//! Bound (resolved) query representation.
//!
//! A [`BoundSpec`] is the paper's
//! `π_d[A]( σ[C_R ∧ C_S ∧ C_{R,S}](R × S × …) )`: a projection over a
//! selection over the extended Cartesian product of the `FROM` tables.
//! Attributes are numbered left to right across the product — table 0
//! contributes attributes `0 .. arity(0)`, table 1 the next block, and so
//! on. Correlated subqueries reference enclosing blocks through
//! [`AttrRef::up`].

use uniq_catalog::TableSchema;
use uniq_sql::{AggFunc, CmpOp, Distinct, SetOp};
use uniq_types::{ColumnName, DataType, HostVarName, TableName, Value};

/// A resolved attribute reference.
///
/// `up = 0` refers to the current query block's product; `up = 1` to the
/// immediately enclosing block (a correlated reference), and so on.
/// `idx` indexes the flat attribute space of that block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// How many query blocks to walk outwards.
    pub up: usize,
    /// Attribute position within that block's Cartesian product.
    pub idx: usize,
}

impl AttrRef {
    /// A reference into the current block.
    pub fn local(idx: usize) -> AttrRef {
        AttrRef { up: 0, idx }
    }

    /// True iff the reference is into the current block.
    pub fn is_local(&self) -> bool {
        self.up == 0
    }
}

/// A bound scalar operand.
#[derive(Debug, Clone, PartialEq)]
pub enum BScalar {
    /// A resolved column.
    Attr(AttrRef),
    /// A literal constant.
    Literal(Value),
    /// A host variable, bound at execution time.
    HostVar(HostVarName),
}

impl BScalar {
    /// The attribute reference if this operand is a column.
    pub fn as_attr(&self) -> Option<AttrRef> {
        match self {
            BScalar::Attr(a) => Some(*a),
            _ => None,
        }
    }

    /// True iff the operand's value is fixed for the whole execution —
    /// a literal or host variable (the paper's "constant").
    pub fn is_constant(&self) -> bool {
        !matches!(self, BScalar::Attr(_))
    }
}

/// A bound search condition. Mirrors `uniq_sql::Expr` with columns
/// resolved; `IN (subquery)` is *not* desugared to `EXISTS` because the two
/// differ under three-valued logic when the tested value or the subquery
/// column is `NULL` (`NOT IN` vs `NOT EXISTS`) — the executor implements
/// `InSubquery` natively with exact SQL semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// `left op right`.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        left: BScalar,
        /// Right operand.
        right: BScalar,
    },
    /// `scalar [NOT] BETWEEN low AND high`.
    Between {
        /// Tested operand.
        scalar: BScalar,
        /// Inclusive lower bound.
        low: BScalar,
        /// Inclusive upper bound.
        high: BScalar,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `scalar [NOT] IN (list…)`.
    InList {
        /// Tested operand.
        scalar: BScalar,
        /// List elements.
        list: Vec<BScalar>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `scalar IS [NOT] NULL`.
    IsNull {
        /// Tested operand.
        scalar: BScalar,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// `NOT EXISTS`.
        negated: bool,
        /// The bound (possibly correlated) subquery block.
        subquery: Box<BoundSpec>,
    },
    /// `scalar [NOT] IN (subquery)`.
    InSubquery {
        /// Tested operand.
        scalar: BScalar,
        /// The bound subquery block; projects exactly one column.
        subquery: Box<BoundSpec>,
        /// `NOT IN`.
        negated: bool,
    },
    /// Conjunction.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Disjunction.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Negation.
    Not(Box<BoundExpr>),
}

impl BoundExpr {
    /// `a AND b`.
    pub fn and(a: BoundExpr, b: BoundExpr) -> BoundExpr {
        BoundExpr::And(Box::new(a), Box::new(b))
    }

    /// `a OR b`.
    pub fn or(a: BoundExpr, b: BoundExpr) -> BoundExpr {
        BoundExpr::Or(Box::new(a), Box::new(b))
    }

    /// `NOT a`.
    #[allow(clippy::should_implement_trait)] // associated constructor, not a method
    pub fn not(a: BoundExpr) -> BoundExpr {
        BoundExpr::Not(Box::new(a))
    }

    /// Local attribute equality `#l = #r`.
    pub fn attr_eq_attr(l: usize, r: usize) -> BoundExpr {
        BoundExpr::Cmp {
            op: CmpOp::Eq,
            left: BScalar::Attr(AttrRef::local(l)),
            right: BScalar::Attr(AttrRef::local(r)),
        }
    }

    /// Conjoin a sequence of conditions; `None` for an empty sequence.
    pub fn conjoin(exprs: impl IntoIterator<Item = BoundExpr>) -> Option<BoundExpr> {
        exprs.into_iter().reduce(BoundExpr::and)
    }

    /// Collect the flat list of conjuncts of a (possibly nested) `AND`.
    pub fn conjuncts(&self) -> Vec<&BoundExpr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a BoundExpr, out: &mut Vec<&'a BoundExpr>) {
            match e {
                BoundExpr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Visit every local attribute reference (`up == 0`) in this
    /// expression, *not* descending into subqueries (whose local space is
    /// different).
    pub fn visit_local_attrs(&self, f: &mut impl FnMut(usize)) {
        let mut scalar = |s: &BScalar| {
            if let BScalar::Attr(a) = s {
                if a.is_local() {
                    f(a.idx);
                }
            }
        };
        match self {
            BoundExpr::Cmp { left, right, .. } => {
                scalar(left);
                scalar(right);
            }
            BoundExpr::Between {
                scalar: s,
                low,
                high,
                ..
            } => {
                scalar(s);
                scalar(low);
                scalar(high);
            }
            BoundExpr::InList {
                scalar: s, list, ..
            } => {
                scalar(s);
                for item in list {
                    scalar(item);
                }
            }
            BoundExpr::IsNull { scalar: s, .. } => scalar(s),
            BoundExpr::InSubquery { scalar: s, .. } => scalar(s),
            BoundExpr::Exists { .. } => {}
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
                a.visit_local_attrs(f);
                b.visit_local_attrs(f);
            }
            BoundExpr::Not(a) => a.visit_local_attrs(f),
        }
    }
}

/// One `FROM`-clause table of a bound block.
#[derive(Debug, Clone, PartialEq)]
pub struct FromTable {
    /// The name the query refers to this table by (alias or table name).
    pub binding: TableName,
    /// The base table's schema (cloned out of the catalog at bind time so
    /// analyzers need no catalog access).
    pub schema: TableSchema,
    /// This table's first attribute position in the block's flat space.
    pub offset: usize,
}

impl FromTable {
    /// The half-open range of attribute positions this table occupies.
    pub fn attr_range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.schema.arity()
    }
}

/// One projection item: an attribute position plus its output name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjItem {
    /// Position in the block's flat attribute space.
    pub attr: usize,
    /// Output column name (the alias when one was given).
    pub name: ColumnName,
}

/// A bound query block.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSpec {
    /// `ALL` or `DISTINCT`.
    pub distinct: Distinct,
    /// The tables of the extended Cartesian product, in `FROM` order.
    pub from: Vec<FromTable>,
    /// The bound `WHERE` condition, if any.
    pub predicate: Option<BoundExpr>,
    /// The projection list (`SELECT *` is expanded at bind time).
    pub projection: Vec<ProjItem>,
}

impl BoundSpec {
    /// Total width of the block's Cartesian product.
    pub fn product_arity(&self) -> usize {
        self.from.iter().map(|t| t.schema.arity()).sum()
    }

    /// The table that owns attribute `idx`, with its local column index.
    pub fn attr_owner(&self, idx: usize) -> Option<(&FromTable, usize)> {
        self.from
            .iter()
            .find(|t| t.attr_range().contains(&idx))
            .map(|t| (t, idx - t.offset))
    }

    /// Output data type of each projected column.
    pub fn output_types(&self) -> Vec<DataType> {
        self.projection
            .iter()
            .map(|p| {
                let (t, c) = self
                    .attr_owner(p.attr)
                    .expect("projection attr within product");
                t.schema.columns[c].data_type
            })
            .collect()
    }

    /// Human-readable name of attribute `idx` (`BINDING.COLUMN`).
    pub fn attr_name(&self, idx: usize) -> String {
        match self.attr_owner(idx) {
            Some((t, c)) => format!("{}.{}", t.binding, t.schema.columns[c].name),
            None => format!("#{idx}"),
        }
    }
}

/// A bound query: a block, or a set operation over two bound queries.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundQuery {
    /// A single block.
    Spec(Box<BoundSpec>),
    /// `left <op> [ALL] right` over union-compatible operands.
    SetOp {
        /// The set operator.
        op: SetOp,
        /// Multiset (`ALL`) vs distinct semantics.
        all: bool,
        /// Left operand.
        left: Box<BoundQuery>,
        /// Right operand.
        right: Box<BoundQuery>,
    },
}

impl BoundQuery {
    /// Number of output columns.
    pub fn output_arity(&self) -> usize {
        match self {
            BoundQuery::Spec(s) => s.projection.len(),
            BoundQuery::SetOp { left, .. } => left.output_arity(),
        }
    }

    /// Output column names (the left operand's, for set operations,
    /// following SQL).
    pub fn output_names(&self) -> Vec<ColumnName> {
        match self {
            BoundQuery::Spec(s) => s.projection.iter().map(|p| p.name.clone()).collect(),
            BoundQuery::SetOp { left, .. } => left.output_names(),
        }
    }

    /// The single block, if this query is one.
    pub fn as_spec(&self) -> Option<&BoundSpec> {
        match self {
            BoundQuery::Spec(s) => Some(s),
            BoundQuery::SetOp { .. } => None,
        }
    }
}

/// One output item of an aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundAggItem {
    /// A grouping column, projected through.
    Group {
        /// Position within the body's projection (always `< group_count`).
        pos: usize,
        /// Output column name.
        name: ColumnName,
    },
    /// An aggregate function over the group's rows.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// `COUNT(DISTINCT …)` — counts distinct non-null argument values.
        distinct: bool,
        /// Argument position within the body's projection;
        /// `None` for `COUNT(*)`.
        arg: Option<usize>,
        /// Output column name.
        name: ColumnName,
    },
}

impl BoundAggItem {
    /// The item's output column name.
    pub fn name(&self) -> &ColumnName {
        match self {
            BoundAggItem::Group { name, .. } | BoundAggItem::Agg { name, .. } => name,
        }
    }
}

/// A bound aggregation over a query body.
///
/// The body is an ordinary [`BoundQuery`] (always `SELECT ALL` over a
/// single block) whose projection lays out the grouping columns first —
/// positions `0 .. group_count` — followed by the aggregate argument
/// columns. Grouping treats `NULL`s as equal (SQL `GROUP BY` semantics);
/// aggregates ignore `NULL` arguments; with an empty group set the query
/// produces exactly one global group even on empty input.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAgg {
    /// Number of grouping columns (the body projection's leading columns).
    pub group_count: usize,
    /// Output items in `SELECT`-list order.
    pub items: Vec<BoundAggItem>,
    /// Uniqueness elision: the group keys cover a candidate key of the
    /// body, so every row is its own group — the executor skips the hash
    /// table and computes aggregates per-row in one pass. Set only by the
    /// proof-gated rewrite in `uniq-core`.
    pub group_elided: bool,
    /// Uniqueness elision: at least one `COUNT(DISTINCT e)` item was
    /// degraded to `COUNT(e)` (its `distinct` flag cleared) because
    /// `(group keys, e)` was proved duplicate-free over the body. Set
    /// only by the proof-gated rewrite in `uniq-core`; recorded so
    /// `EXPLAIN` can mark the plan.
    pub count_distinct_elided: bool,
}

/// A fully bound query: body plus aggregation / ordering / limit output
/// clauses. The paper's §2 subset is the `agg: None, order_by: [],
/// limit: None` case.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundOutput {
    /// The bound body (for aggregates: the lowered `SELECT ALL` block).
    pub body: BoundQuery,
    /// Aggregation over the body, if any.
    pub agg: Option<BoundAgg>,
    /// `ORDER BY` as (output column position, descending) pairs. Positions
    /// index the aggregate output when `agg` is present, the body's
    /// projection otherwise. Comparison uses the engine's total order
    /// (`NULL`s first), matching B-tree canonical key order.
    pub order_by: Vec<(usize, bool)>,
    /// `LIMIT k`, if any.
    pub limit: Option<u64>,
}

impl BoundOutput {
    /// Wrap a plain bound query with no output clauses.
    pub fn plain(body: BoundQuery) -> BoundOutput {
        BoundOutput {
            body,
            agg: None,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// The bare body if there are no output clauses at all.
    pub fn as_plain(&self) -> Option<&BoundQuery> {
        (self.agg.is_none() && self.order_by.is_empty() && self.limit.is_none())
            .then_some(&self.body)
    }

    /// Number of output columns.
    pub fn output_arity(&self) -> usize {
        match &self.agg {
            Some(a) => a.items.len(),
            None => self.body.output_arity(),
        }
    }

    /// Output column names.
    pub fn output_names(&self) -> Vec<ColumnName> {
        match &self.agg {
            Some(a) => a.items.iter().map(|i| i.name().clone()).collect(),
            None => self.body.output_names(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_output_plain_accessors() {
        let spec = BoundSpec {
            distinct: Distinct::All,
            from: Vec::new(),
            predicate: None,
            projection: Vec::new(),
        };
        let out = BoundOutput::plain(BoundQuery::Spec(Box::new(spec)));
        assert!(out.as_plain().is_some());
        assert_eq!(out.output_arity(), 0);
        let limited = BoundOutput {
            limit: Some(3),
            ..out
        };
        assert!(limited.as_plain().is_none());
    }

    #[test]
    fn conjuncts_flatten_nested_and() {
        let atom = |i| BoundExpr::IsNull {
            scalar: BScalar::Attr(AttrRef::local(i)),
            negated: false,
        };
        let e = BoundExpr::and(BoundExpr::and(atom(0), atom(1)), atom(2));
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(atom(0).conjuncts().len(), 1);
    }

    #[test]
    fn visit_local_attrs_skips_outer_and_subquery() {
        let e = BoundExpr::Cmp {
            op: CmpOp::Eq,
            left: BScalar::Attr(AttrRef { up: 1, idx: 3 }),
            right: BScalar::Attr(AttrRef::local(5)),
        };
        let mut seen = Vec::new();
        e.visit_local_attrs(&mut |i| seen.push(i));
        assert_eq!(seen, vec![5]);
    }
}
