//! Predicate normalization: NNF, CNF, and the CNF → DNF expansion of
//! Algorithm 1.
//!
//! All rewrites here are sound under Kleene three-valued logic:
//! De Morgan's laws and double-negation elimination hold in K3, and
//! negating an atom by flipping its operator/`negated` flag maps
//! true↔false while preserving unknown — exactly `NOT` in SQL. The one
//! transformation that would *not* be 3VL-sound — rewriting `NOT (a = b)`
//! over possibly-null operands into something two-valued — is never
//! performed.
//!
//! CNF → DNF (paper Algorithm 1, line 11) is worst-case exponential; the
//! expansion takes a cap and reports overflow so callers can fall back to
//! a conservative answer (Algorithm 1 then answers NO, which is always
//! safe for a *sufficient* condition).

use crate::bound::{BScalar, BoundExpr};
use uniq_sql::CmpOp;

/// A disjunction of atoms (one CNF clause).
pub type Clause = Vec<BoundExpr>;

/// A conjunction of atoms (one DNF disjunct).
pub type Conjunct = Vec<BoundExpr>;

/// Push negations down to atoms (negation normal form).
///
/// After this pass, `Not` no longer appears: negations are absorbed into
/// comparison operators and the `negated` flags of `BETWEEN`/`IN`/
/// `IS NULL`/`EXISTS` atoms.
pub fn to_nnf(e: &BoundExpr) -> BoundExpr {
    nnf(e, false)
}

fn nnf(e: &BoundExpr, neg: bool) -> BoundExpr {
    match e {
        BoundExpr::Not(inner) => nnf(inner, !neg),
        BoundExpr::And(a, b) => {
            let (l, r) = (nnf(a, neg), nnf(b, neg));
            if neg {
                BoundExpr::or(l, r)
            } else {
                BoundExpr::and(l, r)
            }
        }
        BoundExpr::Or(a, b) => {
            let (l, r) = (nnf(a, neg), nnf(b, neg));
            if neg {
                BoundExpr::and(l, r)
            } else {
                BoundExpr::or(l, r)
            }
        }
        BoundExpr::Cmp { op, left, right } if neg => BoundExpr::Cmp {
            op: op.negate(),
            left: left.clone(),
            right: right.clone(),
        },
        BoundExpr::Between {
            scalar,
            low,
            high,
            negated,
        } if neg => BoundExpr::Between {
            scalar: scalar.clone(),
            low: low.clone(),
            high: high.clone(),
            negated: !negated,
        },
        BoundExpr::InList {
            scalar,
            list,
            negated,
        } if neg => BoundExpr::InList {
            scalar: scalar.clone(),
            list: list.clone(),
            negated: !negated,
        },
        BoundExpr::IsNull { scalar, negated } if neg => BoundExpr::IsNull {
            scalar: scalar.clone(),
            negated: !negated,
        },
        BoundExpr::Exists { negated, subquery } if neg => BoundExpr::Exists {
            negated: !negated,
            subquery: subquery.clone(),
        },
        BoundExpr::InSubquery {
            scalar,
            subquery,
            negated,
        } if neg => BoundExpr::InSubquery {
            scalar: scalar.clone(),
            subquery: subquery.clone(),
            negated: !negated,
        },
        atom => atom.clone(),
    }
}

/// Convert a predicate to conjunctive normal form (a conjunction of
/// clauses, each a disjunction of atoms).
///
/// Returns `None` if the clause count would exceed `max_clauses`.
pub fn to_cnf(e: &BoundExpr, max_clauses: usize) -> Option<Vec<Clause>> {
    fn go(e: &BoundExpr, cap: usize) -> Option<Vec<Clause>> {
        match e {
            BoundExpr::And(a, b) => {
                let mut l = go(a, cap)?;
                let r = go(b, cap)?;
                if l.len() + r.len() > cap {
                    return None;
                }
                l.extend(r);
                Some(l)
            }
            BoundExpr::Or(a, b) => {
                let l = go(a, cap)?;
                let r = go(b, cap)?;
                if l.len().checked_mul(r.len())? > cap {
                    return None;
                }
                let mut out = Vec::with_capacity(l.len() * r.len());
                for cl in &l {
                    for cr in &r {
                        let mut c = cl.clone();
                        c.extend(cr.iter().cloned());
                        out.push(c);
                    }
                }
                Some(out)
            }
            atom => Some(vec![vec![atom.clone()]]),
        }
    }
    go(&to_nnf(e), max_clauses)
}

/// Expand a CNF into DNF: the cross product of its clauses (Algorithm 1,
/// line 11). Returns `None` if the disjunct count would exceed
/// `max_disjuncts`.
pub fn cnf_to_dnf(cnf: &[Clause], max_disjuncts: usize) -> Option<Vec<Conjunct>> {
    let mut count: usize = 1;
    for c in cnf {
        count = count.checked_mul(c.len().max(1))?;
        if count > max_disjuncts {
            return None;
        }
    }
    let mut out: Vec<Conjunct> = vec![Vec::new()];
    for clause in cnf {
        if clause.is_empty() {
            continue;
        }
        let mut next = Vec::with_capacity(out.len() * clause.len());
        for partial in &out {
            for atom in clause {
                let mut conj = partial.clone();
                conj.push(atom.clone());
                next.push(conj);
            }
        }
        out = next;
    }
    Some(out)
}

/// Classification of an atomic condition per Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomClass {
    /// Type 1: `v = c` — a local column equated to a constant (literal or
    /// host variable).
    Type1,
    /// Type 2: `v1 = v2` — two local columns equated.
    Type2,
    /// Anything else (inequalities, `IS NULL`, subqueries, correlated
    /// references, …).
    Other,
}

/// Classify an atom. Only *local* column references (`up == 0`) count for
/// Types 1 and 2; an equality involving a correlated outer column is
/// `Other` from the perspective of the block being analyzed.
pub fn classify_atom(e: &BoundExpr) -> AtomClass {
    match e {
        BoundExpr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } => {
            let local = |s: &BScalar| matches!(s, BScalar::Attr(a) if a.is_local());
            match (local(left), local(right)) {
                (true, true) => AtomClass::Type2,
                (true, false) if right.is_constant() => AtomClass::Type1,
                (false, true) if left.is_constant() => AtomClass::Type1,
                _ => AtomClass::Other,
            }
        }
        _ => AtomClass::Other,
    }
}

/// For a Type-1 atom, the bound local attribute index.
pub fn type1_attr(e: &BoundExpr) -> Option<usize> {
    if classify_atom(e) != AtomClass::Type1 {
        return None;
    }
    match e {
        BoundExpr::Cmp { left, right, .. } => {
            left.as_attr().or_else(|| right.as_attr()).map(|a| a.idx)
        }
        _ => None,
    }
}

/// For a Type-2 atom, the two equated local attribute indices.
pub fn type2_attrs(e: &BoundExpr) -> Option<(usize, usize)> {
    if classify_atom(e) != AtomClass::Type2 {
        return None;
    }
    match e {
        BoundExpr::Cmp { left, right, .. } => Some((left.as_attr()?.idx, right.as_attr()?.idx)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::AttrRef;
    use uniq_types::Value;

    fn attr(i: usize) -> BScalar {
        BScalar::Attr(AttrRef::local(i))
    }

    fn lit(v: i64) -> BScalar {
        BScalar::Literal(Value::Int(v))
    }

    fn eq(l: BScalar, r: BScalar) -> BoundExpr {
        BoundExpr::Cmp {
            op: CmpOp::Eq,
            left: l,
            right: r,
        }
    }

    #[test]
    fn nnf_eliminates_not() {
        let e = BoundExpr::not(BoundExpr::and(
            eq(attr(0), lit(1)),
            BoundExpr::not(eq(attr(1), lit(2))),
        ));
        let n = to_nnf(&e);
        // NOT(a=1 AND NOT b=2) → a<>1 OR b=2
        match n {
            BoundExpr::Or(l, r) => {
                assert!(matches!(*l, BoundExpr::Cmp { op: CmpOp::Ne, .. }));
                assert!(matches!(*r, BoundExpr::Cmp { op: CmpOp::Eq, .. }));
            }
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn nnf_flips_negated_flags() {
        let e = BoundExpr::not(BoundExpr::IsNull {
            scalar: attr(0),
            negated: false,
        });
        assert_eq!(
            to_nnf(&e),
            BoundExpr::IsNull {
                scalar: attr(0),
                negated: true
            }
        );
    }

    #[test]
    fn cnf_of_conjunction_is_clause_list() {
        let e = BoundExpr::and(eq(attr(0), lit(1)), eq(attr(1), lit(2)));
        let cnf = to_cnf(&e, 100).unwrap();
        assert_eq!(cnf.len(), 2);
        assert_eq!(cnf[0].len(), 1);
    }

    #[test]
    fn cnf_distributes_or_over_and() {
        // (a ∧ b) ∨ c  →  (a ∨ c) ∧ (b ∨ c)
        let e = BoundExpr::or(
            BoundExpr::and(eq(attr(0), lit(1)), eq(attr(1), lit(2))),
            eq(attr(2), lit(3)),
        );
        let cnf = to_cnf(&e, 100).unwrap();
        assert_eq!(cnf.len(), 2);
        assert!(cnf.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn dnf_expansion_is_cross_product() {
        // (a ∨ b) ∧ (c ∨ d) → 4 disjuncts.
        let cnf = vec![
            vec![eq(attr(0), lit(1)), eq(attr(1), lit(2))],
            vec![eq(attr(2), lit(3)), eq(attr(3), lit(4))],
        ];
        let dnf = cnf_to_dnf(&cnf, 100).unwrap();
        assert_eq!(dnf.len(), 4);
        assert!(dnf.iter().all(|d| d.len() == 2));
    }

    #[test]
    fn dnf_cap_reports_overflow() {
        let clause = vec![eq(attr(0), lit(1)), eq(attr(1), lit(2))];
        let cnf = vec![clause.clone(); 12]; // 2^12 = 4096 disjuncts
        assert!(cnf_to_dnf(&cnf, 1000).is_none());
        assert!(cnf_to_dnf(&cnf, 5000).is_some());
    }

    #[test]
    fn classification() {
        assert_eq!(classify_atom(&eq(attr(0), lit(1))), AtomClass::Type1);
        assert_eq!(classify_atom(&eq(lit(1), attr(0))), AtomClass::Type1);
        assert_eq!(
            classify_atom(&eq(attr(0), BScalar::HostVar("H".into()))),
            AtomClass::Type1
        );
        assert_eq!(classify_atom(&eq(attr(0), attr(1))), AtomClass::Type2);
        // Non-equality is Other.
        assert_eq!(
            classify_atom(&BoundExpr::Cmp {
                op: CmpOp::Lt,
                left: attr(0),
                right: lit(1)
            }),
            AtomClass::Other
        );
        // Correlated reference is Other.
        assert_eq!(
            classify_atom(&eq(attr(0), BScalar::Attr(AttrRef { up: 1, idx: 0 }))),
            AtomClass::Other
        );
        // Constant = constant is Other.
        assert_eq!(classify_atom(&eq(lit(1), lit(1))), AtomClass::Other);
    }

    #[test]
    fn atom_accessors() {
        assert_eq!(type1_attr(&eq(attr(3), lit(1))), Some(3));
        assert_eq!(type1_attr(&eq(lit(1), attr(4))), Some(4));
        assert_eq!(type2_attrs(&eq(attr(3), attr(5))), Some((3, 5)));
        assert_eq!(type2_attrs(&eq(attr(3), lit(5))), None);
    }

    #[test]
    fn double_negation_roundtrips() {
        let e = eq(attr(0), lit(1));
        let nn = BoundExpr::not(BoundExpr::not(e.clone()));
        assert_eq!(to_nnf(&nn), e);
    }
}
