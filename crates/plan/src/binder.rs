//! Name resolution: AST → bound representation.
//!
//! Resolution follows SQL scoping: a column reference is looked up in the
//! innermost query block first, then outwards through enclosing blocks
//! (producing a *correlated* [`AttrRef`] with `up > 0`). A reference that
//! matches more than one table in the same block is ambiguous and
//! rejected. Comparisons between operands of incompatible declared types
//! are rejected at bind time, so the executor never sees an ill-typed
//! comparison of two non-null values.

use crate::bound::*;
use uniq_catalog::Catalog;
use uniq_sql::{
    AggFunc, AggItemKind, AggSpec, Distinct, Expr, Projection, Query, QueryBody, QueryExpr,
    QuerySpec, Scalar, SelectItem, SetOp,
};
use uniq_types::{ColRef, DataType, Error, Result};

/// Bind a parsed query against a catalog.
pub fn bind_query(catalog: &Catalog, query: &QueryExpr) -> Result<BoundQuery> {
    let binder = Binder { catalog };
    binder.query(query, &mut Vec::new())
}

/// Bind a full query (body + aggregation + ORDER BY / LIMIT).
pub fn bind_output(catalog: &Catalog, query: &Query) -> Result<BoundOutput> {
    let binder = Binder { catalog };
    let (body, agg) = match &query.body {
        QueryBody::Plain(e) => (binder.query(e, &mut Vec::new())?, None),
        QueryBody::Agg(spec) => {
            let (body, agg) = binder.agg(spec)?;
            (body, Some(agg))
        }
    };
    let order_by = bind_order_by(&query.order_by, &body, agg.as_ref())?;
    Ok(BoundOutput {
        body,
        agg,
        order_by,
        limit: query.limit,
    })
}

struct Binder<'a> {
    catalog: &'a Catalog,
}

/// The stack of enclosing blocks' `FROM` lists, innermost last. Owned by
/// the stack while a block's predicate is being bound (pushed on entry,
/// popped — and recovered — on exit), which keeps resolution of correlated
/// references safe without borrowing across recursion frames.
type ScopeStack = Vec<Vec<FromTable>>;

impl<'a> Binder<'a> {
    fn query(&self, query: &QueryExpr, outer: &mut ScopeStack) -> Result<BoundQuery> {
        match query {
            QueryExpr::Spec(spec) => Ok(BoundQuery::Spec(Box::new(self.spec(spec, outer)?))),
            QueryExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.query(left, outer)?;
                let r = self.query(right, outer)?;
                self.check_union_compatible(&l, &r, *op)?;
                Ok(BoundQuery::SetOp {
                    op: *op,
                    all: *all,
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }
        }
    }

    fn check_union_compatible(&self, l: &BoundQuery, r: &BoundQuery, _op: SetOp) -> Result<()> {
        if l.output_arity() != r.output_arity() {
            return Err(Error::NotUnionCompatible {
                left: l.output_arity(),
                right: r.output_arity(),
            });
        }
        let lt = output_types(l);
        let rt = output_types(r);
        for (a, b) in lt.iter().zip(&rt) {
            if a != b {
                return Err(Error::TypeMismatch {
                    left: a.to_string(),
                    right: b.to_string(),
                });
            }
        }
        Ok(())
    }

    fn spec(&self, spec: &QuerySpec, outer: &mut ScopeStack) -> Result<BoundSpec> {
        // 1. Bind FROM.
        let mut from: Vec<FromTable> = Vec::with_capacity(spec.from.len());
        let mut offset = 0usize;
        for tref in &spec.from {
            let schema = self.catalog.table(&tref.table)?.clone();
            let binding = tref.binding_name().clone();
            if from.iter().any(|t| t.binding == binding) {
                return Err(Error::bind(format!(
                    "duplicate table binding {binding} in FROM clause"
                )));
            }
            let arity = schema.arity();
            from.push(FromTable {
                binding,
                schema,
                offset,
            });
            offset += arity;
        }

        // 2. Bind WHERE within [outer…, from]. The FROM list is pushed
        // onto the scope stack for the duration and recovered afterwards.
        let predicate = match &spec.where_clause {
            None => None,
            Some(w) => {
                outer.push(from);
                let bound = self.expr(w, outer);
                from = outer.pop().expect("scope pushed above");
                Some(bound?)
            }
        };

        // 3. Bind projection.
        let projection: Vec<ProjItem> = match &spec.projection {
            Projection::Star => from
                .iter()
                .flat_map(|t| {
                    t.schema
                        .columns
                        .iter()
                        .enumerate()
                        .map(move |(i, c)| ProjItem {
                            attr: t.offset + i,
                            name: c.name.clone(),
                        })
                })
                .collect(),
            Projection::Columns(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let attr = resolve_in_block(&from, &item.col)?.ok_or_else(|| {
                        Error::bind(format!("unknown column {} in SELECT list", item.col))
                    })?;
                    let name = item
                        .alias
                        .clone()
                        .unwrap_or_else(|| item.col.column.clone());
                    out.push(ProjItem { attr, name });
                }
                out
            }
        };

        Ok(BoundSpec {
            distinct: spec.distinct,
            from,
            predicate,
            projection,
        })
    }

    /// Bind an aggregate specification by lowering it onto an ordinary
    /// `SELECT ALL` block whose projection lays out the grouping columns
    /// first, then one column per aggregate argument.
    fn agg(&self, a: &AggSpec) -> Result<(BoundQuery, BoundAgg)> {
        let group_count = a.group_by.len();
        let mut inner_items: Vec<SelectItem> = a
            .group_by
            .iter()
            .map(|c| SelectItem {
                col: c.clone(),
                alias: None,
            })
            .collect();
        // Aggregate argument positions, keyed by SELECT-list index.
        let mut arg_pos: Vec<Option<usize>> = Vec::with_capacity(a.items.len());
        for item in &a.items {
            match &item.kind {
                AggItemKind::Agg(call) if call.arg.is_some() => {
                    arg_pos.push(Some(inner_items.len()));
                    inner_items.push(SelectItem {
                        col: call.arg.clone().unwrap(),
                        alias: None,
                    });
                }
                _ => arg_pos.push(None),
            }
        }
        // `SELECT COUNT(*) FROM …` with no groups or arguments: project *
        // so the block has ordinary shape; COUNT(*) only counts rows.
        let projection = if inner_items.is_empty() {
            Projection::Star
        } else {
            Projection::Columns(inner_items)
        };
        let inner = QuerySpec {
            distinct: Distinct::All,
            projection,
            from: a.from.clone(),
            where_clause: a.where_clause.clone(),
        };
        let bound = self.spec(&inner, &mut Vec::new())?;
        let types = bound.output_types();

        let mut items = Vec::with_capacity(a.items.len());
        for (i, item) in a.items.iter().enumerate() {
            match &item.kind {
                AggItemKind::Group(col) => {
                    let attr = resolve_in_block(&bound.from, col)?
                        .ok_or_else(|| Error::bind(format!("unknown column {col}")))?;
                    let pos = (0..group_count)
                        .find(|&j| bound.projection[j].attr == attr)
                        .ok_or_else(|| {
                            Error::bind(format!("SELECT column {col} must appear in GROUP BY"))
                        })?;
                    let name = item.alias.clone().unwrap_or_else(|| col.column.clone());
                    items.push(BoundAggItem::Group { pos, name });
                }
                AggItemKind::Agg(call) => {
                    let arg = arg_pos[i];
                    if let Some(p) = arg {
                        if matches!(call.func, AggFunc::Sum | AggFunc::Avg)
                            && types[p] != DataType::Int
                        {
                            return Err(Error::bind(format!(
                                "{} requires an INTEGER argument, got {}",
                                call.func.name(),
                                types[p]
                            )));
                        }
                    }
                    let name = item
                        .alias
                        .clone()
                        .unwrap_or_else(|| call.func.name().into());
                    items.push(BoundAggItem::Agg {
                        func: call.func,
                        distinct: call.distinct,
                        arg,
                        name,
                    });
                }
            }
        }
        Ok((
            BoundQuery::Spec(Box::new(bound)),
            BoundAgg {
                group_count,
                items,
                group_elided: false,
                count_distinct_elided: false,
            },
        ))
    }

    fn expr(&self, e: &Expr, scopes: &mut ScopeStack) -> Result<BoundExpr> {
        Ok(match e {
            Expr::Cmp { op, left, right } => {
                let l = self.scalar(left, scopes)?;
                let r = self.scalar(right, scopes)?;
                check_comparable(&l, &r, scopes)?;
                BoundExpr::Cmp {
                    op: *op,
                    left: l,
                    right: r,
                }
            }
            Expr::Between {
                scalar,
                low,
                high,
                negated,
            } => {
                let s = self.scalar(scalar, scopes)?;
                let lo = self.scalar(low, scopes)?;
                let hi = self.scalar(high, scopes)?;
                check_comparable(&s, &lo, scopes)?;
                check_comparable(&s, &hi, scopes)?;
                BoundExpr::Between {
                    scalar: s,
                    low: lo,
                    high: hi,
                    negated: *negated,
                }
            }
            Expr::InList {
                scalar,
                list,
                negated,
            } => {
                let s = self.scalar(scalar, scopes)?;
                let items = list
                    .iter()
                    .map(|i| {
                        let b = self.scalar(i, scopes)?;
                        check_comparable(&s, &b, scopes)?;
                        Ok(b)
                    })
                    .collect::<Result<Vec<_>>>()?;
                BoundExpr::InList {
                    scalar: s,
                    list: items,
                    negated: *negated,
                }
            }
            Expr::IsNull { scalar, negated } => BoundExpr::IsNull {
                scalar: self.scalar(scalar, scopes)?,
                negated: *negated,
            },
            Expr::Exists { negated, subquery } => {
                let sub = self.subquery(subquery, scopes)?;
                BoundExpr::Exists {
                    negated: *negated,
                    subquery: Box::new(sub),
                }
            }
            Expr::InSubquery {
                scalar,
                subquery,
                negated,
            } => {
                let s = self.scalar(scalar, scopes)?;
                let sub = self.subquery(subquery, scopes)?;
                if sub.projection.len() != 1 {
                    return Err(Error::bind(format!(
                        "IN subquery must project exactly one column, got {}",
                        sub.projection.len()
                    )));
                }
                BoundExpr::InSubquery {
                    scalar: s,
                    subquery: Box::new(sub),
                    negated: *negated,
                }
            }
            Expr::And(a, b) => BoundExpr::and(self.expr(a, scopes)?, self.expr(b, scopes)?),
            Expr::Or(a, b) => BoundExpr::or(self.expr(a, scopes)?, self.expr(b, scopes)?),
            Expr::Not(a) => BoundExpr::not(self.expr(a, scopes)?),
        })
    }

    fn subquery(&self, spec: &QuerySpec, scopes: &mut ScopeStack) -> Result<BoundSpec> {
        // The subquery's own scope is pushed inside `spec`; references it
        // cannot resolve locally walk up through `scopes`.
        self.spec_with_outer(spec, scopes)
    }

    fn spec_with_outer(&self, spec: &QuerySpec, outer: &mut ScopeStack) -> Result<BoundSpec> {
        self.spec(spec, outer)
    }

    fn scalar(&self, s: &Scalar, scopes: &mut ScopeStack) -> Result<BScalar> {
        Ok(match s {
            Scalar::Literal(v) => BScalar::Literal(v.clone()),
            Scalar::HostVar(h) => BScalar::HostVar(h.clone()),
            Scalar::Column(c) => {
                // Innermost scope first (the last pushed).
                for (depth, block) in scopes.iter().rev().enumerate() {
                    if let Some(idx) = resolve_in_block(block, c)? {
                        return Ok(BScalar::Attr(AttrRef { up: depth, idx }));
                    }
                }
                return Err(Error::bind(format!("unknown column {c}")));
            }
        })
    }
}

/// Resolve a column reference within one block's `FROM` list.
/// Returns `Ok(None)` when the name simply isn't here (so resolution can
/// continue outwards), and an error when it is ambiguous.
fn resolve_in_block(from: &[FromTable], c: &ColRef) -> Result<Option<usize>> {
    let mut found: Option<usize> = None;
    for t in from {
        if let Some(q) = &c.qualifier {
            if q != &t.binding {
                continue;
            }
        }
        if let Ok(pos) = t.schema.column_position(&c.column) {
            if let Some(prev) = found {
                return Err(Error::bind(format!(
                    "ambiguous column reference {c}: matches attribute #{prev} and {}.{}",
                    t.binding, c.column
                )));
            }
            found = Some(t.offset + pos);
        } else if c.qualifier.is_some() {
            // Qualified reference to a table that lacks the column.
            return Err(Error::UnknownColumn {
                table: t.binding.to_string(),
                column: c.column.to_string(),
            });
        }
    }
    Ok(found)
}

/// Declared type of a bound scalar within a scope stack; `None` when the
/// type is not statically known (literals' types are known, host variables'
/// are not).
fn scalar_type(s: &BScalar, scopes: &ScopeStack) -> Option<DataType> {
    match s {
        BScalar::Literal(v) => v.data_type(),
        BScalar::HostVar(_) => None,
        BScalar::Attr(a) => {
            let block = scopes.get(scopes.len().checked_sub(1 + a.up)?)?;
            let t = block.iter().find(|t| t.attr_range().contains(&a.idx))?;
            Some(t.schema.columns[a.idx - t.offset].data_type)
        }
    }
}

fn check_comparable(l: &BScalar, r: &BScalar, scopes: &ScopeStack) -> Result<()> {
    if let (Some(a), Some(b)) = (scalar_type(l, scopes), scalar_type(r, scopes)) {
        if a != b {
            return Err(Error::TypeMismatch {
                left: a.to_string(),
                right: b.to_string(),
            });
        }
    }
    Ok(())
}

/// Resolve `ORDER BY` items to output column positions.
fn bind_order_by(
    items: &[uniq_sql::OrderItem],
    body: &BoundQuery,
    agg: Option<&BoundAgg>,
) -> Result<Vec<(usize, bool)>> {
    let names = match agg {
        Some(a) => a.items.iter().map(|i| i.name().clone()).collect::<Vec<_>>(),
        None => body.output_names(),
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let pos = if item.col.qualifier.is_none() {
            let matches: Vec<usize> = names
                .iter()
                .enumerate()
                .filter(|(_, n)| **n == item.col.column)
                .map(|(i, _)| i)
                .collect();
            match matches[..] {
                [one] => one,
                [] => {
                    return Err(Error::bind(format!(
                        "ORDER BY column {} is not in the select list",
                        item.col
                    )))
                }
                _ => {
                    return Err(Error::bind(format!(
                        "ambiguous ORDER BY column {}",
                        item.col
                    )))
                }
            }
        } else {
            resolve_qualified_order(&item.col, body, agg)?
        };
        out.push((pos, item.desc));
    }
    Ok(out)
}

/// Resolve a table-qualified `ORDER BY` column to its output position.
fn resolve_qualified_order(
    col: &ColRef,
    body: &BoundQuery,
    agg: Option<&BoundAgg>,
) -> Result<usize> {
    let spec = body.as_spec().ok_or_else(|| {
        Error::bind(format!(
            "qualified ORDER BY column {col} cannot address a set operation; use the output name"
        ))
    })?;
    let attr = resolve_in_block(&spec.from, col)?
        .ok_or_else(|| Error::bind(format!("unknown column {col} in ORDER BY")))?;
    match agg {
        None => spec
            .projection
            .iter()
            .position(|p| p.attr == attr)
            .ok_or_else(|| {
                Error::bind(format!(
                    "ORDER BY column {col} must appear in the select list"
                ))
            }),
        Some(a) => {
            // Only grouping columns are addressable by table-qualified
            // name; aggregate results are addressed by alias.
            a.items
                .iter()
                .position(|it| {
                    matches!(it, BoundAggItem::Group { pos, .. }
                             if spec.projection[*pos].attr == attr)
                })
                .ok_or_else(|| {
                    Error::bind(format!(
                        "ORDER BY column {col} must be a grouping column in the select list"
                    ))
                })
        }
    }
}

fn output_types(q: &BoundQuery) -> Vec<DataType> {
    match q {
        BoundQuery::Spec(s) => s.output_types(),
        BoundQuery::SetOp { left, .. } => output_types(left),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_sql::parse_query;

    fn bind(sql: &str) -> Result<BoundQuery> {
        let db = supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap())
    }

    #[test]
    fn binds_example_1_attributes() {
        let q = bind(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        )
        .unwrap();
        let spec = q.as_spec().unwrap();
        // SUPPLIER occupies attrs 0..5, PARTS 5..10.
        assert_eq!(spec.product_arity(), 10);
        assert_eq!(
            spec.projection.iter().map(|p| p.attr).collect::<Vec<_>>(),
            vec![0, 6, 7] // S.SNO, P.PNO, P.PNAME
        );
        assert_eq!(spec.attr_name(6), "P.PNO");
    }

    #[test]
    fn unqualified_names_resolve_when_unambiguous() {
        let q = bind(
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
        )
        .unwrap();
        let spec = q.as_spec().unwrap();
        assert_eq!(
            spec.projection.iter().map(|p| p.attr).collect::<Vec<_>>(),
            vec![0, 1, 6, 7]
        );
    }

    #[test]
    fn ambiguous_unqualified_name_is_rejected() {
        // SNO exists in both SUPPLIER and PARTS.
        let err = bind("SELECT SNO FROM SUPPLIER S, PARTS P").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn unknown_column_is_rejected() {
        assert!(bind("SELECT NOPE FROM SUPPLIER S").is_err());
        assert!(bind("SELECT S.NOPE FROM SUPPLIER S").is_err());
    }

    #[test]
    fn correlated_subquery_binds_outer_reference() {
        let q = bind(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.COLOR = 'RED')",
        )
        .unwrap();
        let spec = q.as_spec().unwrap();
        let pred = spec.predicate.as_ref().unwrap();
        match pred {
            BoundExpr::Exists { subquery, .. } => {
                let sub_pred = subquery.predicate.as_ref().unwrap();
                let conjuncts = sub_pred.conjuncts();
                match conjuncts[0] {
                    BoundExpr::Cmp { left, right, .. } => {
                        // S.SNO is one level up; P.SNO local.
                        assert_eq!(left.as_attr().unwrap(), AttrRef { up: 1, idx: 0 });
                        assert_eq!(right.as_attr().unwrap(), AttrRef::local(0));
                    }
                    other => panic!("unexpected conjunct {other:?}"),
                }
            }
            other => panic!("expected EXISTS, got {other:?}"),
        }
    }

    #[test]
    fn star_expands_all_columns() {
        let q = bind("SELECT * FROM SUPPLIER S, AGENTS A").unwrap();
        let spec = q.as_spec().unwrap();
        assert_eq!(spec.projection.len(), 9); // 5 + 4
        assert_eq!(spec.projection[5].name.as_str(), "SNO"); // AGENTS.SNO
    }

    #[test]
    fn type_mismatch_in_comparison_rejected() {
        let err = bind("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 'abc'").unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }), "{err}");
    }

    #[test]
    fn set_op_union_compatibility_checked() {
        // Arity mismatch.
        assert!(matches!(
            bind("SELECT SNO, SNAME FROM SUPPLIER INTERSECT SELECT ANO FROM AGENTS"),
            Err(Error::NotUnionCompatible { .. })
        ));
        // Type mismatch (INTEGER vs VARCHAR).
        assert!(matches!(
            bind("SELECT SNO FROM SUPPLIER INTERSECT SELECT ANAME FROM AGENTS"),
            Err(Error::TypeMismatch { .. })
        ));
        // Compatible.
        assert!(bind("SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT A.SNO FROM AGENTS A").is_ok());
    }

    #[test]
    fn duplicate_binding_rejected() {
        assert!(bind("SELECT * FROM SUPPLIER S, PARTS S").is_err());
    }

    #[test]
    fn in_subquery_must_project_one_column() {
        assert!(bind(
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO IN (SELECT P.SNO, P.PNO FROM PARTS P)"
        )
        .is_err());
    }

    #[test]
    fn host_variable_comparisons_are_untyped() {
        // Host variables have no declared type; binding must succeed.
        assert!(bind("SELECT S.SNO FROM SUPPLIER S WHERE S.SNAME = :NAME").is_ok());
    }

    fn bind_full(sql: &str) -> Result<BoundOutput> {
        let db = supplier_schema().unwrap();
        bind_output(db.catalog(), &uniq_sql::parse_full_query(sql).unwrap())
    }

    #[test]
    fn binds_group_by_aggregate() {
        let out = bind_full(
            "SELECT S.SCITY, COUNT(*), SUM(S.BUDGET) AS TOTAL \
             FROM SUPPLIER S GROUP BY S.SCITY",
        )
        .unwrap();
        let agg = out.agg.as_ref().unwrap();
        assert_eq!(agg.group_count, 1);
        assert!(!agg.group_elided);
        // Body projection: group col first, then the SUM argument.
        let spec = out.body.as_spec().unwrap();
        assert_eq!(spec.distinct, Distinct::All);
        assert_eq!(spec.projection.len(), 2);
        assert_eq!(spec.attr_name(spec.projection[0].attr), "S.SCITY");
        assert_eq!(spec.attr_name(spec.projection[1].attr), "S.BUDGET");
        assert_eq!(
            out.output_names()
                .iter()
                .map(|n| n.as_str().to_string())
                .collect::<Vec<_>>(),
            vec!["SCITY", "COUNT", "TOTAL"]
        );
        match &agg.items[2] {
            BoundAggItem::Agg { func, arg, .. } => {
                assert_eq!(*func, AggFunc::Sum);
                assert_eq!(*arg, Some(1));
            }
            other => panic!("expected SUM item, got {other:?}"),
        }
    }

    #[test]
    fn global_count_star_binds_with_star_body() {
        let out = bind_full("SELECT COUNT(*) FROM SUPPLIER S").unwrap();
        let agg = out.agg.as_ref().unwrap();
        assert_eq!(agg.group_count, 0);
        assert!(matches!(
            agg.items[0],
            BoundAggItem::Agg {
                func: AggFunc::Count,
                arg: None,
                ..
            }
        ));
    }

    #[test]
    fn ungrouped_select_column_is_rejected() {
        let err =
            bind_full("SELECT S.SNAME, COUNT(*) FROM SUPPLIER S GROUP BY S.SCITY").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn sum_over_string_is_rejected() {
        let err = bind_full("SELECT SUM(S.SNAME) FROM SUPPLIER S").unwrap_err();
        assert!(err.to_string().contains("INTEGER"), "{err}");
        // MIN/MAX over strings are fine.
        assert!(bind_full("SELECT MIN(S.SNAME) FROM SUPPLIER S").is_ok());
    }

    #[test]
    fn order_by_resolves_output_names_and_qualified_columns() {
        let out =
            bind_full("SELECT S.SNO, S.SNAME FROM SUPPLIER S ORDER BY SNAME DESC, S.SNO LIMIT 5")
                .unwrap();
        assert_eq!(out.order_by, vec![(1, true), (0, false)]);
        assert_eq!(out.limit, Some(5));
        // Aliased aggregate output is addressable by alias.
        let out = bind_full(
            "SELECT S.SCITY, COUNT(*) AS N FROM SUPPLIER S GROUP BY S.SCITY ORDER BY N DESC",
        )
        .unwrap();
        assert_eq!(out.order_by, vec![(1, true)]);
        // Qualified group column.
        let out =
            bind_full("SELECT S.SCITY, COUNT(*) FROM SUPPLIER S GROUP BY S.SCITY ORDER BY S.SCITY")
                .unwrap();
        assert_eq!(out.order_by, vec![(0, false)]);
    }

    #[test]
    fn order_by_outside_select_list_is_rejected() {
        assert!(bind_full("SELECT S.SNO FROM SUPPLIER S ORDER BY SNAME").is_err());
        assert!(bind_full("SELECT S.SNO FROM SUPPLIER S ORDER BY S.SNAME").is_err());
        // Aggregate results cannot be addressed by table-qualified name.
        assert!(bind_full(
            "SELECT S.SCITY, COUNT(*) FROM SUPPLIER S GROUP BY S.SCITY ORDER BY S.BUDGET"
        )
        .is_err());
    }

    #[test]
    fn plain_queries_bind_to_plain_output() {
        let out = bind_full("SELECT S.SNO FROM SUPPLIER S").unwrap();
        assert!(out.as_plain().is_some());
        assert_eq!(out.output_arity(), 1);
    }
}
