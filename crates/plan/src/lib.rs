//! Name resolution and the bound multiset algebra of paper §2.2.
//!
//! The parser's AST refers to columns by name; this crate *binds* a query
//! against a `uniq_catalog::Catalog`, producing a [`BoundQuery`] in which
//! every column reference is a positional [`AttrRef`] into the flat
//! attribute space of the query block's extended Cartesian product — the
//! representation the analyzers (`uniq-core`) and the executor
//! (`uniq-engine`) both consume.
//!
//! The crate also provides predicate normalization ([`norm`]): negation
//! push-down (sound in Kleene three-valued logic), conversion to
//! conjunctive normal form, and the CNF → DNF expansion that the paper's
//! Algorithm 1 performs (line 11), with a configurable size cap since the
//! expansion is worst-case exponential.

pub mod binder;
pub mod bound;
pub mod hostvars;
pub mod norm;

pub use binder::{bind_output, bind_query};
pub use bound::{
    AttrRef, BScalar, BoundAgg, BoundAggItem, BoundExpr, BoundOutput, BoundQuery, BoundSpec,
    FromTable, ProjItem,
};
pub use hostvars::HostVars;
