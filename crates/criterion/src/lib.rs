//! An offline, dependency-free drop-in subset of the `criterion` crate.
//!
//! The workspace's benches were written against the real `criterion`,
//! but this repository must build with **no network or registry
//! access**, and Cargo resolves even optional registry dependencies —
//! so the dependency has to leave the graph entirely. This shim keeps
//! every bench compiling and runnable (`cargo bench`), with a simple
//! median-of-samples timer instead of criterion's statistical engine:
//!
//! * [`criterion_group!`] / [`criterion_main!`],
//! * [`Criterion::benchmark_group`],
//! * `BenchmarkGroup::{sample_size, measurement_time, bench_function,
//!   bench_with_input, finish}`,
//! * [`BenchmarkId::new`], [`Bencher::iter`], [`black_box`].
//!
//! Each benchmark runs a warmup pass, then `sample_size` timed samples
//! of a batch sized so one sample takes roughly
//! `measurement_time / sample_size`, and prints the median per-iteration
//! time. No plots, no regression analysis, no saved baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named benchmark within a group, e.g. `algorithm1/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (a no-op in this shim; kept for API parity).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        // Warmup + calibration: run one sample to size the batches.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            samples.push(bencher.elapsed / iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{:<40} time: [median {:>12?}]  ({} samples x {} iters)",
            self.name, id, median, self.sample_size, iters
        );
    }
}

/// Times the benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the harness-chosen number of times.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
