//! The two execution strategies of Example 11.
//!
//! Query: `SELECT ALL S.* FROM SUPPLIER S, PARTS P WHERE S.SNO BETWEEN
//! :LO AND :HI AND S.SNO = P.SNO AND P.PNO = :PARTNO` — suppliers in a
//! number range that supply a particular part.

use crate::sample::SupplierClasses;
use crate::store::{ObjStore, RetrievalStats};
use uniq_types::{Result, Value};

/// One strategy's outcome: qualifying supplier rows plus access counters.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// Qualifying suppliers' field vectors, in retrieval order.
    pub rows: Vec<Vec<Value>>,
    /// Object fetches and index probes performed.
    pub stats: RetrievalStats,
}

/// Paper lines 36–42: the pointer-chasing join strategy.
///
/// Drive from the `PARTS` index on `PNO`, dereference each part's
/// child → parent pointer, and test the parent's `SNO` range — fetching
/// many `SUPPLIER` objects "only to find that their supplier number is
/// not in the specified range".
pub fn pointer_strategy(
    store: &ObjStore,
    classes: &SupplierClasses,
    partno: i64,
    lo: i64,
    hi: i64,
) -> Result<StrategyRun> {
    let mut stats = RetrievalStats::default();
    let mut rows = Vec::new();
    let pno_field = store.field_position(classes.parts, &"PNO".into())?;
    // line 36: retrieve PARTS (PNO = :PARTNO)
    let part_oids = store
        .index_eq(classes.parts, pno_field, &Value::Int(partno), &mut stats)?
        .to_vec();
    for part_oid in part_oids {
        // lines 37-41: retrieve PARTS.SUPPLIER, test SNO range
        let part = store.fetch(part_oid, &mut stats)?;
        let supplier_oid = part
            .parent
            .ok_or_else(|| uniq_types::Error::internal("part without supplier"))?;
        let supplier = store.fetch(supplier_oid, &mut stats)?;
        let sno = supplier.fields[0].as_int()?;
        if sno >= lo && sno <= hi {
            rows.push(supplier.fields.clone());
        }
    }
    Ok(StrategyRun { rows, stats })
}

/// Paper lines 43–48: the rewritten nested-query strategy (Theorem 2's
/// join → subquery direction).
///
/// Drive from the `SUPPLIER` index on the `SNO` range; for each
/// qualifying supplier probe the `PARTS` index for `PNO = :PARTNO`,
/// dereferencing candidate parts only until one with the matching parent
/// OID is found (`EXISTS` semantics — first match wins).
pub fn nested_strategy(
    store: &ObjStore,
    classes: &SupplierClasses,
    partno: i64,
    lo: i64,
    hi: i64,
) -> Result<StrategyRun> {
    let mut stats = RetrievalStats::default();
    let mut rows = Vec::new();
    let sno_field = store.field_position(classes.supplier, &"SNO".into())?;
    let pno_field = store.field_position(classes.parts, &"PNO".into())?;
    // line 43: retrieve SUPPLIER (SNO between :LO and :HI)
    let supplier_oids = store.index_range(
        classes.supplier,
        sno_field,
        &Value::Int(lo),
        &Value::Int(hi),
        &mut stats,
    )?;
    for supplier_oid in supplier_oids {
        let supplier = store.fetch(supplier_oid, &mut stats)?;
        // lines 45-46: retrieve PARTS (PNO = :PARTNO and
        // PARTS.SUPPLIER.OID = SUPPLIER.OID), first match only.
        let candidates = store
            .index_eq(classes.parts, pno_field, &Value::Int(partno), &mut stats)?
            .to_vec();
        let mut found = false;
        for part_oid in candidates {
            let part = store.fetch(part_oid, &mut stats)?;
            if part.parent == Some(supplier_oid) {
                found = true;
                break;
            }
        }
        if found {
            rows.push(supplier.fields.clone());
        }
    }
    Ok(StrategyRun { rows, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::synthetic;

    #[test]
    fn strategies_agree_on_results() {
        let (store, classes) = synthetic(100, 4, 500).unwrap();
        let a = pointer_strategy(&store, &classes, 500, 10, 20).unwrap();
        let b = nested_strategy(&store, &classes, 500, 10, 20).unwrap();
        let mut ar: Vec<i64> = a.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut br: Vec<i64> = b.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        ar.sort_unstable();
        br.sort_unstable();
        assert_eq!(ar, (10..=20).collect::<Vec<i64>>());
        assert_eq!(ar, br);
    }

    #[test]
    fn selective_parent_predicate_favors_nested() {
        // 1000 suppliers all supply part 500; range selects 1%.
        let (store, classes) = synthetic(1000, 4, 500).unwrap();
        let ptr = pointer_strategy(&store, &classes, 500, 1, 10).unwrap();
        let nst = nested_strategy(&store, &classes, 500, 1, 10).unwrap();
        assert_eq!(ptr.rows.len(), 10);
        assert_eq!(nst.rows.len(), 10);
        // Pointer plan fetches 1000 parts + 1000 suppliers; nested
        // fetches 10 suppliers + the probed parts.
        assert!(ptr.stats.objects_fetched >= 2000);
        assert!(
            nst.stats.objects_fetched < ptr.stats.objects_fetched,
            "nested {} vs pointer {}",
            nst.stats.objects_fetched,
            ptr.stats.objects_fetched
        );
    }

    #[test]
    fn unselective_parent_predicate_favors_pointers() {
        // Full range: the nested plan probes the shared-part candidate
        // list per supplier (quadratic in matches), the pointer plan
        // stays linear.
        let (store, classes) = synthetic(200, 2, 500).unwrap();
        let ptr = pointer_strategy(&store, &classes, 500, 1, 200).unwrap();
        let nst = nested_strategy(&store, &classes, 500, 1, 200).unwrap();
        assert_eq!(ptr.rows.len(), 200);
        assert_eq!(nst.rows.len(), 200);
        assert!(ptr.stats.objects_fetched < nst.stats.objects_fetched);
    }

    #[test]
    fn empty_range_is_cheap_for_nested() {
        let (store, classes) = synthetic(100, 4, 500).unwrap();
        let nst = nested_strategy(&store, &classes, 500, 900, 999).unwrap();
        assert!(nst.rows.is_empty());
        assert_eq!(nst.stats.objects_fetched, 0);
        // The pointer plan still fetches every matching part + parent.
        let ptr = pointer_strategy(&store, &classes, 500, 900, 999).unwrap();
        assert!(ptr.rows.is_empty());
        assert_eq!(ptr.stats.objects_fetched, 200);
    }
}
