//! An object store in the style of EXODUS / O₂ (paper §6.2, Figure 3).
//!
//! Physical object identifiers (OIDs) replace foreign keys; each child
//! object (`PARTS`, `AGENT`) carries a pointer **to its parent**
//! `SUPPLIER` object — the direction that makes select-project-join
//! queries awkward when the predicate on the parent class is the more
//! selective one, because the natural navigation (child → parent) fetches
//! many parents only to discard them.
//!
//! [`strategies`] implements both plans of Example 11 over the same
//! store, counting object fetches and index lookups:
//!
//! * the naive pointer-chasing plan (paper lines 36–42): drive from the
//!   `PARTS` index, dereference each part's parent pointer, test the
//!   parent's `SNO` range;
//! * the rewritten nested-query plan (lines 43–48), licensed by
//!   Theorem 2's join → subquery direction: drive from the `SUPPLIER`
//!   index on `SNO`, and for each supplier probe the `PARTS` index for
//!   `PNO = :PARTNO` with a parent-OID filter, stopping at the first hit.

pub mod sample;
pub mod store;
pub mod strategies;

pub use store::{ClassDef, ObjStore, Object, Oid, RetrievalStats};
pub use strategies::{nested_strategy, pointer_strategy, StrategyRun};
