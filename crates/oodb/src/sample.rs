//! Figure 3 schema instances: the supplier object base, plus a synthetic
//! generator for the Example 11 selectivity experiments.

use crate::store::{ClassDef, ObjStore, Object, Oid};
use uniq_types::{Result, Value};

/// The three class ids of a supplier object base.
#[derive(Debug, Clone, Copy)]
pub struct SupplierClasses {
    /// `SUPPLIER(SNO, SNAME, SCITY, BUDGET, STATUS)`.
    pub supplier: u32,
    /// `PARTS(PNO, PNAME, OEM-PNO, COLOR)` with parent → SUPPLIER.
    pub parts: u32,
    /// `AGENT(ANO, ANAME, ACITY)` with parent → SUPPLIER.
    pub agent: u32,
}

/// Create the Figure 3 classes with indexes on `SUPPLIER.SNO` and
/// `PARTS.PNO` (the indexes Example 11 assumes).
pub fn create_supplier_classes(store: &mut ObjStore) -> Result<SupplierClasses> {
    let supplier = store.create_class(ClassDef {
        name: "SUPPLIER".into(),
        fields: vec![
            "SNO".into(),
            "SNAME".into(),
            "SCITY".into(),
            "BUDGET".into(),
            "STATUS".into(),
        ],
    });
    let parts = store.create_class(ClassDef {
        name: "PARTS".into(),
        fields: vec![
            "PNO".into(),
            "PNAME".into(),
            "OEM-PNO".into(),
            "COLOR".into(),
        ],
    });
    let agent = store.create_class(ClassDef {
        name: "AGENT".into(),
        fields: vec!["ANO".into(), "ANAME".into(), "ACITY".into()],
    });
    store.create_index(supplier, &"SNO".into())?;
    store.create_index(parts, &"PNO".into())?;
    Ok(SupplierClasses {
        supplier,
        parts,
        agent,
    })
}

/// A synthetic object base for Example 11: `suppliers` supplier objects
/// with `SNO` 1…n, each supplying `parts_per_supplier` parts; every
/// supplier supplies the shared part `shared_pno` (the probed one).
pub fn synthetic(
    suppliers: usize,
    parts_per_supplier: usize,
    shared_pno: i64,
) -> Result<(ObjStore, SupplierClasses)> {
    let mut store = ObjStore::new();
    let classes = create_supplier_classes(&mut store)?;
    for s in 0..suppliers {
        let sno = s as i64 + 1;
        let supplier_oid: Oid = store.insert(
            classes.supplier,
            Object {
                fields: vec![
                    Value::Int(sno),
                    Value::str(format!("Supplier{sno}")),
                    Value::str("Toronto"),
                    Value::Int(100),
                    Value::str("Active"),
                ],
                parent: None,
            },
        )?;
        for p in 0..parts_per_supplier {
            let pno = if p == 0 {
                shared_pno
            } else {
                shared_pno + (sno * parts_per_supplier as i64) + p as i64
            };
            store.insert(
                classes.parts,
                Object {
                    fields: vec![
                        Value::Int(pno),
                        Value::str(format!("part{pno}")),
                        Value::Int(sno * 100_000 + pno),
                        Value::str(if pno % 3 == 0 { "RED" } else { "GREEN" }),
                    ],
                    parent: Some(supplier_oid),
                },
            )?;
        }
    }
    Ok((store, classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RetrievalStats;

    #[test]
    fn synthetic_shape() {
        let (store, classes) = synthetic(20, 5, 777).unwrap();
        assert_eq!(store.extent_size(classes.supplier).unwrap(), 20);
        assert_eq!(store.extent_size(classes.parts).unwrap(), 100);
        // Every supplier supplies the shared part.
        let mut stats = RetrievalStats::default();
        let pno_field = store.field_position(classes.parts, &"PNO".into()).unwrap();
        let oids = store
            .index_eq(classes.parts, pno_field, &Value::Int(777), &mut stats)
            .unwrap();
        assert_eq!(oids.len(), 20);
    }

    #[test]
    fn parent_pointers_resolve() {
        let (store, classes) = synthetic(3, 2, 10).unwrap();
        let mut stats = RetrievalStats::default();
        let pno_field = store.field_position(classes.parts, &"PNO".into()).unwrap();
        let oids = store
            .index_eq(classes.parts, pno_field, &Value::Int(10), &mut stats)
            .unwrap()
            .to_vec();
        for oid in oids {
            let part = store.fetch(oid, &mut stats).unwrap();
            let parent = store.fetch(part.parent.unwrap(), &mut stats).unwrap();
            assert!(parent.fields[0].as_int().unwrap() >= 1);
        }
    }
}
