//! The object store: classes, extents, OIDs, parent pointers, indexes.

use std::collections::BTreeMap;
use uniq_types::{ColumnName, Error, Result, Value};

/// A physical object identifier. In EXODUS/O₂ these are disk pointers;
/// here they are dense handles into the class extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    /// Which class the object belongs to.
    pub class: u32,
    /// Slot within the class extent.
    pub slot: u32,
}

/// One stored object.
#[derive(Debug, Clone)]
pub struct Object {
    /// Attribute values, parallel to the class's field list.
    pub fields: Vec<Value>,
    /// Pointer to the parent object (the Figure 3 relationship
    /// mechanism); `None` for root-class objects.
    pub parent: Option<Oid>,
}

/// A class definition.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Class name (`SUPPLIER`, `PARTS`, `AGENT`).
    pub name: String,
    /// Field names.
    pub fields: Vec<ColumnName>,
}

struct Extent {
    def: ClassDef,
    objects: Vec<Object>,
    /// Secondary indexes: field position → value → OIDs in value order.
    indexes: BTreeMap<usize, BTreeMap<Value, Vec<Oid>>>,
}

/// Counters for the access-path experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Objects fetched (dereferenced), the §6.2 cost driver.
    pub objects_fetched: u64,
    /// Index probes performed.
    pub index_lookups: u64,
}

/// A multi-class object store.
pub struct ObjStore {
    extents: Vec<Extent>,
}

impl ObjStore {
    /// An empty store.
    pub fn new() -> ObjStore {
        ObjStore {
            extents: Vec::new(),
        }
    }

    /// Register a class; returns its class id.
    pub fn create_class(&mut self, def: ClassDef) -> u32 {
        self.extents.push(Extent {
            def,
            objects: Vec::new(),
            indexes: BTreeMap::new(),
        });
        (self.extents.len() - 1) as u32
    }

    /// Class id by name.
    pub fn class_id(&self, name: &str) -> Result<u32> {
        self.extents
            .iter()
            .position(|e| e.def.name == name)
            .map(|i| i as u32)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    fn extent(&self, class: u32) -> Result<&Extent> {
        self.extents
            .get(class as usize)
            .ok_or_else(|| Error::internal(format!("unknown class id {class}")))
    }

    /// Store an object; returns its OID and maintains any indexes.
    pub fn insert(&mut self, class: u32, object: Object) -> Result<Oid> {
        let extent = self
            .extents
            .get_mut(class as usize)
            .ok_or_else(|| Error::internal(format!("unknown class id {class}")))?;
        let oid = Oid {
            class,
            slot: extent.objects.len() as u32,
        };
        for (&field, index) in extent.indexes.iter_mut() {
            index
                .entry(object.fields[field].clone())
                .or_default()
                .push(oid);
        }
        extent.objects.push(object);
        Ok(oid)
    }

    /// Build a secondary index on a field (by name).
    pub fn create_index(&mut self, class: u32, field: &ColumnName) -> Result<()> {
        let extent = self
            .extents
            .get_mut(class as usize)
            .ok_or_else(|| Error::internal(format!("unknown class id {class}")))?;
        let fpos = extent
            .def
            .fields
            .iter()
            .position(|f| f == field)
            .ok_or_else(|| Error::UnknownColumn {
                table: extent.def.name.clone(),
                column: field.to_string(),
            })?;
        let mut index: BTreeMap<Value, Vec<Oid>> = BTreeMap::new();
        for (slot, obj) in extent.objects.iter().enumerate() {
            index
                .entry(obj.fields[fpos].clone())
                .or_default()
                .push(Oid {
                    class,
                    slot: slot as u32,
                });
        }
        extent.indexes.insert(fpos, index);
        Ok(())
    }

    /// Field position within a class.
    pub fn field_position(&self, class: u32, field: &ColumnName) -> Result<usize> {
        let extent = self.extent(class)?;
        extent
            .def
            .fields
            .iter()
            .position(|f| f == field)
            .ok_or_else(|| Error::UnknownColumn {
                table: extent.def.name.clone(),
                column: field.to_string(),
            })
    }

    /// Dereference an OID (a "retrieve" in the paper's plans), counting
    /// the fetch.
    pub fn fetch(&self, oid: Oid, stats: &mut RetrievalStats) -> Result<&Object> {
        stats.objects_fetched += 1;
        self.extent(oid.class)?
            .objects
            .get(oid.slot as usize)
            .ok_or_else(|| Error::internal(format!("dangling OID {oid:?}")))
    }

    /// Exact-match index probe: OIDs whose indexed field equals `value`.
    pub fn index_eq(
        &self,
        class: u32,
        field: usize,
        value: &Value,
        stats: &mut RetrievalStats,
    ) -> Result<&[Oid]> {
        stats.index_lookups += 1;
        let extent = self.extent(class)?;
        let index = extent.indexes.get(&field).ok_or_else(|| {
            Error::internal(format!(
                "no index on {}.{}",
                extent.def.name, extent.def.fields[field]
            ))
        })?;
        Ok(index.get(value).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// Range index probe: OIDs whose indexed field lies in
    /// `[low, high]`, in value order.
    pub fn index_range(
        &self,
        class: u32,
        field: usize,
        low: &Value,
        high: &Value,
        stats: &mut RetrievalStats,
    ) -> Result<Vec<Oid>> {
        stats.index_lookups += 1;
        let extent = self.extent(class)?;
        let index = extent.indexes.get(&field).ok_or_else(|| {
            Error::internal(format!(
                "no index on {}.{}",
                extent.def.name, extent.def.fields[field]
            ))
        })?;
        if low > high {
            // Degenerate range (lo > hi): empty, like SQL BETWEEN.
            return Ok(Vec::new());
        }
        Ok(index
            .range(low.clone()..=high.clone())
            .flat_map(|(_, oids)| oids.iter().copied())
            .collect())
    }

    /// Number of objects in a class extent.
    pub fn extent_size(&self, class: u32) -> Result<usize> {
        Ok(self.extent(class)?.objects.len())
    }
}

impl Default for ObjStore {
    fn default() -> Self {
        ObjStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_index() -> (ObjStore, u32) {
        let mut s = ObjStore::new();
        let c = s.create_class(ClassDef {
            name: "T".into(),
            fields: vec!["K".into(), "V".into()],
        });
        s.create_index(c, &"K".into()).unwrap();
        for i in 0..10i64 {
            s.insert(
                c,
                Object {
                    fields: vec![Value::Int(i), Value::str(format!("v{i}"))],
                    parent: None,
                },
            )
            .unwrap();
        }
        (s, c)
    }

    #[test]
    fn fetch_counts_and_returns() {
        let (s, c) = store_with_index();
        let mut stats = RetrievalStats::default();
        let obj = s.fetch(Oid { class: c, slot: 3 }, &mut stats).unwrap();
        assert_eq!(obj.fields[0], Value::Int(3));
        assert_eq!(stats.objects_fetched, 1);
    }

    #[test]
    fn index_eq_probe() {
        let (s, c) = store_with_index();
        let mut stats = RetrievalStats::default();
        let oids = s.index_eq(c, 0, &Value::Int(7), &mut stats).unwrap();
        assert_eq!(oids.len(), 1);
        assert_eq!(oids[0].slot, 7);
        assert!(s
            .index_eq(c, 0, &Value::Int(99), &mut stats)
            .unwrap()
            .is_empty());
        assert_eq!(stats.index_lookups, 2);
    }

    #[test]
    fn index_range_probe() {
        let (s, c) = store_with_index();
        let mut stats = RetrievalStats::default();
        let oids = s
            .index_range(c, 0, &Value::Int(3), &Value::Int(6), &mut stats)
            .unwrap();
        assert_eq!(oids.len(), 4);
    }

    #[test]
    fn index_maintained_on_insert() {
        let (mut s, c) = store_with_index();
        s.insert(
            c,
            Object {
                fields: vec![Value::Int(100), Value::str("new")],
                parent: None,
            },
        )
        .unwrap();
        let mut stats = RetrievalStats::default();
        assert_eq!(
            s.index_eq(c, 0, &Value::Int(100), &mut stats)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn missing_index_is_an_error() {
        let (s, c) = store_with_index();
        let mut stats = RetrievalStats::default();
        assert!(s.index_eq(c, 1, &Value::str("v1"), &mut stats).is_err());
    }
}
