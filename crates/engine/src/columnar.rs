//! Columnar storage and vectorized, uniqueness-aware execution kernels.
//!
//! A [`ColumnStore`] re-encodes a database's tables column-wise: `i64`
//! columns are stored flat next to a [`NullBitmap`], string columns are
//! dictionary-encoded into dense `u32` codes (one sorted dictionary per
//! column, so code order coincides with string order and every
//! comparison predicate compiles to a code-range test). The store is
//! built once — at `ANALYZE` time, alongside the statistics — and is
//! consulted again only if it is provably fresh: the catalog version
//! must match and every scanned table's row count must equal the
//! encoded count, so codes from a stale encoding are never read.
//!
//! Execution walks [`ColumnBatch`]es: a batch is a table reference plus
//! a *selection vector* of qualifying row ids, so filters refine the
//! selection without copying rows. Joins carry tuples of row ids (one
//! per placed table) and late-materialize `Value` rows only at query
//! output, which is what the `materialized_rows` counter measures.
//!
//! Uniqueness is the fast path throughout, extending the unique-key
//! hash kernel of the morsel executor (see [`crate::parallel`]):
//!
//! * when a join step's keys cover a candidate key of the build side
//!   (the planner's `JoinStep::unique` proof), the single-column kernels
//!   skip hashing entirely and use a *direct-index* table — dictionary
//!   codes (or a bounded integer span) index straight into an array of
//!   row ids, one array load per probe, `hash_probes == 0`;
//! * blocks the optimizer proved duplicate-free never reach the
//!   distinct kernel at all (the rewrite removed the `DISTINCT`), so
//!   the columnar path inherits that saving for free.
//!
//! The row executor remains the oracle: the planner only marks a block
//! columnar for shapes these kernels cover, and this module re-verifies
//! at runtime — any unsupported conjunct, a missing or stale encoding,
//! a keyless step — and returns `None` so the caller falls back to row
//! execution. Column chunks go through the same morsel scheduler as row
//! morsels (`crate::parallel::run_tasks`); each (kernel, chunk) pair
//! counts one `vector_ops`, the columnar analogue of per-row dispatch.

use crate::agg::{finalize_state, init_states, update_states, AggState};
use crate::exec::{contains_subquery, equi_join_key, map_all_attr_refs, Executor};
use crate::parallel::{run_tasks, MORSEL_SIZE};
use crate::stats::ExecStats;
use std::collections::{BTreeSet, HashMap, HashSet};
use uniq_catalog::{Database, Row, TableSchema};
use uniq_cost::{BlockPlan, JoinMethod};
use uniq_plan::{BScalar, BoundAgg, BoundAggItem, BoundExpr, BoundSpec};
use uniq_sql::CmpOp;
use uniq_types::{DataType, NullBitmap, Result, TableName, Value};

/// Largest dictionary a string column may grow before the table is left
/// un-encoded (and every plan over it falls back to row execution). One
/// below `u32::MAX` so a code never collides with the kernels' `MAX`
/// "empty slot" sentinel.
pub const DEFAULT_DICT_LIMIT: usize = (u32::MAX - 1) as usize;

/// Largest integer key span (`max - min + 1`) the direct-index join
/// kernel will allocate an array for; wider spans use the hash kernel.
const DIRECT_SPAN_LIMIT: i128 = 1 << 22;

/// Sentinel row id / code meaning "no entry".
const NONE_U32: u32 = u32::MAX;

/// One encoded column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnData {
    /// An `INTEGER` column: values flat, validity in the bitmap (NULL
    /// slots hold 0 and must never be read).
    Int {
        /// One `i64` per row.
        values: Vec<i64>,
        /// Per-row NULL flags.
        nulls: NullBitmap,
    },
    /// A `VARCHAR` column, dictionary-encoded. The dictionary is sorted
    /// ascending, so codes are dense *and order-preserving*: every
    /// comparison against a literal becomes a code-range test.
    Str {
        /// One dictionary code per row (NULL slots hold 0).
        codes: Vec<u32>,
        /// Per-row NULL flags.
        nulls: NullBitmap,
        /// Sorted distinct non-NULL values; `codes[r]` indexes here.
        dict: Vec<String>,
    },
}

/// All columns of one encoded table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableColumns {
    rows: usize,
    cols: Vec<ColumnData>,
}

impl TableColumns {
    /// Encoded row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column `c`'s encoded data.
    pub fn column(&self, c: usize) -> &ColumnData {
        &self.cols[c]
    }

    /// Decode one cell back to a [`Value`] (late materialization).
    pub fn value_at(&self, c: usize, r: usize) -> Value {
        match &self.cols[c] {
            ColumnData::Int { values, nulls } => {
                if nulls.is_null(r) {
                    Value::Null
                } else {
                    Value::Int(values[r])
                }
            }
            ColumnData::Str { codes, nulls, dict } => {
                if nulls.is_null(r) {
                    Value::Null
                } else {
                    Value::Str(dict[codes[r] as usize].clone())
                }
            }
        }
    }
}

/// A table reference plus a selection vector of qualifying row ids —
/// the unit the vectorized filter kernel produces and refines. Filters
/// shrink `sel`; they never copy rows.
#[derive(Debug)]
pub struct ColumnBatch<'a> {
    /// The encoded table the selection indexes into.
    pub table: &'a TableColumns,
    /// Qualifying row ids, ascending.
    pub sel: Vec<u32>,
}

/// Column-wise encodings of every encodable table of one database
/// snapshot, keyed by table name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnStore {
    tables: HashMap<TableName, TableColumns>,
    catalog_version: u64,
}

impl ColumnStore {
    /// Encode every table of `db` (skipping any that cannot be encoded:
    /// non-scalar column types, row counts beyond `u32`, or string
    /// dictionaries beyond [`DEFAULT_DICT_LIMIT`]).
    pub fn build(db: &Database) -> ColumnStore {
        ColumnStore::build_with_dict_limit(db, DEFAULT_DICT_LIMIT)
    }

    /// Like [`ColumnStore::build`] with an explicit dictionary-size
    /// guard: a string column with more than `limit` distinct values
    /// leaves its whole table un-encoded (queries over it fall back to
    /// the row executor). Exposed for tests; production use is
    /// [`DEFAULT_DICT_LIMIT`], the `u32` code-space guard.
    pub fn build_with_dict_limit(db: &Database, limit: usize) -> ColumnStore {
        let limit = limit.min(DEFAULT_DICT_LIMIT);
        let mut tables = HashMap::new();
        for schema in db.catalog().tables() {
            let Ok(rows) = db.rows(&schema.name) else {
                continue;
            };
            if let Some(tc) = encode_table(schema, rows, limit) {
                tables.insert(schema.name.clone(), tc);
            }
        }
        ColumnStore {
            tables,
            catalog_version: db.version(),
        }
    }

    /// The encoding of `name`, if the table was encodable.
    pub fn table(&self, name: &TableName) -> Option<&TableColumns> {
        self.tables.get(name)
    }

    /// The catalog version the store was built against; a mismatch with
    /// the live database means the encoding is stale.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// Number of encoded tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no table could be encoded.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

fn encode_table(schema: &TableSchema, rows: &[Row], limit: usize) -> Option<TableColumns> {
    let nrows = rows.len();
    if nrows > NONE_U32 as usize {
        return None;
    }
    let mut cols = Vec::with_capacity(schema.arity());
    for (c, def) in schema.columns.iter().enumerate() {
        match def.data_type {
            DataType::Int => {
                let mut values = Vec::with_capacity(nrows);
                let mut nulls = NullBitmap::with_capacity(nrows);
                for row in rows {
                    match &row[c] {
                        Value::Null => {
                            values.push(0);
                            nulls.push(true);
                        }
                        Value::Int(i) => {
                            values.push(*i);
                            nulls.push(false);
                        }
                        _ => return None,
                    }
                }
                cols.push(ColumnData::Int { values, nulls });
            }
            DataType::Str => {
                let mut set: BTreeSet<&str> = BTreeSet::new();
                for row in rows {
                    match &row[c] {
                        Value::Null => {}
                        Value::Str(s) => {
                            set.insert(s);
                        }
                        _ => return None,
                    }
                }
                if set.len() > limit {
                    return None;
                }
                let dict: Vec<String> = set.into_iter().map(str::to_string).collect();
                let mut codes = Vec::with_capacity(nrows);
                let mut nulls = NullBitmap::with_capacity(nrows);
                for row in rows {
                    match &row[c] {
                        Value::Null => {
                            codes.push(0);
                            nulls.push(true);
                        }
                        Value::Str(s) => {
                            let code = dict
                                .binary_search(s)
                                .expect("dictionary built from these rows");
                            codes.push(code as u32);
                            nulls.push(false);
                        }
                        _ => return None,
                    }
                }
                cols.push(ColumnData::Str { codes, nulls, dict });
            }
            _ => return None,
        }
    }
    Some(TableColumns { rows: nrows, cols })
}

// --- vectorizable predicates -------------------------------------------

/// A table-local conjunct compiled against one encoded table. All six
/// comparison operators are supported on both column types: integer
/// comparisons run on the flat values, string comparisons become
/// code-range tests because each dictionary is sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pred {
    /// `col ⋄ literal` on an integer column.
    IntCmp { col: usize, op: CmpOp, lit: i64 },
    /// Row qualifies iff non-NULL and `lo <= code < hi` (xor `negate`,
    /// which still never admits NULL rows — `WHERE` is false-interpreted).
    StrRange {
        col: usize,
        lo: u32,
        hi: u32,
        negate: bool,
    },
    /// Never matches (comparison against a NULL literal is unknown).
    Never,
}

fn flip_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Compile one conjunct into a vectorizable predicate over the table
/// occupying `range`, or `None` when the shape is not covered (the
/// caller then falls back to row execution).
fn compile_pred(c: &BoundExpr, range: &std::ops::Range<usize>, tc: &TableColumns) -> Option<Pred> {
    let BoundExpr::Cmp { op, left, right } = c else {
        return None;
    };
    let (attr, lit, op) = match (left, right) {
        (BScalar::Attr(a), BScalar::Literal(v)) if a.is_local() => (a, v, *op),
        (BScalar::Literal(v), BScalar::Attr(a)) if a.is_local() => (a, v, flip_op(*op)),
        _ => return None,
    };
    if !range.contains(&attr.idx) {
        return None;
    }
    let col = attr.idx - range.start;
    if lit.is_null() {
        return Some(Pred::Never);
    }
    match (tc.column(col), lit) {
        (ColumnData::Int { .. }, Value::Int(i)) => Some(Pred::IntCmp { col, op, lit: *i }),
        (ColumnData::Str { dict, .. }, Value::Str(s)) => {
            // First dictionary position not below the literal; the code
            // ranges below follow from the dictionary being sorted.
            let pos = dict.partition_point(|d| d.as_str() < s.as_str()) as u32;
            let hit = u32::from(dict.get(pos as usize).is_some_and(|d| d == s));
            let len = dict.len() as u32;
            let (lo, hi, negate) = match op {
                CmpOp::Eq => (pos, pos + hit, false),
                CmpOp::Ne => (pos, pos + hit, true),
                CmpOp::Lt => (0, pos, false),
                CmpOp::Le => (0, pos + hit, false),
                CmpOp::Gt => (pos + hit, len, false),
                CmpOp::Ge => (pos, len, false),
            };
            Some(Pred::StrRange {
                col,
                lo,
                hi,
                negate,
            })
        }
        _ => None,
    }
}

fn eval_pred(p: &Pred, tc: &TableColumns, r: usize) -> bool {
    match p {
        Pred::Never => false,
        Pred::IntCmp { col, op, lit } => match tc.column(*col) {
            ColumnData::Int { values, nulls } => {
                if nulls.is_null(r) {
                    return false;
                }
                let v = values[r];
                match op {
                    CmpOp::Eq => v == *lit,
                    CmpOp::Ne => v != *lit,
                    CmpOp::Lt => v < *lit,
                    CmpOp::Le => v <= *lit,
                    CmpOp::Gt => v > *lit,
                    CmpOp::Ge => v >= *lit,
                }
            }
            ColumnData::Str { .. } => false,
        },
        Pred::StrRange {
            col,
            lo,
            hi,
            negate,
        } => match tc.column(*col) {
            ColumnData::Str { codes, nulls, .. } => {
                if nulls.is_null(r) {
                    return false;
                }
                let c = codes[r];
                (*lo <= c && c < *hi) != *negate
            }
            ColumnData::Int { .. } => false,
        },
    }
}

/// Vectorized filter: chunk the table into column morsels, build each
/// chunk's identity selection, then refine it predicate by predicate —
/// rows are never copied, only the selection shrinks. One `vector_ops`
/// per (predicate, chunk); `morsels` counts the chunks when parallel.
fn filter_table(
    tc: &TableColumns,
    preds: &[Pred],
    deg: usize,
    stats: &mut ExecStats,
) -> Result<Vec<u32>> {
    let nchunks = tc.rows.div_ceil(MORSEL_SIZE);
    let parts = run_tasks(deg, nchunks, |i| {
        let start = i * MORSEL_SIZE;
        let end = ((i + 1) * MORSEL_SIZE).min(tc.rows);
        let mut sel: Vec<u32> = (start as u32..end as u32).collect();
        for p in preds {
            sel.retain(|&r| eval_pred(p, tc, r as usize));
        }
        Ok(sel)
    })?;
    stats.vector_ops += (nchunks * preds.len().max(1)) as u64;
    if deg > 1 {
        stats.morsels += nchunks as u64;
    }
    Ok(parts.into_iter().flatten().collect())
}

// --- join kernels ------------------------------------------------------

/// One resolved equi-join key of a step: where the probe side reads its
/// value (`slot` into the tuple of placed row ids, then `probe_col` of
/// that table) and which build-side column it must equal.
#[derive(Debug, Clone, Copy)]
struct ResolvedKey {
    slot: usize,
    probe_col: usize,
    build_col: usize,
}

/// A key with its per-step probe/build column data. For string keys,
/// `trans` maps probe-dictionary codes into the build dictionary
/// (`NONE_U32` = the probe string does not occur on the build side), so
/// both kernels compare codes in *build* space — translated once per
/// distinct probe value, not once per row.
struct KeyAt<'a> {
    slot: usize,
    probe: &'a ColumnData,
    build: &'a ColumnData,
    trans: Option<Vec<u32>>,
}

enum ProbeKey {
    /// NULL key component: the probe row can never match (`WHERE =`),
    /// and is skipped without counting, like the row kernels.
    Null,
    /// The probe string does not exist in the build dictionary: a
    /// counted probe that is guaranteed to miss.
    NoMatch,
    /// Comparable key in build space.
    Key(u64),
}

fn translation(probe_dict: &[String], build_dict: &[String]) -> Vec<u32> {
    probe_dict
        .iter()
        .map(|s| match build_dict.binary_search(s) {
            Ok(i) => i as u32,
            Err(_) => NONE_U32,
        })
        .collect()
}

impl KeyAt<'_> {
    fn probe_key(&self, r: u32) -> ProbeKey {
        let r = r as usize;
        match self.probe {
            ColumnData::Int { values, nulls } => {
                if nulls.is_null(r) {
                    ProbeKey::Null
                } else {
                    ProbeKey::Key(values[r] as u64)
                }
            }
            ColumnData::Str { codes, nulls, .. } => {
                if nulls.is_null(r) {
                    return ProbeKey::Null;
                }
                let trans = self.trans.as_ref().expect("string key has translation");
                match trans[codes[r] as usize] {
                    NONE_U32 => ProbeKey::NoMatch,
                    c => ProbeKey::Key(c as u64),
                }
            }
        }
    }

    fn build_key(&self, r: u32) -> Option<u64> {
        let r = r as usize;
        match self.build {
            ColumnData::Int { values, nulls } => (!nulls.is_null(r)).then(|| values[r] as u64),
            ColumnData::Str { codes, nulls, .. } => (!nulls.is_null(r)).then(|| codes[r] as u64),
        }
    }
}

/// Direct-index table for a unique single-key build side: key → build
/// row id, no hashing. Dictionary codes index straight into `index`;
/// integer keys index by offset from the observed minimum.
enum Direct {
    Str {
        index: Vec<u32>,
    },
    Int {
        base: i64,
        max: i64,
        index: Vec<u32>,
    },
}

/// Build the direct-index table over the (filtered) build side, or
/// `None` when an integer key's span is too wide to tabulate — the
/// caller then uses the hash kernel instead.
fn build_direct(key: &KeyAt<'_>, build_sel: &[u32]) -> Option<Direct> {
    match key.build {
        ColumnData::Str { codes, nulls, dict } => {
            let mut index = vec![NONE_U32; dict.len()];
            for &r in build_sel {
                if !nulls.is_null(r as usize) {
                    index[codes[r as usize] as usize] = r;
                }
            }
            Some(Direct::Str { index })
        }
        ColumnData::Int { values, nulls } => {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for &r in build_sel {
                if !nulls.is_null(r as usize) {
                    let v = values[r as usize];
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            if lo > hi {
                // Empty build side: every probe misses.
                return Some(Direct::Int {
                    base: 0,
                    max: -1,
                    index: Vec::new(),
                });
            }
            let span = hi as i128 - lo as i128 + 1;
            if span > DIRECT_SPAN_LIMIT {
                return None;
            }
            let mut index = vec![NONE_U32; span as usize];
            for &r in build_sel {
                if !nulls.is_null(r as usize) {
                    index[(values[r as usize] - lo) as usize] = r;
                }
            }
            Some(Direct::Int {
                base: lo,
                max: hi,
                index,
            })
        }
    }
}

fn direct_lookup(d: &Direct, key: u64) -> u32 {
    match d {
        Direct::Str { index } => index.get(key as usize).copied().unwrap_or(NONE_U32),
        Direct::Int { base, max, index } => {
            let v = key as i64;
            if v < *base || v > *max {
                NONE_U32
            } else {
                index[(v - base) as usize]
            }
        }
    }
}

// --- the columnar block executor ---------------------------------------

/// The code-space result of one planned block: joined row-id tuples
/// plus the projection mapping — everything a consumer needs either to
/// late-materialize output rows ([`exec_block`]) or to aggregate on
/// dictionary codes without materializing at all ([`exec_block_agg`]).
struct BlockTuples<'a> {
    /// Encoded tables by pipeline slot (`ordered[slot]` is the table
    /// occupying tuple slot `slot`).
    ordered: Vec<&'a TableColumns>,
    /// Projection items as (tuple slot, table-local column).
    proj: Vec<(usize, usize)>,
    /// Flat row-id tuples, `stride` slots each.
    tuples: Vec<u32>,
    /// Slots per tuple (= tables placed).
    stride: usize,
}

impl BlockTuples<'_> {
    fn len(&self) -> usize {
        self.tuples.len() / self.stride
    }

    fn tup(&self, t: usize) -> &[u32] {
        &self.tuples[t * self.stride..(t + 1) * self.stride]
    }

    /// Decode projection position `p` of tuple `t` (late
    /// materialization — one cell, not a row).
    fn value(&self, t: usize, p: usize) -> Value {
        let (slot, col) = self.proj[p];
        self.ordered[slot].value_at(col, self.tup(t)[slot] as usize)
    }

    /// Encoded key of the first `n` projection positions of tuple `t`:
    /// per column a (null, code/value) word pair — exact under `=̇`
    /// because codes within one column are injective. This is the
    /// dictionary-coded group key: strings group by `u32` code, never
    /// by string compare.
    fn key_words(&self, t: usize, n: usize) -> Vec<u64> {
        let tup = self.tup(t);
        let mut key = Vec::with_capacity(n * 2);
        for &(slot, col) in &self.proj[..n] {
            let r = tup[slot] as usize;
            match self.ordered[slot].column(col) {
                ColumnData::Int { values, nulls } => {
                    if nulls.is_null(r) {
                        key.extend([1, 0]);
                    } else {
                        key.extend([0, values[r] as u64]);
                    }
                }
                ColumnData::Str { codes, nulls, .. } => {
                    if nulls.is_null(r) {
                        key.extend([1, 0]);
                    } else {
                        key.extend([0, codes[r] as u64]);
                    }
                }
            }
        }
        key
    }
}

/// Execute one planned block entirely on the columnar kernels, or
/// return `None` when anything about the block is not covered — a
/// missing/stale table encoding, an uncompilable conjunct, a keyless or
/// non-hash join step — in which case the caller falls back to the row
/// executor with no counters touched.
pub(crate) fn exec_block(
    ex: &mut Executor<'_>,
    store: &ColumnStore,
    spec: &BoundSpec,
    bp: &BlockPlan,
) -> Result<Option<Vec<Row>>> {
    let Some(bt) = exec_block_tuples(ex, store, spec, bp)? else {
        return Ok(None);
    };
    // Late materialization: only final output tuples become `Value`s.
    let ntuples = bt.len();
    let mut rows = Vec::with_capacity(ntuples);
    for t in 0..ntuples {
        rows.push((0..bt.proj.len()).map(|p| bt.value(t, p)).collect::<Row>());
    }
    ex.stats.vector_ops += ntuples.div_ceil(MORSEL_SIZE) as u64;
    ex.stats.materialized_rows += ntuples as u64;
    Ok(Some(rows))
}

/// Aggregate one planned block on the columnar kernels: group keys stay
/// dictionary codes end-to-end (a `(null, code)` word pair per grouping
/// column), and only aggregate *argument* cells and the surviving group
/// representatives are ever decoded. A proof-elided grouping takes the
/// zero-hash one-pass here too. `None` falls back to row execution
/// exactly like [`exec_block`].
pub(crate) fn exec_block_agg(
    ex: &mut Executor<'_>,
    store: &ColumnStore,
    spec: &BoundSpec,
    bp: &BlockPlan,
    agg: &BoundAgg,
) -> Result<Option<Vec<Row>>> {
    let Some(bt) = exec_block_tuples(ex, store, spec, bp)? else {
        return Ok(None);
    };
    let ntuples = bt.len();
    ex.stats.agg_rows += ntuples as u64;
    let item_value =
        |bt: &BlockTuples<'_>, rep: usize, item: &BoundAggItem, st: AggState| match item {
            BoundAggItem::Group { pos, .. } => bt.value(rep, *pos),
            BoundAggItem::Agg { .. } => finalize_state(st),
        };

    let out: Vec<Row> = if agg.group_elided && agg.group_count > 0 {
        // Key-elided one-pass: every tuple is its own group, no hashing.
        let mut rows = Vec::with_capacity(ntuples);
        for t in 0..ntuples {
            let mut states = init_states(agg);
            let set_probes = update_states(&mut states, agg, &mut |p| bt.value(t, p))?;
            ex.stats.hash_probes += set_probes;
            ex.stats.probe_steps += set_probes;
            rows.push(
                agg.items
                    .iter()
                    .zip(states)
                    .map(|(item, st)| item_value(&bt, t, item, st))
                    .collect::<Row>(),
            );
        }
        rows
    } else {
        // Hash grouping on encoded key words; each group remembers a
        // representative tuple so grouping columns decode exactly once.
        let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut groups: Vec<(usize, Vec<AggState>)> = Vec::new();
        for t in 0..ntuples {
            let slot = if agg.group_count == 0 {
                // Global aggregate: one group, no key, nothing to hash.
                if groups.is_empty() {
                    groups.push((t, init_states(agg)));
                }
                0
            } else {
                let key = bt.key_words(t, agg.group_count);
                ex.stats.hash_probes += 1;
                ex.stats.probe_steps += 1;
                *index.entry(key).or_insert_with(|| {
                    groups.push((t, init_states(agg)));
                    groups.len() - 1
                })
            };
            let set_probes = update_states(&mut groups[slot].1, agg, &mut |p| bt.value(t, p))?;
            ex.stats.hash_probes += set_probes;
            ex.stats.probe_steps += set_probes;
        }
        // The global aggregate's one group exists even over empty input
        // (no grouping items, so the representative is never read).
        if agg.group_count == 0 && groups.is_empty() {
            groups.push((0, init_states(agg)));
        }
        groups
            .into_iter()
            .map(|(rep, states)| {
                agg.items
                    .iter()
                    .zip(states)
                    .map(|(item, st)| item_value(&bt, rep, item, st))
                    .collect::<Row>()
            })
            .collect()
    };
    ex.stats.vector_ops += ntuples.div_ceil(MORSEL_SIZE) as u64;
    ex.stats.materialized_rows += out.len() as u64;
    Ok(Some(out))
}

/// The shared block pipeline in code space: validate coverage, then
/// scan → join → (planned distinct), returning joined row-id tuples.
fn exec_block_tuples<'a>(
    ex: &mut Executor<'_>,
    store: &'a ColumnStore,
    spec: &BoundSpec,
    bp: &BlockPlan,
) -> Result<Option<BlockTuples<'a>>> {
    let n = spec.from.len();

    // Freshness: the catalog must not have moved since the encoding was
    // built, and every scanned table must hold exactly the encoded rows
    // (INSERT does not bump the catalog version, so stale codes are
    // caught here by row count).
    if store.catalog_version != ex.db.version() {
        return Ok(None);
    }
    let mut tables: Vec<&TableColumns> = Vec::with_capacity(n);
    for ft in &spec.from {
        match store.table(&ft.schema.name) {
            Some(tc) if tc.rows == ex.db.row_count(&ft.schema.name)? => tables.push(tc),
            _ => return Ok(None),
        }
    }
    if bp.joins.iter().any(|j| j.method != JoinMethod::Hash) {
        return Ok(None);
    }

    // Assign conjuncts to planned levels, exactly like the row
    // executor's planned pipeline.
    let mut pos = vec![0usize; n];
    for (k, &t) in bp.order.iter().enumerate() {
        pos[t] = k;
    }
    let mut levels: Vec<Vec<&BoundExpr>> = vec![Vec::new(); n];
    if let Some(pred) = &spec.predicate {
        for c in pred.conjuncts() {
            if contains_subquery(c) {
                return Ok(None);
            }
            let mut level = 0usize;
            let mut probe = c.clone();
            map_all_attr_refs(&mut probe, &mut |depth, a| {
                if a.up == depth {
                    let owner = spec
                        .from
                        .iter()
                        .position(|ft| ft.attr_range().contains(&a.idx));
                    if let Some(at) = owner {
                        level = level.max(pos[at]);
                    }
                }
            });
            levels[level].push(c);
        }
    }

    // Validate the whole block before touching any counter, so a
    // fallback never leaves half-counted work behind.
    let range0 = spec.from[bp.order[0]].attr_range();
    let tc0 = tables[bp.order[0]];
    let mut preds0 = Vec::with_capacity(levels[0].len());
    for c in &levels[0] {
        match compile_pred(c, &range0, tc0) {
            Some(p) => preds0.push(p),
            None => return Ok(None),
        }
    }
    let mut steps: Vec<(Vec<Pred>, Vec<ResolvedKey>)> = Vec::with_capacity(n.saturating_sub(1));
    let mut placed_ranges = vec![range0];
    for k in 1..n {
        let table = &spec.from[bp.order[k]];
        let tc = tables[bp.order[k]];
        let range = table.attr_range();
        let mut preds = Vec::new();
        let mut keys = Vec::new();
        for c in &levels[k] {
            let placed = |idx: usize| placed_ranges.iter().any(|r| r.contains(&idx));
            if let Some((built, new)) = equi_join_key(c, &range, &placed) {
                let Some(from_pos) = spec
                    .from
                    .iter()
                    .position(|ft| ft.attr_range().contains(&built))
                else {
                    return Ok(None);
                };
                let rk = ResolvedKey {
                    slot: pos[from_pos],
                    probe_col: built - spec.from[from_pos].attr_range().start,
                    build_col: new - range.start,
                };
                // Kernel keys compare codes, so both sides must carry
                // the same physical encoding.
                let same_kind = matches!(
                    (
                        tables[bp.order[rk.slot]].column(rk.probe_col),
                        tc.column(rk.build_col)
                    ),
                    (ColumnData::Int { .. }, ColumnData::Int { .. })
                        | (ColumnData::Str { .. }, ColumnData::Str { .. })
                );
                if !same_kind {
                    return Ok(None);
                }
                keys.push(rk);
            } else if let Some(p) = compile_pred(c, &range, tc) {
                preds.push(p);
            } else {
                return Ok(None);
            }
        }
        if keys.is_empty() {
            return Ok(None);
        }
        placed_ranges.push(range);
        steps.push((preds, keys));
    }
    let mut proj: Vec<(usize, usize)> = Vec::with_capacity(spec.projection.len());
    for p in &spec.projection {
        let Some(from_pos) = spec
            .from
            .iter()
            .position(|ft| ft.attr_range().contains(&p.attr))
        else {
            return Ok(None);
        };
        proj.push((
            pos[from_pos],
            p.attr - spec.from[from_pos].attr_range().start,
        ));
    }

    // --- execution -----------------------------------------------------

    // Level 0: vectorized filtered scan → selection vector, no copies.
    let scan = ColumnBatch {
        table: tc0,
        sel: filter_table(tc0, &preds0, bp.scan_deg.max(1), &mut ex.stats)?,
    };
    ex.record(bp.scan, scan.sel.len());

    // Tuples of row ids, flat with one slot per placed table.
    let mut stride = 1usize;
    let mut tuples: Vec<u32> = scan.sel;

    for (k, (preds, rkeys)) in steps.iter().enumerate() {
        let step = &bp.joins[k];
        let tcb = tables[bp.order[k + 1]];
        let deg = step.deg.max(1);
        let build = ColumnBatch {
            table: tcb,
            sel: filter_table(tcb, preds, deg, &mut ex.stats)?,
        };
        let keys: Vec<KeyAt<'_>> = rkeys
            .iter()
            .map(|rk| {
                let probe = tables[bp.order[rk.slot]].column(rk.probe_col);
                let build_col = tcb.column(rk.build_col);
                let trans = match (probe, build_col) {
                    (ColumnData::Str { dict: pd, .. }, ColumnData::Str { dict: bd, .. }) => {
                        Some(translation(pd, bd))
                    }
                    _ => None,
                };
                KeyAt {
                    slot: rk.slot,
                    probe,
                    build: build_col,
                    trans,
                }
            })
            .collect();

        let unique = ex.opts.unique_kernels && step.unique;
        let direct = if unique && keys.len() == 1 {
            build_direct(&keys[0], &build.sel)
        } else {
            None
        };

        let ntuples = tuples.len().checked_div(stride).unwrap_or(0);
        let nchunks = ntuples.div_ceil(MORSEL_SIZE);
        let next: Vec<(Vec<u32>, u64, u64)> = if let Some(direct) = &direct {
            // Direct-index unique kernel: zero hash operations, one
            // array load (= one probe step) per probe.
            run_tasks(deg, nchunks, |i| {
                let lo = i * MORSEL_SIZE;
                let hi = ((i + 1) * MORSEL_SIZE).min(ntuples);
                let mut out = Vec::new();
                let mut probes = 0u64;
                for t in lo..hi {
                    let tup = &tuples[t * stride..(t + 1) * stride];
                    let key = match keys[0].probe_key(tup[keys[0].slot]) {
                        ProbeKey::Null => continue,
                        ProbeKey::NoMatch => {
                            probes += 1;
                            continue;
                        }
                        ProbeKey::Key(k) => k,
                    };
                    probes += 1;
                    let m = direct_lookup(direct, key);
                    if m != NONE_U32 {
                        out.extend_from_slice(tup);
                        out.push(m);
                    }
                }
                Ok((out, 0u64, probes))
            })?
        } else {
            // Hash kernel over build-space key codes. Unique steps keep
            // the single-slot accounting of the row unique kernel.
            ex.stats.hash_joins += 1;
            let mut map: HashMap<Vec<u64>, Vec<u32>> = HashMap::new();
            'build: for &r in &build.sel {
                let mut key = Vec::with_capacity(keys.len());
                for ka in &keys {
                    match ka.build_key(r) {
                        Some(c) => key.push(c),
                        None => continue 'build,
                    }
                }
                map.entry(key).or_default().push(r);
            }
            run_tasks(deg, nchunks, |i| {
                let lo = i * MORSEL_SIZE;
                let hi = ((i + 1) * MORSEL_SIZE).min(ntuples);
                let mut out = Vec::new();
                let mut hash_probes = 0u64;
                let mut probe_steps = 0u64;
                'probe: for t in lo..hi {
                    let tup = &tuples[t * stride..(t + 1) * stride];
                    let mut key = Vec::with_capacity(keys.len());
                    let mut dead = false;
                    for ka in &keys {
                        match ka.probe_key(tup[ka.slot]) {
                            ProbeKey::Null => continue 'probe,
                            ProbeKey::NoMatch => dead = true,
                            ProbeKey::Key(k) => key.push(k),
                        }
                    }
                    hash_probes += 1;
                    if dead {
                        probe_steps += 1;
                        continue;
                    }
                    match map.get(&key) {
                        Some(ms) => {
                            probe_steps += if unique { 1 } else { ms.len() as u64 + 1 };
                            for &m in ms {
                                out.extend_from_slice(tup);
                                out.push(m);
                            }
                        }
                        None => probe_steps += 1,
                    }
                }
                Ok((out, hash_probes, probe_steps))
            })?
        };
        ex.stats.vector_ops += nchunks as u64;
        if deg > 1 {
            ex.stats.morsels += nchunks as u64;
        }
        stride += 1;
        let mut joined = Vec::new();
        for (rows, hash_probes, probe_steps) in next {
            ex.stats.hash_probes += hash_probes;
            ex.stats.probe_steps += probe_steps;
            joined.extend(rows);
        }
        tuples = joined;
        ex.record(step.id, tuples.len() / stride);
    }

    // Projection over code tuples (still no materialization).
    let ntuples = tuples.len() / stride;
    ex.record(bp.project, ntuples);

    let mut bt = BlockTuples {
        ordered: bp.order.iter().map(|&t| tables[t]).collect(),
        proj,
        tuples,
        stride,
    };

    // Distinct on encoded keys, exact under `=̇` (see
    // [`BlockTuples::key_words`]). Blocks the optimizer proved
    // duplicate-free carry no distinct step and skip this entirely.
    if let Some(d) = bp.distinct {
        let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(ntuples);
        let mut kept: Vec<u32> = Vec::new();
        for t in 0..ntuples {
            ex.stats.hash_probes += 1;
            if seen.insert(bt.key_words(t, bt.proj.len())) {
                kept.extend_from_slice(bt.tup(t));
            }
        }
        ex.stats.vector_ops += ntuples.div_ceil(MORSEL_SIZE) as u64;
        bt.tuples = kept;
        ex.record(d.id, bt.len());
    }

    Ok(Some(bt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_database;

    fn store() -> (Database, ColumnStore) {
        let db = supplier_database().unwrap();
        let cs = ColumnStore::build(&db);
        (db, cs)
    }

    #[test]
    fn encoding_roundtrips_every_cell() {
        let (db, cs) = store();
        for schema in db.catalog().tables() {
            let tc = cs.table(&schema.name).expect("sample tables all encode");
            let rows = db.rows(&schema.name).unwrap();
            assert_eq!(tc.rows(), rows.len());
            for (r, row) in rows.iter().enumerate() {
                for (c, v) in row.iter().enumerate() {
                    assert_eq!(&tc.value_at(c, r), v, "{}[{r}][{c}]", schema.name);
                }
            }
        }
    }

    #[test]
    fn dictionaries_are_sorted_and_dense() {
        let (db, cs) = store();
        for schema in db.catalog().tables() {
            let tc = cs.table(&schema.name).unwrap();
            for c in 0..schema.arity() {
                if let ColumnData::Str { codes, nulls, dict } = tc.column(c) {
                    assert!(dict.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
                    for (r, &code) in codes.iter().enumerate() {
                        if !nulls.is_null(r) {
                            assert!((code as usize) < dict.len());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_table_and_all_null_column_encode() {
        let mut db = supplier_database().unwrap();
        db.run_script(
            "CREATE TABLE EMPTYT (A INTEGER, B VARCHAR);
             CREATE TABLE ALLN (A INTEGER, B VARCHAR);
             INSERT INTO ALLN VALUES (NULL, NULL), (NULL, NULL);",
        )
        .unwrap();
        let cs = ColumnStore::build(&db);
        let empty = cs.table(&"EMPTYT".into()).unwrap();
        assert_eq!(empty.rows(), 0);
        let alln = cs.table(&"ALLN".into()).unwrap();
        assert_eq!(alln.rows(), 2);
        match alln.column(1) {
            ColumnData::Str { dict, nulls, .. } => {
                assert!(dict.is_empty(), "all-NULL column has an empty dictionary");
                assert_eq!(nulls.count_nulls(), 2);
            }
            _ => panic!("B is a string column"),
        }
        assert_eq!(alln.value_at(0, 0), Value::Null);
        assert_eq!(alln.value_at(1, 1), Value::Null);
    }

    #[test]
    fn dict_limit_guard_leaves_table_unencoded() {
        let (db, _) = store();
        // SUPPLIER.SNAME has 5 distinct names; a limit of 2 must refuse
        // the table (u32 code-space guard path) while tables whose
        // string columns fit stay encoded.
        let cs = ColumnStore::build_with_dict_limit(&db, 2);
        assert!(cs.table(&"SUPPLIER".into()).is_none());
        let full = ColumnStore::build(&db);
        assert!(full.table(&"SUPPLIER".into()).is_some());
        assert_eq!(full.catalog_version(), db.version());
    }

    fn tiny_str_table() -> TableColumns {
        // Values: ["b", NULL, "d", "a", "d"] → dict [a, b, d].
        let mut nulls = NullBitmap::new();
        for is_null in [false, true, false, false, false] {
            nulls.push(is_null);
        }
        TableColumns {
            rows: 5,
            cols: vec![ColumnData::Str {
                codes: vec![1, 0, 2, 0, 2],
                nulls,
                dict: vec!["a".into(), "b".into(), "d".into()],
            }],
        }
    }

    #[test]
    fn string_predicates_compile_to_code_ranges() {
        use uniq_plan::AttrRef;
        let tc = tiny_str_table();
        let pred = |op: CmpOp, lit: &str| BoundExpr::Cmp {
            op,
            left: BScalar::Attr(AttrRef::local(0)),
            right: BScalar::Literal(Value::Str(lit.into())),
        };
        let rows_matching =
            |p: &Pred| -> Vec<usize> { (0..5).filter(|&r| eval_pred(p, &tc, r)).collect() };
        // "c" is absent from the dictionary: Eq matches nothing, Ne
        // matches every non-NULL row, ranges split around its position.
        let eq = compile_pred(&pred(CmpOp::Eq, "c"), &(0..1), &tc).unwrap();
        assert_eq!(rows_matching(&eq), Vec::<usize>::new());
        let ne = compile_pred(&pred(CmpOp::Ne, "c"), &(0..1), &tc).unwrap();
        assert_eq!(rows_matching(&ne), vec![0, 2, 3, 4]);
        let lt = compile_pred(&pred(CmpOp::Lt, "c"), &(0..1), &tc).unwrap();
        assert_eq!(rows_matching(&lt), vec![0, 3]);
        let ge = compile_pred(&pred(CmpOp::Ge, "c"), &(0..1), &tc).unwrap();
        assert_eq!(rows_matching(&ge), vec![2, 4]);
        // Present literal: all six operators, NULL row never qualifies.
        let le = compile_pred(&pred(CmpOp::Le, "b"), &(0..1), &tc).unwrap();
        assert_eq!(rows_matching(&le), vec![0, 3]);
        let gt = compile_pred(&pred(CmpOp::Gt, "b"), &(0..1), &tc).unwrap();
        assert_eq!(rows_matching(&gt), vec![2, 4]);
        let eq_b = compile_pred(&pred(CmpOp::Eq, "b"), &(0..1), &tc).unwrap();
        assert_eq!(rows_matching(&eq_b), vec![0]);
        let ne_b = compile_pred(&pred(CmpOp::Ne, "b"), &(0..1), &tc).unwrap();
        assert_eq!(rows_matching(&ne_b), vec![2, 3, 4]);
        // NULL literal compiles to the never-matching predicate.
        let never = compile_pred(
            &BoundExpr::Cmp {
                op: CmpOp::Eq,
                left: BScalar::Attr(AttrRef::local(0)),
                right: BScalar::Literal(Value::Null),
            },
            &(0..1),
            &tc,
        )
        .unwrap();
        assert_eq!(never, Pred::Never);
        assert_eq!(rows_matching(&never), Vec::<usize>::new());
    }

    #[test]
    fn filter_kernel_counts_chunks_not_rows() {
        let tc = tiny_str_table();
        let mut stats = ExecStats::new();
        let sel = filter_table(&tc, &[], 1, &mut stats).unwrap();
        assert_eq!(sel, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.vector_ops, 1, "one chunk, identity kernel");
        assert_eq!(stats.morsels, 0, "serial filter dispatches no morsels");
        assert_eq!(stats.rows_scanned, 0, "columnar scans count no rows");
    }

    #[test]
    fn translation_maps_shared_strings_only() {
        let probe = vec!["a".to_string(), "c".to_string(), "d".to_string()];
        let build = vec!["b".to_string(), "c".to_string()];
        assert_eq!(translation(&probe, &build), vec![NONE_U32, 1, NONE_U32]);
    }

    #[test]
    fn direct_index_int_guards_wide_spans() {
        let mut nulls = NullBitmap::new();
        nulls.push(false);
        nulls.push(false);
        let wide = ColumnData::Int {
            values: vec![0, i64::MAX / 2],
            nulls: nulls.clone(),
        };
        let key = KeyAt {
            slot: 0,
            probe: &wide,
            build: &wide,
            trans: None,
        };
        assert!(build_direct(&key, &[0, 1]).is_none(), "span too wide");
        let narrow = ColumnData::Int {
            values: vec![7, 9],
            nulls,
        };
        let key = KeyAt {
            slot: 0,
            probe: &narrow,
            build: &narrow,
            trans: None,
        };
        let d = build_direct(&key, &[0, 1]).unwrap();
        assert_eq!(direct_lookup(&d, 7), 0);
        assert_eq!(direct_lookup(&d, 8), NONE_U32);
        assert_eq!(direct_lookup(&d, 9), 1);
        assert_eq!(direct_lookup(&d, 100), NONE_U32, "outside span misses");
    }
}
