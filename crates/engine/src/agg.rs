//! Row-path aggregation: hash grouping, the key-elided one-pass, and
//! morsel-parallel partial aggregation.
//!
//! The binder lowers an aggregate query onto a `SELECT ALL` body whose
//! projection lays grouping columns first (positions `0 ..
//! group_count`) followed by the aggregate argument columns, so this
//! module only ever sees plain rows. Three execution shapes:
//!
//! * **Hash grouping** — one table probe per input row (`hash_probes`
//!   and `probe_steps` book one each, like the join kernels), groups
//!   kept in first-appearance order so output is deterministic. A
//!   global aggregate (no `GROUP BY`) folds into its single group
//!   without hashing, so the only hash work it can book is the
//!   distinct-set insert each un-elided `COUNT(DISTINCT)` argument
//!   pays — exactly the work the count-distinct elision removes.
//! * **Key-elided one-pass** — when the optimizer proved the group
//!   keys duplicate-free ([`BoundAgg::group_elided`]), every row is its
//!   own group: each row is initialized, updated and finalized locally,
//!   with *zero* hash operations. This is the gap experiment E23
//!   measures against the hash path.
//! * **Morsel-parallel partials** — rows are chunked into
//!   [`MORSEL_SIZE`] morsels, each worker aggregates its morsel into a
//!   partial table, and the partials merge serially in task order
//!   (every `AggState` merge is associative: counts add, distinct
//!   sets union, extrema fold). The elided one-pass parallelizes
//!   embarrassingly — no merge at all.
//!
//! Semantics (SQL): aggregates ignore `NULL` arguments; `COUNT(*)`
//! counts rows; `SUM`/`MIN`/`MAX`/`AVG` of no (non-null) rows is
//! `NULL` while `COUNT` is 0; `AVG` is the truncating integer mean;
//! grouping treats `NULL`s as equal (`=̇`, which is exactly the derived
//! `Eq` on [`Value`]); integer overflow wraps.

use crate::parallel::{run_tasks, MORSEL_SIZE};
use crate::stats::ExecStats;
use std::collections::{HashMap, HashSet};
use uniq_catalog::Row;
use uniq_plan::{BoundAgg, BoundAggItem};
use uniq_sql::AggFunc;
use uniq_types::{Result, Value};

/// Running state of one aggregate item over one group.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AggState {
    /// `COUNT(*)` / `COUNT(e)`: rows (with a non-null argument) seen.
    Count(i64),
    /// `COUNT(DISTINCT e)`: distinct non-null argument values seen.
    /// The whole point of the count-distinct elision is never to build
    /// this set when uniqueness already proves it redundant.
    CountDistinct(HashSet<Value>),
    /// `SUM(e)`: wrapping sum, `NULL` until a non-null argument arrives.
    Sum { sum: i64, seen: bool },
    /// `MIN(e)` under the non-null order (`NULL` arguments ignored).
    Min(Option<Value>),
    /// `MAX(e)` under the non-null order (`NULL` arguments ignored).
    Max(Option<Value>),
    /// `AVG(e)`: truncating integer mean of the non-null arguments.
    Avg { sum: i64, n: i64 },
    /// Placeholder for a grouping item (its value lives in the key).
    Group,
}

/// Fresh per-group states, one per output item (grouping items get the
/// inert [`AggState::Group`] placeholder so states stay index-aligned
/// with `agg.items`).
pub(crate) fn init_states(agg: &BoundAgg) -> Vec<AggState> {
    agg.items
        .iter()
        .map(|item| match item {
            BoundAggItem::Group { .. } => AggState::Group,
            BoundAggItem::Agg { func, distinct, .. } => match func {
                AggFunc::Count if *distinct => AggState::CountDistinct(HashSet::new()),
                AggFunc::Count => AggState::Count(0),
                AggFunc::Sum => AggState::Sum {
                    sum: 0,
                    seen: false,
                },
                AggFunc::Min => AggState::Min(None),
                AggFunc::Max => AggState::Max(None),
                AggFunc::Avg => AggState::Avg { sum: 0, n: 0 },
            },
        })
        .collect()
}

/// Fold one body row into the group's states. `get(p)` reads position
/// `p` of the body projection — a closure so the columnar path can
/// decode argument cells lazily instead of materializing whole rows.
///
/// Returns the number of distinct-set probes performed (one per
/// non-null `COUNT(DISTINCT)` argument), so callers can book the work
/// the count-distinct elision avoids.
pub(crate) fn update_states(
    states: &mut [AggState],
    agg: &BoundAgg,
    get: &mut dyn FnMut(usize) -> Value,
) -> Result<u64> {
    let mut set_probes = 0;
    for (st, item) in states.iter_mut().zip(&agg.items) {
        let BoundAggItem::Agg { arg, .. } = item else {
            continue;
        };
        let v = arg.map(&mut *get);
        match st {
            AggState::Group => {}
            AggState::Count(n) => match &v {
                Some(Value::Null) => {}
                _ => *n += 1,
            },
            AggState::CountDistinct(set) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        set_probes += 1;
                        set.insert(v);
                    }
                }
            }
            AggState::Sum { sum, seen } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        *sum = sum.wrapping_add(v.as_int()?);
                        *seen = true;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        fold_extremum(cur, v, true)?;
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        fold_extremum(cur, v, false)?;
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        *sum = sum.wrapping_add(v.as_int()?);
                        *n += 1;
                    }
                }
            }
        }
    }
    Ok(set_probes)
}

/// Merge another partial's states into this group's (associative and
/// commutative, so morsel partials may fold in any order).
pub(crate) fn merge_states(into: &mut [AggState], from: Vec<AggState>) -> Result<()> {
    for (dst, src) in into.iter_mut().zip(from) {
        match (dst, src) {
            (AggState::Group, AggState::Group) => {}
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.extend(b),
            (
                AggState::Sum { sum, seen },
                AggState::Sum {
                    sum: s2,
                    seen: seen2,
                },
            ) => {
                *sum = sum.wrapping_add(s2);
                *seen |= seen2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    fold_extremum(a, v, true)?;
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    fold_extremum(a, v, false)?;
                }
            }
            (AggState::Avg { sum, n }, AggState::Avg { sum: s2, n: n2 }) => {
                *sum = sum.wrapping_add(s2);
                *n += n2;
            }
            _ => unreachable!("partials initialized from the same BoundAgg"),
        }
    }
    Ok(())
}

/// Keep the smaller (`want_less`) or larger non-null value.
fn fold_extremum(cur: &mut Option<Value>, v: Value, want_less: bool) -> Result<()> {
    let replace = match cur.as_ref() {
        Some(c) => {
            let o = v.null_cmp(c)?;
            if want_less {
                o.is_lt()
            } else {
                o.is_gt()
            }
        }
        None => true,
    };
    if replace {
        *cur = Some(v);
    }
    Ok(())
}

/// Final value of one state.
pub(crate) fn finalize_state(st: AggState) -> Value {
    match st {
        AggState::Group => Value::Null,
        AggState::Count(n) => Value::Int(n),
        AggState::CountDistinct(set) => Value::Int(set.len() as i64),
        AggState::Sum { sum, seen } => {
            if seen {
                Value::Int(sum)
            } else {
                Value::Null
            }
        }
        AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        AggState::Avg { sum, n } => {
            if n > 0 {
                Value::Int(sum / n)
            } else {
                Value::Null
            }
        }
    }
}

/// One finished group → one output row, items in `SELECT`-list order:
/// grouping items read the key, aggregate items finalize their state.
fn output_row(agg: &BoundAgg, key: &[Value], states: Vec<AggState>) -> Row {
    agg.items
        .iter()
        .zip(states)
        .map(|(item, st)| match item {
            BoundAggItem::Group { pos, .. } => key[*pos].clone(),
            BoundAggItem::Agg { .. } => finalize_state(st),
        })
        .collect()
}

/// A partial aggregation table: groups in first-appearance order (the
/// index map makes probes O(1) while keeping output deterministic).
struct Partial {
    index: HashMap<Vec<Value>, usize>,
    groups: Vec<(Vec<Value>, Vec<AggState>)>,
    hash_probes: u64,
    probe_steps: u64,
}

impl Partial {
    fn new() -> Partial {
        Partial {
            index: HashMap::new(),
            groups: Vec::new(),
            hash_probes: 0,
            probe_steps: 0,
        }
    }

    fn absorb_row(&mut self, agg: &BoundAgg, row: &Row) -> Result<()> {
        let slot = if agg.group_count == 0 {
            // Global aggregate: one group, no key, nothing to hash.
            if self.groups.is_empty() {
                self.groups.push((Vec::new(), init_states(agg)));
            }
            0
        } else {
            let key: Vec<Value> = row[..agg.group_count].to_vec();
            self.hash_probes += 1;
            self.probe_steps += 1;
            match self.index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = self.groups.len();
                    self.index.insert(key.clone(), i);
                    self.groups.push((key, init_states(agg)));
                    i
                }
            }
        };
        let set_probes = update_states(&mut self.groups[slot].1, agg, &mut |p| row[p].clone())?;
        self.hash_probes += set_probes;
        self.probe_steps += set_probes;
        Ok(())
    }

    fn absorb_partial(&mut self, other: Partial) -> Result<()> {
        for (key, states) in other.groups {
            self.hash_probes += 1;
            self.probe_steps += 1;
            match self.index.get(&key) {
                Some(&i) => merge_states(&mut self.groups[i].1, states)?,
                None => {
                    let i = self.groups.len();
                    self.index.insert(key.clone(), i);
                    self.groups.push((key, states));
                }
            }
        }
        Ok(())
    }
}

/// Aggregate the body's rows. `deg > 1` runs morsel-parallel partial
/// aggregation; the proof-elided grouping takes the zero-hash one-pass.
pub(crate) fn aggregate_rows(
    agg: &BoundAgg,
    rows: Vec<Row>,
    deg: usize,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    stats.agg_rows += rows.len() as u64;

    // Key-elided one-pass: every row is its own group, no hash table.
    // (An un-elided `COUNT(DISTINCT)` item still books its set probes.)
    if agg.group_elided && agg.group_count > 0 {
        let one = |row: &Row| -> Result<(Row, u64)> {
            let mut states = init_states(agg);
            let set_probes = update_states(&mut states, agg, &mut |p| row[p].clone())?;
            Ok((output_row(agg, &row[..agg.group_count], states), set_probes))
        };
        let out: Vec<(Row, u64)> = if deg > 1 && rows.len() > MORSEL_SIZE {
            let nchunks = rows.len().div_ceil(MORSEL_SIZE);
            let parts = run_tasks(deg, nchunks, |i| {
                let lo = i * MORSEL_SIZE;
                let hi = ((i + 1) * MORSEL_SIZE).min(rows.len());
                rows[lo..hi]
                    .iter()
                    .map(one)
                    .collect::<Result<Vec<(Row, u64)>>>()
            })?;
            stats.morsels += nchunks as u64;
            parts.into_iter().flatten().collect()
        } else {
            rows.iter().map(one).collect::<Result<_>>()?
        };
        let set_probes: u64 = out.iter().map(|(_, p)| p).sum();
        stats.hash_probes += set_probes;
        stats.probe_steps += set_probes;
        return Ok(out.into_iter().map(|(row, _)| row).collect());
    }

    // Hash grouping, morsel-parallel partials when the degree allows.
    let mut table = if deg > 1 && rows.len() > MORSEL_SIZE {
        let nchunks = rows.len().div_ceil(MORSEL_SIZE);
        let parts = run_tasks(deg, nchunks, |i| {
            let lo = i * MORSEL_SIZE;
            let hi = ((i + 1) * MORSEL_SIZE).min(rows.len());
            let mut p = Partial::new();
            for row in &rows[lo..hi] {
                p.absorb_row(agg, row)?;
            }
            Ok(p)
        })?;
        stats.morsels += nchunks as u64;
        let mut table = Partial::new();
        for p in parts {
            let (hp, ps) = (p.hash_probes, p.probe_steps);
            table.absorb_partial(p)?;
            table.hash_probes += hp;
            table.probe_steps += ps;
        }
        table
    } else {
        let mut table = Partial::new();
        for row in &rows {
            table.absorb_row(agg, row)?;
        }
        table
    };
    // A global aggregate (no GROUP BY) yields its one group even over
    // empty input — `SELECT COUNT(*) FROM empty` is 0, not no rows.
    if agg.group_count == 0 && table.groups.is_empty() {
        table.groups.push((Vec::new(), init_states(agg)));
    }
    stats.hash_probes += table.hash_probes;
    stats.probe_steps += table.probe_steps;
    Ok(table
        .groups
        .into_iter()
        .map(|(key, states)| output_row(agg, &key, states))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_types::ColumnName;

    fn agg_of(group_count: usize, items: Vec<BoundAggItem>) -> BoundAgg {
        BoundAgg {
            group_count,
            items,
            group_elided: false,
            count_distinct_elided: false,
        }
    }

    fn item(func: AggFunc, distinct: bool, arg: Option<usize>) -> BoundAggItem {
        BoundAggItem::Agg {
            func,
            distinct,
            arg,
            name: ColumnName::from("A"),
        }
    }

    fn group(pos: usize) -> BoundAggItem {
        BoundAggItem::Group {
            pos,
            name: ColumnName::from("G"),
        }
    }

    fn int(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn global_aggregates_over_rows_and_empty_input() {
        let agg = agg_of(
            0,
            vec![
                item(AggFunc::Count, false, None),
                item(AggFunc::Count, false, Some(0)),
                item(AggFunc::Sum, false, Some(0)),
                item(AggFunc::Min, false, Some(0)),
                item(AggFunc::Max, false, Some(0)),
                item(AggFunc::Avg, false, Some(0)),
            ],
        );
        let rows = vec![vec![int(3)], vec![Value::Null], vec![int(8)]];
        let mut stats = ExecStats::new();
        let out = aggregate_rows(&agg, rows, 1, &mut stats).unwrap();
        // COUNT(*)=3 counts the NULL row; every other aggregate skips it.
        assert_eq!(
            out,
            vec![vec![int(3), int(2), int(11), int(3), int(8), int(5)]]
        );
        assert_eq!(stats.agg_rows, 3);
        assert_eq!(stats.hash_probes, 0, "the single global group never hashes");

        let empty = aggregate_rows(&agg, Vec::new(), 1, &mut ExecStats::new()).unwrap();
        assert_eq!(
            empty,
            vec![vec![
                int(0),
                int(0),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null
            ]],
            "global aggregate yields one group even on empty input"
        );
    }

    #[test]
    fn grouping_treats_nulls_as_equal_and_keeps_first_appearance_order() {
        let agg = agg_of(1, vec![group(0), item(AggFunc::Count, false, None)]);
        let rows = vec![
            vec![int(1), int(0)],
            vec![Value::Null, int(0)],
            vec![int(1), int(0)],
            vec![Value::Null, int(0)],
        ];
        let out = aggregate_rows(&agg, rows, 1, &mut ExecStats::new()).unwrap();
        assert_eq!(
            out,
            vec![vec![int(1), int(2)], vec![Value::Null, int(2)]],
            "NULL group keys coalesce; groups appear in input order"
        );
    }

    #[test]
    fn count_distinct_ignores_nulls_and_duplicates() {
        let agg = agg_of(
            0,
            vec![
                item(AggFunc::Count, true, Some(0)),
                item(AggFunc::Count, false, Some(0)),
            ],
        );
        let rows = vec![vec![int(5)], vec![int(5)], vec![Value::Null], vec![int(7)]];
        let out = aggregate_rows(&agg, rows, 1, &mut ExecStats::new()).unwrap();
        assert_eq!(out, vec![vec![int(2), int(3)]]);
    }

    #[test]
    fn elided_one_pass_matches_hash_grouping_with_zero_hash_ops() {
        // Group column is row-unique, so the elided path must agree.
        let rows: Vec<Row> = (0..10).map(|i| vec![int(i), int(i * 2)]).collect();
        let items = vec![
            group(0),
            item(AggFunc::Sum, false, Some(1)),
            item(AggFunc::Count, false, None),
        ];
        let hash = agg_of(1, items.clone());
        let mut elided = agg_of(1, items);
        elided.group_elided = true;

        let mut hs = ExecStats::new();
        let h = aggregate_rows(&hash, rows.clone(), 1, &mut hs).unwrap();
        let mut es = ExecStats::new();
        let e = aggregate_rows(&elided, rows, 1, &mut es).unwrap();
        assert_eq!(h, e);
        assert!(hs.hash_probes == 10 && hs.probe_steps == 10);
        assert_eq!(es.hash_probes, 0, "elided grouping performs no hash ops");
        assert_eq!(es.probe_steps, 0);
        assert_eq!(es.agg_rows, 10);
    }

    #[test]
    fn parallel_partials_agree_with_serial() {
        // Enough rows for several morsels; a low-cardinality group key
        // forces real cross-morsel merging of every state kind.
        let rows: Vec<Row> = (0..5000)
            .map(|i| vec![int(i % 7), int(i), int(i % 13)])
            .collect();
        let agg = agg_of(
            1,
            vec![
                group(0),
                item(AggFunc::Count, false, None),
                item(AggFunc::Count, true, Some(2)),
                item(AggFunc::Sum, false, Some(1)),
                item(AggFunc::Min, false, Some(1)),
                item(AggFunc::Max, false, Some(1)),
                item(AggFunc::Avg, false, Some(1)),
            ],
        );
        let serial = aggregate_rows(&agg, rows.clone(), 1, &mut ExecStats::new()).unwrap();
        let mut ps = ExecStats::new();
        let mut par = aggregate_rows(&agg, rows, 4, &mut ps).unwrap();
        assert!(ps.morsels >= 2, "parallel run dispatched morsels");
        // Partial merge order may permute groups; compare as sets.
        let mut s = serial.clone();
        let key = |r: &Row| format!("{r:?}");
        s.sort_by_key(&key);
        par.sort_by_key(&key);
        assert_eq!(s, par);
    }
}
