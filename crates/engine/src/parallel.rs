//! Morsel-driven intra-query parallelism.
//!
//! Scans are split into fixed-size *morsels* ([`MORSEL_SIZE`] rows)
//! claimed off a shared atomic cursor by a scoped worker pool
//! (`std::thread::scope` — no dependencies, no detached threads).
//! Equi-joins run as partitioned hash joins: both sides are partitioned
//! on the join-key hash, then each partition gets an independent
//! build+probe task. Duplicate elimination and set operations partition
//! on the *full row* hash — `Value`'s structural `Eq`/`Hash` coincides
//! with the paper's `=̇` (see [`crate::setops`]), so every copy of a
//! tuple lands in the same partition and each worker's local counts
//! (`min(j,k)`, `max(j−k,0)`, dedup) are globally correct with no
//! cross-thread merge.
//!
//! Two uniqueness-derived kernels ride on top:
//!
//! * when a join step's keys cover a candidate key of the build side
//!   (planner-proved via the PR 3 bounds, or re-derived here from the
//!   catalog on the static path), the partition task builds a
//!   *unique-key* table — one slot per key, no bucket chains — and each
//!   probe costs exactly one step instead of walking a chain;
//! * blocks the optimizer proved duplicate-free never reach the dedup
//!   operator at all (the rewrite removed it), so the parallel path
//!   inherits that saving for free.
//!
//! Each worker owns a serial [`Executor`] for predicate evaluation
//! (correlated subqueries stay single-threaded inside their worker) and
//! a private [`ExecStats`]; tallies are folded back with
//! [`ExecStats::merge`], which is associative, so counters are exact
//! regardless of how morsels were interleaved. Task results are gathered
//! in task-index order, making output order deterministic for a fixed
//! degree — tests still compare `ORDER`-free results as multisets, since
//! *different* degrees partition differently.

use crate::exec::{classify_step_conjuncts, Executor, StepConjuncts};
use crate::setops::{combine_setop, distinct};
use crate::stats::{DistinctMethod, ExecStats, JoinMethod};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use uniq_catalog::Row;
use uniq_plan::{BoundExpr, BoundSpec, FromTable};
use uniq_sql::SetOp;
use uniq_types::{Error, Result, Value};

/// Rows per scan morsel. Large enough that a morsel amortizes the
/// claim/dispatch overhead (one atomic increment plus one mutex store),
/// small enough that a filtered scan over a few hundred thousand rows
/// still yields hundreds of units for load balancing.
pub const MORSEL_SIZE: usize = 1024;

/// Run `count` tasks on up to `degree` scoped workers, gathering results
/// in task-index order (the deterministic-output guarantee). Workers
/// claim task indices off a shared atomic cursor; the first error aborts
/// the remaining tasks and is returned. Shared with the columnar kernels
/// in [`crate::columnar`], which hand out column-chunk morsels through
/// the same scheduler.
pub(crate) fn run_tasks<T, F>(degree: usize, count: usize, task: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let workers = degree.min(count).max(1);
    if workers <= 1 {
        return (0..count).map(task).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<Error>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                if failure.lock().is_ok_and(|f| f.is_some()) {
                    return;
                }
                match task(i) {
                    Ok(v) => *slots[i].lock().expect("result slot poisoned") = Some(v),
                    Err(e) => {
                        let mut f = failure.lock().expect("failure slot poisoned");
                        if f.is_none() {
                            *f = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().expect("failure slot poisoned") {
        return Err(e);
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .ok_or_else(|| Error::internal("parallel task produced no result"))
        })
        .collect()
}

/// Split owned rows into owned chunks of at most `size` rows, preserving
/// order.
fn own_chunks(rows: Vec<Row>, size: usize) -> Vec<Vec<Row>> {
    let size = size.max(1);
    let mut out = Vec::with_capacity(rows.len().div_ceil(size));
    let mut it = rows.into_iter();
    loop {
        let chunk: Vec<Row> = it.by_ref().take(size).collect();
        if chunk.is_empty() {
            return out;
        }
        out.push(chunk);
    }
}

/// Wrap owned partitions/chunks so each task can take sole ownership of
/// its slice without cloning (each index is taken exactly once).
fn cells(parts: Vec<Vec<Row>>) -> Vec<Mutex<Vec<Row>>> {
    parts.into_iter().map(Mutex::new).collect()
}

fn take_cell(cells: &[Mutex<Vec<Row>>], i: usize) -> Vec<Row> {
    std::mem::take(&mut *cells[i].lock().expect("partition cell poisoned"))
}

/// Hash of a whole row under `Value`'s structural `Hash` (which
/// coincides with `=̇`, so `=̇`-equal rows always share a partition).
fn row_hash(row: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    for v in row {
        v.hash(&mut h);
    }
    h.finish()
}

/// Partition owned rows into `parts` buckets by a key hash; rows whose
/// key is `None` (a NULL join key — never matches under `WHERE =`) are
/// dropped.
fn partition_rows(
    rows: Vec<Row>,
    parts: usize,
    key: impl Fn(&Row) -> Option<u64>,
) -> Vec<Vec<Row>> {
    let mut out: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
    for row in rows {
        if let Some(h) = key(&row) {
            out[(h % parts as u64) as usize].push(row);
        }
    }
    out
}

/// Morsel-parallel filtered scan of `table` into full-arity scratch
/// tuples (level 0 of a block pipeline).
pub(crate) fn par_scan(
    ex: &Executor<'_>,
    table: &FromTable,
    conjuncts: &[&BoundExpr],
    outer: &[Vec<Value>],
    arity: usize,
    degree: usize,
) -> Result<(Vec<Row>, ExecStats)> {
    let rows = ex.db.rows(&table.schema.name)?;
    let offset = table.offset;
    let chunks: Vec<&[Row]> = rows.chunks(MORSEL_SIZE).collect();
    let outputs = run_tasks(degree, chunks.len(), |i| {
        let mut w = ex.serial_worker();
        let mut scratch = vec![Value::Null; arity];
        let mut out = Vec::new();
        'rows: for row in chunks[i] {
            w.stats.rows_scanned += 1;
            scratch[offset..offset + row.len()].clone_from_slice(row);
            for c in conjuncts {
                if !w.eval(c, outer, &scratch)?.false_interpreted() {
                    continue 'rows;
                }
            }
            out.push(scratch.clone());
        }
        Ok((out, w.stats))
    })?;
    let mut stats = ExecStats::new();
    stats.morsels += outputs.len() as u64;
    let mut all = Vec::new();
    for (rows, s) in outputs {
        stats.merge(&s);
        all.extend(rows);
    }
    Ok((all, stats))
}

/// Do the step's equality keys cover a candidate key of the incoming
/// table? (The static-path re-derivation of what the cost-based planner
/// proves from its cardinality bounds.)
fn key_covers_candidate(
    table: &FromTable,
    join_keys: &[(usize, usize)],
    range: &std::ops::Range<usize>,
) -> bool {
    let cols: Vec<usize> = join_keys
        .iter()
        .map(|&(_, new)| new - range.start)
        .collect();
    table
        .schema
        .candidate_keys()
        .any(|k| k.columns.iter().all(|c| cols.contains(c)))
}

/// One partitioned-hash-join step: radix-partition the (parallel,
/// filtered) build side and the probe partials on the join-key hash,
/// then run one independent build+probe task per partition. With a
/// key-covered build side (per `unique_hint`, or re-derived from the
/// catalog when the hint is absent) each partition uses the unique-key
/// kernel: one slot per key, probe costs exactly one step. Residual
/// conjuncts are filtered morsel-parallel afterwards.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_hash_step(
    ex: &Executor<'_>,
    table: &FromTable,
    outer: &[Vec<Value>],
    partials: Vec<Row>,
    conjuncts: &[&BoundExpr],
    arity: usize,
    is_placed: &dyn Fn(usize) -> bool,
    degree: usize,
    unique_hint: Option<bool>,
) -> Result<(Vec<Row>, ExecStats)> {
    let range = table.attr_range();
    let StepConjuncts {
        self_conj,
        join_keys,
        residual,
    } = classify_step_conjuncts(conjuncts, &range, is_placed);
    let mut stats = ExecStats::new();

    // Build side: morsel-parallel filtered scan keeping raw table rows.
    let rows = ex.db.rows(&table.schema.name)?;
    let chunks: Vec<&[Row]> = rows.chunks(MORSEL_SIZE).collect();
    let built = run_tasks(degree, chunks.len(), |i| {
        let mut w = ex.serial_worker();
        let mut scratch = vec![Value::Null; arity];
        let mut out = Vec::new();
        'rows: for row in chunks[i] {
            w.stats.rows_scanned += 1;
            scratch[range.start..range.end].clone_from_slice(row);
            for c in &self_conj {
                if !w.eval(c, outer, &scratch)?.false_interpreted() {
                    continue 'rows;
                }
            }
            out.push(row.clone());
        }
        Ok((out, w.stats))
    })?;
    stats.morsels += built.len() as u64;
    let mut build: Vec<Row> = Vec::new();
    for (rows, s) in built {
        stats.merge(&s);
        build.extend(rows);
    }

    let mut next: Vec<Row>;
    if join_keys.is_empty() {
        // Cartesian with the build side, morsel-parallel over partials.
        let p_cells = cells(own_chunks(partials, MORSEL_SIZE));
        stats.morsels += p_cells.len() as u64;
        let outputs = run_tasks(degree, p_cells.len(), |i| {
            let mut out = Vec::new();
            for partial in take_cell(&p_cells, i) {
                for row in &build {
                    let mut tuple = partial.clone();
                    tuple[range.start..range.end].clone_from_slice(row);
                    out.push(tuple);
                }
            }
            Ok(out)
        })?;
        next = outputs.into_iter().flatten().collect();
    } else {
        stats.hash_joins += 1;
        let unique = ex.opts.unique_kernels
            && unique_hint.unwrap_or_else(|| key_covers_candidate(table, &join_keys, &range));
        let build_hash = |row: &Row| -> Option<u64> {
            let mut h = DefaultHasher::new();
            for &(_, new_attr) in &join_keys {
                let v = &row[new_attr - range.start];
                if v.is_null() {
                    return None;
                }
                v.hash(&mut h);
            }
            Some(h.finish())
        };
        let probe_hash = |tuple: &Row| -> Option<u64> {
            let mut h = DefaultHasher::new();
            for &(built_attr, _) in &join_keys {
                let v = &tuple[built_attr];
                if v.is_null() {
                    return None;
                }
                v.hash(&mut h);
            }
            Some(h.finish())
        };
        let build_cells = cells(partition_rows(build, degree, build_hash));
        let probe_cells = cells(partition_rows(partials, degree, probe_hash));
        stats.morsels += degree as u64;
        let outputs = run_tasks(degree, degree, |p| {
            let mut local = ExecStats::new();
            let build = take_cell(&build_cells, p);
            let probes = take_cell(&probe_cells, p);
            let build_key = |row: &Row| -> Vec<Value> {
                join_keys
                    .iter()
                    .map(|&(_, new)| row[new - range.start].clone())
                    .collect()
            };
            let probe_key = |tuple: &Row| -> Vec<Value> {
                join_keys
                    .iter()
                    .map(|&(built, _)| tuple[built].clone())
                    .collect()
            };
            let mut out = Vec::new();
            if unique {
                // Unique-key kernel: at most one build row per key
                // (candidate-key coverage), so one slot, no chain, and
                // every probe costs exactly one step.
                let mut map: HashMap<Vec<Value>, usize> = HashMap::with_capacity(build.len());
                for (i, row) in build.iter().enumerate() {
                    let displaced = map.insert(build_key(row), i);
                    debug_assert!(displaced.is_none(), "unique-key kernel on a duplicated key");
                }
                for partial in probes {
                    local.hash_probes += 1;
                    local.probe_steps += 1;
                    if let Some(&i) = map.get(&probe_key(&partial)) {
                        let mut tuple = partial;
                        tuple[range.start..range.end].clone_from_slice(&build[i]);
                        out.push(tuple);
                    }
                }
            } else {
                let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, row) in build.iter().enumerate() {
                    map.entry(build_key(row)).or_default().push(i);
                }
                for partial in probes {
                    local.hash_probes += 1;
                    match map.get(&probe_key(&partial)) {
                        Some(matches) => {
                            // Chained bucket: one step per entry plus
                            // the end-of-chain check.
                            local.probe_steps += matches.len() as u64 + 1;
                            for &i in matches {
                                let mut tuple = partial.clone();
                                tuple[range.start..range.end].clone_from_slice(&build[i]);
                                out.push(tuple);
                            }
                        }
                        None => local.probe_steps += 1,
                    }
                }
            }
            Ok((out, local))
        })?;
        next = Vec::new();
        for (rows, s) in outputs {
            stats.merge(&s);
            next.extend(rows);
        }
    }

    // Residual conjuncts, morsel-parallel over the joined tuples.
    if !residual.is_empty() {
        let cells_in = cells(own_chunks(next, MORSEL_SIZE));
        stats.morsels += cells_in.len() as u64;
        let outputs = run_tasks(degree, cells_in.len(), |i| {
            let mut w = ex.serial_worker();
            let mut out = Vec::new();
            'tuples: for tuple in take_cell(&cells_in, i) {
                for c in &residual {
                    if !w.eval(c, outer, &tuple)?.false_interpreted() {
                        continue 'tuples;
                    }
                }
                out.push(tuple);
            }
            Ok((out, w.stats))
        })?;
        next = Vec::new();
        for (rows, s) in outputs {
            stats.merge(&s);
            next.extend(rows);
        }
    }
    Ok((next, stats))
}

/// One parallel nested-loop step: partials are chunked (smaller chunks
/// the bigger the inner table, so each task stays near one morsel of
/// scans) and each worker re-scans the table per partial.
pub(crate) fn par_nl_step(
    ex: &Executor<'_>,
    table: &FromTable,
    outer: &[Vec<Value>],
    partials: Vec<Row>,
    conjuncts: &[&BoundExpr],
    degree: usize,
) -> Result<(Vec<Row>, ExecStats)> {
    let rows = ex.db.rows(&table.schema.name)?;
    let range = table.attr_range();
    let chunk = (MORSEL_SIZE / rows.len().max(1)).max(1);
    let p_cells = cells(own_chunks(partials, chunk));
    let outputs = run_tasks(degree, p_cells.len(), |i| {
        let mut w = ex.serial_worker();
        let mut out = Vec::new();
        for partial in take_cell(&p_cells, i) {
            'rows: for row in rows {
                w.stats.rows_scanned += 1;
                let mut tuple = partial.clone();
                tuple[range.start..range.end].clone_from_slice(row);
                for c in conjuncts {
                    if !w.eval(c, outer, &tuple)?.false_interpreted() {
                        continue 'rows;
                    }
                }
                out.push(tuple);
            }
        }
        Ok((out, w.stats))
    })?;
    let mut stats = ExecStats::new();
    stats.morsels += outputs.len() as u64;
    let mut all = Vec::new();
    for (rows, s) in outputs {
        stats.merge(&s);
        all.extend(rows);
    }
    Ok((all, stats))
}

/// Execute a block's pipeline morsel-parallel under the session-static
/// options (the cost-based path carries per-step degrees in its
/// [`uniq_cost::BlockPlan`] instead).
pub(crate) fn block_rows_static(
    ex: &mut Executor<'_>,
    spec: &BoundSpec,
    outer: &[Vec<Value>],
    degree: usize,
) -> Result<Vec<Row>> {
    let widths = Executor::prefix_widths(spec);
    let levels = Executor::assign_conjuncts(spec, &widths);
    let arity = spec.product_arity();
    let (mut partials, s) = par_scan(ex, &spec.from[0], &levels[0], outer, arity, degree)?;
    ex.stats.merge(&s);
    for (level, table) in spec.from.iter().enumerate().skip(1) {
        let range = table.attr_range();
        let (next, s) = if ex.opts.join == JoinMethod::Hash {
            par_hash_step(
                ex,
                table,
                outer,
                partials,
                &levels[level],
                arity,
                &|idx| idx < range.start,
                degree,
                None,
            )?
        } else {
            par_nl_step(ex, table, outer, partials, &levels[level], degree)?
        };
        ex.stats.merge(&s);
        partials = next;
    }
    Ok(partials)
}

/// Partition-local duplicate elimination: partition on the full-row
/// hash (all `=̇`-equal copies share a partition), dedup each partition
/// independently, concatenate — no cross-thread merge needed.
pub(crate) fn par_distinct(
    rows: Vec<Row>,
    method: DistinctMethod,
    degree: usize,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    if degree <= 1 {
        return distinct(rows, method, stats);
    }
    let parts = cells(partition_rows(rows, degree, |r| Some(row_hash(r))));
    stats.morsels += parts.len() as u64;
    let outputs = run_tasks(degree, parts.len(), |p| {
        let mut local = ExecStats::new();
        let out = distinct(take_cell(&parts, p), method, &mut local)?;
        Ok((out, local))
    })?;
    let mut all = Vec::new();
    for (rows, s) in outputs {
        stats.merge(&s);
        all.extend(rows);
    }
    Ok(all)
}

/// Partition-local set operation: both inputs partition on the full-row
/// hash, so each partition holds *all* copies of every tuple assigned to
/// it and the per-partition multiplicity counts (`min(j,k)` for
/// `INTERSECT ALL`, `max(j−k,0)` for `EXCEPT ALL`, …) are globally
/// correct. `UNION ALL` is pure concatenation and stays serial.
pub(crate) fn par_setop(
    op: SetOp,
    all: bool,
    left: Vec<Row>,
    right: Vec<Row>,
    method: DistinctMethod,
    degree: usize,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    if degree <= 1 || (op == SetOp::Union && all) {
        return combine_setop(op, all, left, right, method, stats);
    }
    let l_parts = cells(partition_rows(left, degree, |r| Some(row_hash(r))));
    let r_parts = cells(partition_rows(right, degree, |r| Some(row_hash(r))));
    stats.morsels += degree as u64;
    let outputs = run_tasks(degree, degree, |p| {
        let mut local = ExecStats::new();
        let out = combine_setop(
            op,
            all,
            take_cell(&l_parts, p),
            take_cell(&r_parts, p),
            method,
            &mut local,
        )?;
        Ok((out, local))
    })?;
    let mut all_rows = Vec::new();
    for (rows, s) in outputs {
        stats.merge(&s);
        all_rows.extend(rows);
    }
    Ok(all_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_rows(vals: &[i64]) -> Vec<Row> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }

    fn counts(rows: &[Row]) -> HashMap<Row, usize> {
        let mut m = HashMap::new();
        for r in rows {
            *m.entry(r.clone()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn run_tasks_preserves_index_order() {
        let out = run_tasks(4, 100, |i| Ok(i * 2)).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_tasks_propagates_the_first_error() {
        let r: Result<Vec<()>> = run_tasks(3, 50, |i| {
            if i == 7 {
                Err(Error::internal("boom"))
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn run_tasks_serial_fallback_handles_empty_and_single() {
        assert_eq!(run_tasks(8, 0, Ok).unwrap(), Vec::<usize>::new());
        assert_eq!(run_tasks(1, 3, Ok).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn own_chunks_covers_all_rows_in_order() {
        let rows = int_rows(&(0..10).collect::<Vec<_>>());
        let chunks = own_chunks(rows.clone(), 3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().flatten().cloned().collect::<Vec<_>>(), rows);
        assert!(own_chunks(Vec::new(), 3).is_empty());
    }

    #[test]
    fn partitioning_keeps_equal_rows_together() {
        let rows = int_rows(&[1, 2, 3, 1, 2, 1]);
        let parts = partition_rows(rows, 4, |r| Some(row_hash(r)));
        for part in &parts {
            // Every copy of a value lands in exactly one partition.
            for row in part {
                assert!(!parts
                    .iter()
                    .filter(|p| !std::ptr::eq(*p, part))
                    .any(|p| p.contains(row)));
            }
        }
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 6);
    }

    #[test]
    fn par_distinct_agrees_with_serial_for_every_degree() {
        let rows = int_rows(&[5, 1, 5, 2, 1, 5, 9, 2, 2]);
        let mut serial_stats = ExecStats::new();
        let expected = distinct(rows.clone(), DistinctMethod::Sort, &mut serial_stats).unwrap();
        for degree in 1..=8 {
            for method in [DistinctMethod::Sort, DistinctMethod::Hash] {
                let mut stats = ExecStats::new();
                let got = par_distinct(rows.clone(), method, degree, &mut stats).unwrap();
                assert_eq!(counts(&got), counts(&expected), "deg={degree} {method:?}");
            }
        }
    }

    #[test]
    fn par_setop_counts_match_serial_multiplicities() {
        let l = int_rows(&[1, 1, 1, 2, 3, 3]);
        let r = int_rows(&[1, 2, 2, 3]);
        for (op, all) in [
            (SetOp::Intersect, true),
            (SetOp::Intersect, false),
            (SetOp::Except, true),
            (SetOp::Except, false),
            (SetOp::Union, true),
            (SetOp::Union, false),
        ] {
            let mut s = ExecStats::new();
            let expected =
                combine_setop(op, all, l.clone(), r.clone(), DistinctMethod::Sort, &mut s).unwrap();
            for degree in 2..=5 {
                let mut s = ExecStats::new();
                let got = par_setop(
                    op,
                    all,
                    l.clone(),
                    r.clone(),
                    DistinctMethod::Sort,
                    degree,
                    &mut s,
                )
                .unwrap();
                assert_eq!(counts(&got), counts(&expected), "{op:?} all={all}");
            }
        }
    }

    #[test]
    fn null_rows_share_a_partition_with_each_other() {
        // `=̇` treats NULLs as equal, so structural hashing must too.
        let rows = [
            vec![Value::Null, Value::Int(1)],
            vec![Value::Null, Value::Int(1)],
        ];
        assert_eq!(row_hash(&rows[0]), row_hash(&rows[1]));
    }
}
