//! Duplicate elimination and set operations under the `=̇` comparison.
//!
//! All operators here use the *null-aware* tuple equivalence of the
//! paper's equation (1): two tuples are equal iff every attribute pair is
//! `null_eq`-equivalent (`NULL =̇ NULL` is true). The default strategy is
//! the sort-based one the paper attributes to "most relational query
//! optimizers" (§5.3): sort each input counting comparisons, then walk
//! runs. `INTERSECT ALL` emits `min(j,k)` copies of each tuple, `EXCEPT
//! ALL` emits `max(j−k, 0)`, per SQL2.
//!
//! The hash path relies on `Value`'s structural `Eq`/`Hash` coinciding
//! with `=̇` (both treat two `NULL`s as equal and compare payloads
//! otherwise), which is verified by tests here and property tests in the
//! integration suite.

use crate::stats::{DistinctMethod, ExecStats};
use std::collections::{HashMap, HashSet};
use uniq_catalog::Row;
use uniq_sql::SetOp;
use uniq_types::{Result, Value};

/// Sort rows in `Value`'s canonical total order (`NULL` first, then by
/// payload — it refines `null_cmp` and its `Equal` coincides with `=̇`),
/// counting comparisons.
pub fn sort_rows(rows: &mut [Row], stats: &mut ExecStats) {
    stats.sorts += 1;
    stats.rows_sorted += rows.len() as u64;
    let mut comparisons = 0u64;
    rows.sort_by(|a, b| {
        comparisons += 1;
        a.cmp(b)
    });
    stats.sort_comparisons += comparisons;
}

/// Eliminate duplicate rows under `=̇`.
pub fn distinct(rows: Vec<Row>, method: DistinctMethod, stats: &mut ExecStats) -> Result<Vec<Row>> {
    match method {
        DistinctMethod::Sort => {
            let mut rows = rows;
            sort_rows(&mut rows, stats);
            rows.dedup(); // structural Eq coincides with =̇
            Ok(rows)
        }
        DistinctMethod::Hash => {
            let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
            let mut out = Vec::new();
            for row in rows {
                stats.hash_probes += 1;
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

/// Apply a set operation to two union-compatible results.
pub fn combine_setop(
    op: SetOp,
    all: bool,
    left: Vec<Row>,
    right: Vec<Row>,
    method: DistinctMethod,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    match (op, all) {
        (SetOp::Union, true) => {
            let mut out = left;
            out.extend(right);
            Ok(out)
        }
        (SetOp::Union, false) => {
            let mut out = left;
            out.extend(right);
            distinct(out, method, stats)
        }
        _ => match method {
            DistinctMethod::Sort => Ok(sort_merge(op, all, left, right, stats)),
            DistinctMethod::Hash => Ok(hash_counting(op, all, left, right, stats)),
        },
    }
}

/// How many copies of a tuple appear in the result given its
/// multiplicities `j` (left) and `k` (right)? (Shared with the
/// incremental view maintenance operators in [`crate::ivm`], which
/// difference this function across a delta to get signed view updates.)
pub(crate) fn output_count(op: SetOp, all: bool, j: usize, k: usize) -> usize {
    match (op, all) {
        // SQL2 §2.2: INTERSECT ALL → min, EXCEPT ALL → max(j − k, 0).
        (SetOp::Intersect, true) => j.min(k),
        (SetOp::Intersect, false) => usize::from(j > 0 && k > 0),
        (SetOp::Except, true) => j.saturating_sub(k),
        (SetOp::Except, false) => usize::from(j > 0 && k == 0),
        (SetOp::Union, true) => j + k,
        (SetOp::Union, false) => usize::from(j + k > 0),
    }
}

fn sort_merge(
    op: SetOp,
    all: bool,
    mut left: Vec<Row>,
    mut right: Vec<Row>,
    stats: &mut ExecStats,
) -> Vec<Row> {
    sort_rows(&mut left, stats);
    sort_rows(&mut right, stats);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() || j < right.len() {
        // Current run's representative: the smaller head.
        let take_left = match (left.get(i), right.get(j)) {
            (Some(l), Some(r)) => {
                stats.sort_comparisons += 1;
                l.cmp(r) != std::cmp::Ordering::Greater
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        let rep: Row = if take_left {
            left[i].clone()
        } else {
            right[j].clone()
        };
        let mut jl = 0usize;
        while i < left.len() && left[i] == rep {
            i += 1;
            jl += 1;
        }
        let mut kr = 0usize;
        while j < right.len() && right[j] == rep {
            j += 1;
            kr += 1;
        }
        for _ in 0..output_count(op, all, jl, kr) {
            out.push(rep.clone());
        }
    }
    out
}

fn hash_counting(
    op: SetOp,
    all: bool,
    left: Vec<Row>,
    right: Vec<Row>,
    stats: &mut ExecStats,
) -> Vec<Row> {
    // Structural Eq/Hash on Value coincides with =̇ (see module docs).
    let mut counts: HashMap<Row, (usize, usize)> = HashMap::new();
    let mut order: Vec<Row> = Vec::new();
    for row in left {
        stats.hash_probes += 1;
        let e = counts.entry(row.clone()).or_insert_with(|| {
            order.push(row);
            (0, 0)
        });
        e.0 += 1;
    }
    for row in right {
        stats.hash_probes += 1;
        let e = counts.entry(row.clone()).or_insert_with(|| {
            order.push(row);
            (0, 0)
        });
        e.1 += 1;
    }
    let mut out = Vec::new();
    for rep in order {
        let (j, k) = counts[&rep];
        for _ in 0..output_count(op, all, j, k) {
            out.push(rep.clone());
        }
    }
    out
}

/// Structural equality on `Value` must coincide with `=̇` for the hash
/// paths to be correct; exposed for the property-test suite.
pub fn structural_eq_matches_null_eq(a: &Value, b: &Value) -> bool {
    match a.null_eq(b) {
        Ok(expected) => (a == b) == expected,
        Err(_) => true, // cross-type comparisons never reach hash paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[Option<i64>]) -> Vec<Row> {
        vals.iter()
            .map(|v| vec![v.map(Value::Int).unwrap_or(Value::Null)])
            .collect()
    }

    fn counts(rows: &[Row]) -> HashMap<Row, usize> {
        let mut m = HashMap::new();
        for r in rows {
            *m.entry(r.clone()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn intersect_all_is_min_count() {
        let l = rows(&[Some(1), Some(1), Some(1), Some(2)]);
        let r = rows(&[Some(1), Some(1), Some(3)]);
        let mut stats = ExecStats::new();
        let out = combine_setop(
            SetOp::Intersect,
            true,
            l,
            r,
            DistinctMethod::Sort,
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.len(), 2); // min(3,2) copies of 1
        assert!(out.iter().all(|r| r[0] == Value::Int(1)));
    }

    #[test]
    fn except_all_is_saturating_difference() {
        let l = rows(&[Some(1), Some(1), Some(1), Some(2)]);
        let r = rows(&[Some(1), Some(2), Some(2)]);
        let mut stats = ExecStats::new();
        let out =
            combine_setop(SetOp::Except, true, l, r, DistinctMethod::Sort, &mut stats).unwrap();
        // 1: max(3-1,0)=2 copies; 2: max(1-2,0)=0.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r[0] == Value::Int(1)));
    }

    #[test]
    fn distinct_setops_ignore_multiplicity() {
        let l = rows(&[Some(1), Some(1), Some(2), Some(4)]);
        let r = rows(&[Some(1), Some(2), Some(2), Some(3)]);
        let mut stats = ExecStats::new();
        let inter = combine_setop(
            SetOp::Intersect,
            false,
            l.clone(),
            r.clone(),
            DistinctMethod::Sort,
            &mut stats,
        )
        .unwrap();
        assert_eq!(counts(&inter).len(), 2); // {1, 2}, one copy each
        assert!(inter.iter().all(|r| counts(&inter)[r] == 1));
        let except =
            combine_setop(SetOp::Except, false, l, r, DistinctMethod::Sort, &mut stats).unwrap();
        assert_eq!(except, rows(&[Some(4)]));
    }

    #[test]
    fn nulls_are_equal_in_setops() {
        // {NULL, NULL, 1} INTERSECT ALL {NULL} = {NULL} (min(2,1)=1).
        let l = rows(&[None, None, Some(1)]);
        let r = rows(&[None]);
        let mut stats = ExecStats::new();
        let out = combine_setop(
            SetOp::Intersect,
            true,
            l,
            r,
            DistinctMethod::Sort,
            &mut stats,
        )
        .unwrap();
        assert_eq!(out, rows(&[None]));
    }

    #[test]
    fn sort_and_hash_methods_agree() {
        let l = rows(&[None, Some(1), Some(1), Some(2), None, Some(5)]);
        let r = rows(&[Some(1), None, None, Some(2), Some(2)]);
        for (op, all) in [
            (SetOp::Intersect, true),
            (SetOp::Intersect, false),
            (SetOp::Except, true),
            (SetOp::Except, false),
            (SetOp::Union, false),
        ] {
            let mut s1 = ExecStats::new();
            let mut s2 = ExecStats::new();
            let a = combine_setop(op, all, l.clone(), r.clone(), DistinctMethod::Sort, &mut s1)
                .unwrap();
            let b = combine_setop(op, all, l.clone(), r.clone(), DistinctMethod::Hash, &mut s2)
                .unwrap();
            assert_eq!(counts(&a), counts(&b), "{op:?} all={all}");
        }
    }

    #[test]
    fn union_all_concatenates() {
        let l = rows(&[Some(1)]);
        let r = rows(&[Some(1), Some(2)]);
        let mut stats = ExecStats::new();
        let out =
            combine_setop(SetOp::Union, true, l, r, DistinctMethod::Sort, &mut stats).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn distinct_methods_agree_and_count_work() {
        let input = rows(&[Some(3), None, Some(3), None, Some(1)]);
        let mut s1 = ExecStats::new();
        let mut s2 = ExecStats::new();
        let a = distinct(input.clone(), DistinctMethod::Sort, &mut s1).unwrap();
        let b = distinct(input, DistinctMethod::Hash, &mut s2).unwrap();
        assert_eq!(counts(&a), counts(&b));
        assert_eq!(a.len(), 3);
        assert!(s1.sort_comparisons > 0);
        assert_eq!(s1.sorts, 1);
        assert_eq!(s2.hash_probes, 5);
    }

    #[test]
    fn structural_eq_is_null_eq() {
        let vals = [Value::Null, Value::Int(1), Value::Int(2), Value::str("x")];
        for a in &vals {
            for b in &vals {
                assert!(structural_eq_matches_null_eq(a, b), "{a} vs {b}");
            }
        }
    }
}
