//! Incremental view maintenance over MVCC snapshots — the paper's
//! uniqueness analysis cashed in as an *update-time* optimization.
//!
//! A subscribed query is kept materialized between snapshots. When the
//! store publishes a new head, [`MaterializedView::maintain`] extracts
//! per-table insert deltas ([`Database::table_delta`]: untouched tables
//! cost one pointer comparison) and evaluates only the *delta* of the
//! query — the telescoping sum
//!
//! ```text
//! ΔQ = Σᵢ Q(T₁ⁿᵉʷ, …, Tᵢ₋₁ⁿᵉʷ, ΔTᵢ, Tᵢ₊₁ᵒˡᵈ, …, Tₙᵒˡᵈ)
//! ```
//!
//! so per-write work scales with `|Δ|`, not table size. Three tiers,
//! in decreasing strength of what the catalog lets us prove:
//!
//! * **Set** (refcount-free fast path): licensed only when Algorithm 1
//!   (`unique_projection`) *and* the U-semiring checker
//!   ([`uniq_proof::check_equiv`]) certify the block duplicate-free.
//!   With every result multiplicity 0/1, the state is a plain
//!   [`HashSet`] — no reference counts — and each delta derivation is
//!   a genuinely new view row. The [`ProofStatus`] that granted the
//!   license is recorded on the view.
//! * **Counting** (honest fallback): subquery-free blocks and set
//!   operations keep signed multiplicity maps per node;
//!   `INTERSECT`/`EXCEPT`/`UNION` deltas difference the SQL2
//!   `output_count` across the child update, which is how an
//!   insert-only base can still *delete* view rows under `EXCEPT`.
//! * **Recompute**: anything with subqueries (possibly non-monotone)
//!   re-runs the query and diffs multisets — correct by construction,
//!   with the full cost booked to the view's counters.
//!
//! License-not-promise: the tier is chosen at subscribe time but
//! re-verified on every round — a catalog version change (DDL,
//! `TRUNCATE`) makes `maintain` demand a rebuild instead of trusting
//! the stale proof, and key-probe shortcuts consult the *live*
//! snapshot's catalog exactly like the executor's `index_fresh` check.

use crate::exec::{equi_join_key, ExecOptions, Executor};
use crate::setops::output_count;
use crate::stats::ExecStats;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use uniq_catalog::{Database, Row};
use uniq_core::analysis::unique_projection;
use uniq_plan::{BoundExpr, BoundOutput, BoundQuery, BoundSpec, HostVars};
use uniq_proof::{check_equiv, ProofStatus};
use uniq_sql::{Distinct, SetOp};
use uniq_types::{ColumnName, Error, Result, TableName, Value};

/// One maintenance round's net effect on a view, rows sorted in
/// `Value`'s canonical order so pushed frames are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewDelta {
    /// Rows that entered the view (with multiplicity, for `ALL` views).
    pub inserted: Vec<Row>,
    /// Rows that left the view — non-empty only for `EXCEPT` shapes
    /// and subquery fallbacks; insert-only bases cannot shrink a
    /// monotone query.
    pub deleted: Vec<Row>,
}

impl ViewDelta {
    /// No net change?
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Total rows changed (insertions plus deletions).
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }
}

/// Which maintenance tier a view runs on (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Refcount-free `HashSet` state; requires the 0/1-multiplicity
    /// license from Algorithm 1 + the proof checker.
    Set,
    /// Signed multiplicity maps per query node.
    Counting,
    /// Full re-evaluation + multiset diff.
    Recompute,
}

impl MaintenanceMode {
    /// Lowercase tag for wire frames and EXPLAIN.
    pub fn tag(&self) -> &'static str {
        match self {
            MaintenanceMode::Set => "set",
            MaintenanceMode::Counting => "counting",
            MaintenanceMode::Recompute => "recompute",
        }
    }
}

/// What [`MaterializedView::maintain`] decided about one publish.
#[derive(Debug)]
pub enum MaintainOutcome {
    /// The head is the view's base (or shares every table): no work.
    Unchanged,
    /// Delta maintenance ran; the delta may still be empty (filtered
    /// inserts). `work` is this round's cost alone.
    Delta {
        /// Net view change.
        delta: ViewDelta,
        /// Counters for this round only (also merged into the view).
        work: ExecStats,
    },
    /// The catalog changed under the view — the license and the bound
    /// tree are stale. The owner must re-bind, re-license and rebuild.
    NeedsRebuild,
}

/// The per-node incremental state of a counting-tier view.
#[derive(Debug)]
enum NodeState {
    /// A block: multiset of *pre-distinct* projected rows. The
    /// node's output applies the block's own `DISTINCT` on top.
    Spec {
        spec: BoundSpec,
        counts: HashMap<Row, i64>,
    },
    /// A set operation over two child states, caching each child's
    /// output multiset so `output_count` can be differenced.
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<NodeState>,
        right: Box<NodeState>,
        lcounts: HashMap<Row, i64>,
        rcounts: HashMap<Row, i64>,
    },
}

/// A subscribed query kept incrementally materialized.
#[derive(Debug)]
pub struct MaterializedView {
    /// Canonical SQL (the subscribe key, re-bound on rebuilds).
    sql: String,
    /// The optimized bound output (body + aggregation / `ORDER BY` /
    /// `LIMIT` clauses) the delta operators interpret. The delta tiers
    /// require a plain body; anything with output clauses runs on the
    /// recompute tier.
    query: BoundOutput,
    columns: Vec<ColumnName>,
    mode: MaintenanceMode,
    /// The proof that granted the tier: `Proved` on the set fast path,
    /// `PropertyTested` (with the obstruction) on the fallbacks.
    license: ProofStatus,
    state: ViewState,
    /// The snapshot the state is consistent with.
    base: Arc<Database>,
    exec: ExecOptions,
    /// Cumulative maintenance work since subscribe.
    stats: ExecStats,
}

#[derive(Debug)]
enum ViewState {
    Set(HashSet<Row>),
    Counting(NodeState),
    Full(HashMap<Row, i64>),
}

/// Sort rows in `Value`'s canonical total order (refines `=̇`).
fn sort_canonical(rows: &mut [Row]) {
    rows.sort();
}

/// Expand a signed multiset into its non-negative rows.
fn expand(counts: &HashMap<Row, i64>) -> Vec<Row> {
    let mut out = Vec::new();
    for (row, &n) in counts {
        for _ in 0..n.max(0) {
            out.push(row.clone());
        }
    }
    out
}

/// Diff `after − before` as a signed multiset.
fn multiset_diff(before: &HashMap<Row, i64>, after: &HashMap<Row, i64>) -> HashMap<Row, i64> {
    let mut delta: HashMap<Row, i64> = HashMap::new();
    for (row, &n) in after {
        let change = n - before.get(row).copied().unwrap_or(0);
        if change != 0 {
            delta.insert(row.clone(), change);
        }
    }
    for (row, &n) in before {
        if !after.contains_key(row) && n != 0 {
            delta.insert(row.clone(), -n);
        }
    }
    delta
}

/// Turn a signed output delta into a sorted [`ViewDelta`].
fn signed_to_delta(signed: HashMap<Row, i64>) -> ViewDelta {
    let mut delta = ViewDelta::default();
    for (row, n) in signed {
        if n > 0 {
            for _ in 0..n {
                delta.inserted.push(row.clone());
            }
        } else {
            for _ in 0..-n {
                delta.deleted.push(row.clone());
            }
        }
    }
    sort_canonical(&mut delta.inserted);
    sort_canonical(&mut delta.deleted);
    delta
}

/// Multiset-diff two row collections into a [`ViewDelta`] (used when a
/// view is rebuilt after DDL and the old/new states must be reconciled
/// for subscribers).
pub(crate) fn diff_rows(before: Vec<Row>, after: Vec<Row>) -> ViewDelta {
    signed_to_delta(multiset_diff(&count_rows(before), &count_rows(after)))
}

fn count_rows(rows: Vec<Row>) -> HashMap<Row, i64> {
    let mut counts: HashMap<Row, i64> = HashMap::new();
    for row in rows {
        *counts.entry(row).or_insert(0) += 1;
    }
    counts
}

/// Does any predicate in the tree contain a subquery? Subqueries make
/// the query potentially non-monotone (`NOT EXISTS`), and their
/// evaluation consults whole tables — both disqualify delta tiers.
fn query_has_subquery(query: &BoundQuery) -> bool {
    fn expr_has(e: &BoundExpr) -> bool {
        match e {
            BoundExpr::Exists { .. } | BoundExpr::InSubquery { .. } => true,
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => expr_has(a) || expr_has(b),
            BoundExpr::Not(a) => expr_has(a),
            _ => false,
        }
    }
    match query {
        BoundQuery::Spec(spec) => spec.predicate.as_ref().is_some_and(expr_has),
        BoundQuery::SetOp { left, right, .. } => {
            query_has_subquery(left) || query_has_subquery(right)
        }
    }
}

/// Every base table the query reads, tree-wide — `FROM` lists *and*
/// predicate subqueries (a `NOT EXISTS` view changes when the inner
/// table grows, even though it is not in any `FROM`). Duplicates kept:
/// self-joins read the table once per occurrence.
pub fn base_tables(query: &BoundQuery) -> Vec<TableName> {
    fn expr(e: &BoundExpr, out: &mut Vec<TableName>) {
        match e {
            BoundExpr::Exists { subquery, .. } | BoundExpr::InSubquery { subquery, .. } => {
                spec(subquery, out)
            }
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            BoundExpr::Not(a) => expr(a, out),
            _ => {}
        }
    }
    fn spec(s: &BoundSpec, out: &mut Vec<TableName>) {
        for ft in &s.from {
            out.push(ft.schema.name.clone());
        }
        if let Some(p) = &s.predicate {
            expr(p, out);
        }
    }
    fn go(query: &BoundQuery, out: &mut Vec<TableName>) {
        match query {
            BoundQuery::Spec(s) => spec(s, out),
            BoundQuery::SetOp { left, right, .. } => {
                go(left, out);
                go(right, out);
            }
        }
    }
    let mut out = Vec::new();
    go(query, &mut out);
    out
}

/// Decide the maintenance tier for an optimized query, returning the
/// mode together with the [`ProofStatus`] that justifies it.
///
/// The set fast path demands *both* certificates: Algorithm 1's FD
/// closure must cover a candidate key of every table (so the block is
/// duplicate-free), and the symbolic checker must prove
/// `π_Dist(block) ≡ π_All(block)` from the schema axioms. Either one
/// alone falling short downgrades to counting — the license is a
/// theorem or it is not granted.
///
/// Aggregation / `ORDER BY` / `LIMIT` outputs route to the honest
/// recompute tier: an insert can *change* an existing aggregate row
/// (not just add one), which the insert-only delta operators cannot
/// express. Incremental aggregate maintenance (differencing per-group
/// partial states) is a ROADMAP follow-up.
pub fn license_view(query: &BoundOutput) -> (MaintenanceMode, ProofStatus) {
    if query.as_plain().is_none() {
        return (
            MaintenanceMode::Recompute,
            ProofStatus::PropertyTested {
                reason: "aggregate/order/limit output: recompute maintenance".into(),
            },
        );
    }
    license_body(&query.body)
}

/// [`license_view`] for a plain query body.
fn license_body(query: &BoundQuery) -> (MaintenanceMode, ProofStatus) {
    if query_has_subquery(query) {
        return (
            MaintenanceMode::Recompute,
            ProofStatus::PropertyTested {
                reason: "subquery in predicate: delta evaluation unavailable".into(),
            },
        );
    }
    if let BoundQuery::Spec(spec) = query {
        let report = unique_projection(spec);
        if report.unique {
            let mut as_distinct = (**spec).clone();
            as_distinct.distinct = Distinct::Distinct;
            let mut as_all = (**spec).clone();
            as_all.distinct = Distinct::All;
            let verdict = check_equiv(
                &BoundQuery::Spec(Box::new(as_distinct)),
                &BoundQuery::Spec(Box::new(as_all)),
            );
            if verdict.is_proved() {
                return (MaintenanceMode::Set, verdict.into_status());
            }
            return (
                MaintenanceMode::Counting,
                verdict.into_status(), // honest: Algorithm 1 said yes, the checker could not
            );
        }
        return (
            MaintenanceMode::Counting,
            ProofStatus::PropertyTested {
                reason: report.reason,
            },
        );
    }
    (
        MaintenanceMode::Counting,
        ProofStatus::PropertyTested {
            reason: "set operation: counting maintenance".into(),
        },
    )
}

/// Run `query` (as bound) against `db`, booking work into `stats`.
fn run_query(
    query: &BoundQuery,
    db: &Database,
    exec: ExecOptions,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    let hostvars = HostVars::new();
    let mut executor = Executor::new(db, &hostvars, exec);
    let rows = executor.run(query)?;
    stats.merge(&executor.stats);
    Ok(rows)
}

/// [`run_query`] for a full output (aggregation / `ORDER BY` / `LIMIT`
/// included) — the recompute tier's evaluator.
fn run_output_query(
    query: &BoundOutput,
    db: &Database,
    exec: ExecOptions,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    let hostvars = HostVars::new();
    let mut executor = Executor::new(db, &hostvars, exec);
    let rows = executor.run_output(query, None)?;
    stats.merge(&executor.stats);
    Ok(rows)
}

impl NodeState {
    /// Materialize the initial state bottom-up from `db`.
    fn init(
        query: &BoundQuery,
        db: &Database,
        exec: ExecOptions,
        stats: &mut ExecStats,
    ) -> Result<NodeState> {
        match query {
            BoundQuery::Spec(spec) => {
                // The node tracks the *pre-distinct* multiset; its
                // output applies the block's DISTINCT on read.
                let mut as_all = (**spec).clone();
                as_all.distinct = Distinct::All;
                let rows = run_query(&BoundQuery::Spec(Box::new(as_all)), db, exec, stats)?;
                Ok(NodeState::Spec {
                    spec: (**spec).clone(),
                    counts: count_rows(rows),
                })
            }
            BoundQuery::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let lstate = NodeState::init(left, db, exec, stats)?;
                let rstate = NodeState::init(right, db, exec, stats)?;
                let lcounts = lstate.output();
                let rcounts = rstate.output();
                Ok(NodeState::SetOp {
                    op: *op,
                    all: *all,
                    left: Box::new(lstate),
                    right: Box::new(rstate),
                    lcounts,
                    rcounts,
                })
            }
        }
    }

    /// The node's current output multiset.
    fn output(&self) -> HashMap<Row, i64> {
        match self {
            NodeState::Spec { spec, counts } => match spec.distinct {
                Distinct::All => counts.clone(),
                Distinct::Distinct => counts
                    .iter()
                    .filter(|(_, &n)| n > 0)
                    .map(|(row, _)| (row.clone(), 1))
                    .collect(),
            },
            NodeState::SetOp {
                op,
                all,
                lcounts,
                rcounts,
                ..
            } => {
                let mut out = HashMap::new();
                for row in lcounts.keys().chain(rcounts.keys()) {
                    if out.contains_key(row) {
                        continue;
                    }
                    let j = lcounts.get(row).copied().unwrap_or(0).max(0) as usize;
                    let k = rcounts.get(row).copied().unwrap_or(0).max(0) as usize;
                    let n = output_count(*op, *all, j, k);
                    if n > 0 {
                        out.insert(row.clone(), n as i64);
                    }
                }
                out
            }
        }
    }

    /// Apply one publish's base deltas, updating internal counts and
    /// returning the signed *output* delta of this node.
    fn delta(
        &mut self,
        old: &Database,
        new: &Database,
        exec: ExecOptions,
        stats: &mut ExecStats,
    ) -> Result<HashMap<Row, i64>> {
        match self {
            NodeState::Spec { spec, counts } => {
                let derivations = spec_delta(spec, old, new, exec, stats)?;
                let mut out: HashMap<Row, i64> = HashMap::new();
                for row in derivations {
                    let n = counts.entry(row.clone()).or_insert(0);
                    *n += 1;
                    // A subquery-free block is monotone: derivations
                    // only ever add. DISTINCT emits on the 0→1 edge.
                    let emits = match spec.distinct {
                        Distinct::All => 1,
                        Distinct::Distinct => i64::from(*n == 1),
                    };
                    if emits > 0 {
                        *out.entry(row).or_insert(0) += emits;
                    }
                }
                Ok(out)
            }
            NodeState::SetOp {
                op,
                all,
                left,
                right,
                lcounts,
                rcounts,
            } => {
                let ldelta = left.delta(old, new, exec, stats)?;
                let rdelta = right.delta(old, new, exec, stats)?;
                let mut out: HashMap<Row, i64> = HashMap::new();
                for row in ldelta.keys().chain(rdelta.keys()) {
                    if out.contains_key(row) {
                        continue;
                    }
                    let j0 = lcounts.get(row).copied().unwrap_or(0);
                    let k0 = rcounts.get(row).copied().unwrap_or(0);
                    let j1 = j0 + ldelta.get(row).copied().unwrap_or(0);
                    let k1 = k0 + rdelta.get(row).copied().unwrap_or(0);
                    let before = output_count(*op, *all, j0.max(0) as usize, k0.max(0) as usize);
                    let after = output_count(*op, *all, j1.max(0) as usize, k1.max(0) as usize);
                    let change = after as i64 - before as i64;
                    if change != 0 {
                        out.insert(row.clone(), change);
                    }
                }
                for (row, d) in ldelta {
                    *lcounts.entry(row).or_insert(0) += d;
                }
                for (row, d) in rdelta {
                    *rcounts.entry(row).or_insert(0) += d;
                }
                Ok(out)
            }
        }
    }
}

/// Evaluate the delta of a subquery-free block between two adjacent
/// snapshots: the multiset of *new derivations* of projected rows.
///
/// The telescoping sum runs one pass per table with a non-empty delta:
/// partial tuples start from that table's delta rows and are extended
/// across the remaining tables — earlier tables from the *new*
/// snapshot, later ones from the *old* — so no derivation is counted
/// twice. Each extension step prefers a candidate-key probe
/// (`lookup_by_key`, one `probe_step`) when the placed equi-join keys
/// cover a key of the table being joined *in the live catalog*; the
/// honest fallback is a nested-loop scan with every row booked.
fn spec_delta(
    spec: &BoundSpec,
    old: &Database,
    new: &Database,
    exec: ExecOptions,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    let n = spec.from.len();
    let conjuncts: Vec<BoundExpr> = spec
        .predicate
        .as_ref()
        .map(|p| p.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    let hostvars = HostVars::new();
    let mut evaluator = Executor::new(new, &hostvars, exec);
    let mut out = Vec::new();

    // Extract every table's delta up front; a table can appear several
    // times in FROM (self-join), and each occurrence telescopes.
    let mut deltas: Vec<&[Row]> = Vec::with_capacity(n);
    for ft in &spec.from {
        let delta = old
            .table_delta(new, &ft.schema.name)
            .ok_or_else(|| Error::internal("snapshot pair is not insert-only"))?;
        deltas.push(delta);
    }

    for i in 0..n {
        if deltas[i].is_empty() {
            continue;
        }
        stats.delta_rows += deltas[i].len() as u64;
        let arity = spec.product_arity();
        let range_i = spec.from[i].attr_range();
        // Partial tuples: full-width, Null where a table is unplaced.
        let mut partials: Vec<Row> = Vec::with_capacity(deltas[i].len());
        for row in deltas[i] {
            let mut tuple = vec![Value::Null; arity];
            tuple[range_i.clone()].clone_from_slice(row);
            partials.push(tuple);
        }
        let mut placed: Vec<bool> = vec![false; n];
        placed[i] = true;
        let mut applied: Vec<bool> = vec![false; conjuncts.len()];
        apply_covered(
            &conjuncts,
            &mut applied,
            spec,
            &placed,
            &mut partials,
            &mut evaluator,
        )?;
        // Extend over the remaining tables in FROM order; the
        // telescoping convention picks which snapshot each reads.
        for j in (0..n).filter(|&j| j != i) {
            if partials.is_empty() {
                break;
            }
            let db: &Database = if j < i { new } else { old };
            partials = extend_over(spec, j, db, &conjuncts, &placed, partials, stats)?;
            placed[j] = true;
            apply_covered(
                &conjuncts,
                &mut applied,
                spec,
                &placed,
                &mut partials,
                &mut evaluator,
            )?;
        }
        for tuple in partials {
            out.push(
                spec.projection
                    .iter()
                    .map(|p| tuple[p.attr].clone())
                    .collect(),
            );
        }
    }
    stats.merge(&evaluator.stats);
    Ok(out)
}

/// Evaluate (once) every conjunct newly covered by the placed tables,
/// dropping partial tuples the predicate does not definitely accept.
fn apply_covered(
    conjuncts: &[BoundExpr],
    applied: &mut [bool],
    spec: &BoundSpec,
    placed: &[bool],
    partials: &mut Vec<Row>,
    evaluator: &mut Executor<'_>,
) -> Result<()> {
    for (c, done) in conjuncts.iter().zip(applied.iter_mut()) {
        if *done {
            continue;
        }
        let mut covered = true;
        c.visit_local_attrs(&mut |idx| {
            if let Some((ft, _)) = spec.attr_owner(idx) {
                let t = spec
                    .from
                    .iter()
                    .position(|f| f.offset == ft.offset)
                    .unwrap_or(usize::MAX);
                if t == usize::MAX || !placed[t] {
                    covered = false;
                }
            }
        });
        if !covered {
            continue;
        }
        *done = true;
        let mut kept = Vec::with_capacity(partials.len());
        for tuple in partials.drain(..) {
            // False-interpreted (⌊·⌋): Unknown rejects, as in the executor.
            if evaluator.eval(c, &[], &tuple)?.false_interpreted() {
                kept.push(tuple);
            }
        }
        *partials = kept;
    }
    Ok(())
}

/// Join the partial tuples with table `j` read from `db`: candidate-key
/// probe when the placed equi-join keys cover a key in `db`'s *live*
/// catalog, nested-loop scan otherwise.
fn extend_over(
    spec: &BoundSpec,
    j: usize,
    db: &Database,
    conjuncts: &[BoundExpr],
    placed: &[bool],
    partials: Vec<Row>,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    let ft = &spec.from[j];
    let range = ft.attr_range();
    let is_placed = |idx: usize| {
        spec.attr_owner(idx)
            .and_then(|(owner, _)| spec.from.iter().position(|f| f.offset == owner.offset))
            .is_some_and(|t| placed[t])
    };
    // Equi-join pairs (placed attr, column of table j) available now.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for c in conjuncts {
        if let Some((built, new_attr)) = equi_join_key(c, &range, &is_placed) {
            pairs.push((built, new_attr - range.start));
        }
    }
    // License-not-promise: the probe key must be a candidate key of the
    // *live* table, not of the schema snapshot bound into the plan.
    let probe_key = db.catalog().table(&ft.schema.name).ok().and_then(|live| {
        live.candidate_keys()
            .find(|k| {
                k.columns
                    .iter()
                    .all(|c| pairs.iter().any(|&(_, col)| col == *c))
            })
            .map(|k| k.columns.clone())
    });
    let mut out = Vec::new();
    match probe_key {
        Some(key_columns) => {
            for tuple in partials {
                let key_values: Vec<Value> = key_columns
                    .iter()
                    .map(|col| {
                        let built = pairs
                            .iter()
                            .find(|&&(_, c)| c == *col)
                            .map(|&(b, _)| b)
                            .expect("probe key covered by pairs");
                        tuple[built].clone()
                    })
                    .collect();
                stats.ix_probes += 1;
                stats.probe_steps += 1;
                // A NULL key value matches nothing under `=` (the probe
                // implements plain equality, and `=̇` never reaches
                // join conjuncts produced by the binder).
                if key_values.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(row) = db.lookup_by_key(&ft.schema.name, &key_columns, &key_values)? {
                    let mut extended = tuple;
                    extended[range.clone()].clone_from_slice(row);
                    out.push(extended);
                }
            }
        }
        None => {
            let rows = db.rows(&ft.schema.name)?;
            for tuple in partials {
                stats.rows_scanned += rows.len() as u64;
                'rows: for row in rows {
                    // Pre-filter on the equi pairs before cloning; the
                    // full conjuncts re-run after placement anyway.
                    for &(built, col) in &pairs {
                        let l = &tuple[built];
                        let r = &row[col];
                        if l.is_null() || r.is_null() || l != r {
                            continue 'rows;
                        }
                    }
                    let mut extended = tuple.clone();
                    extended[range.clone()].clone_from_slice(row);
                    out.push(extended);
                }
            }
        }
    }
    Ok(out)
}

impl MaterializedView {
    /// Materialize `query` against `base` and pick its maintenance
    /// tier. `sql` is the canonical text (kept for rebuilds and
    /// EXPLAIN); `columns` the output header.
    pub fn new(
        sql: String,
        query: BoundOutput,
        columns: Vec<ColumnName>,
        base: Arc<Database>,
        exec: ExecOptions,
    ) -> Result<MaterializedView> {
        let (mode, license) = license_view(&query);
        let mut stats = ExecStats::new();
        // The delta tiers are only ever granted for plain outputs, so
        // they may read `query.body` as the whole query.
        let state = match mode {
            MaintenanceMode::Set => {
                let rows = run_query(&query.body, &base, exec, &mut stats)?;
                let set: HashSet<Row> = rows.into_iter().collect();
                ViewState::Set(set)
            }
            MaintenanceMode::Counting => {
                ViewState::Counting(NodeState::init(&query.body, &base, exec, &mut stats)?)
            }
            MaintenanceMode::Recompute => {
                let rows = run_output_query(&query, &base, exec, &mut stats)?;
                ViewState::Full(count_rows(rows))
            }
        };
        Ok(MaterializedView {
            sql,
            query,
            columns,
            mode,
            license,
            state,
            base,
            exec,
            stats,
        })
    }

    /// The canonical SQL this view materializes.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Output column names.
    pub fn columns(&self) -> &[ColumnName] {
        &self.columns
    }

    /// The maintenance tier in force.
    pub fn mode(&self) -> MaintenanceMode {
        self.mode
    }

    /// The proof that granted (or refused) the refcount-free tier.
    pub fn license(&self) -> &ProofStatus {
        &self.license
    }

    /// Cumulative maintenance work since subscribe (initial
    /// materialization included).
    pub fn work(&self) -> ExecStats {
        self.stats
    }

    /// The snapshot the state is consistent with.
    pub fn base(&self) -> &Arc<Database> {
        &self.base
    }

    /// Every base table the view reads (subquery tables included).
    pub fn tables(&self) -> Vec<TableName> {
        base_tables(&self.query.body)
    }

    /// The view's current contents as a multiset, canonically sorted.
    pub fn rows(&self) -> Vec<Row> {
        let mut rows = match &self.state {
            ViewState::Set(set) => set.iter().cloned().collect(),
            ViewState::Counting(node) => expand(&node.output()),
            ViewState::Full(counts) => expand(counts),
        };
        sort_canonical(&mut rows);
        rows
    }

    /// Advance the view from its base snapshot to `head`, returning the
    /// net change. O(1) when every table is untouched; O(|Δ|) on the
    /// delta tiers; a catalog version change demands a rebuild instead
    /// (the bound tree and its license no longer describe the head).
    pub fn maintain(&mut self, head: &Arc<Database>) -> Result<MaintainOutcome> {
        if Arc::ptr_eq(&self.base, head) {
            return Ok(MaintainOutcome::Unchanged);
        }
        if self.base.version() != head.version() {
            return Ok(MaintainOutcome::NeedsRebuild);
        }
        // Pointer-equality fast path: every table untouched ⇒ no work.
        let tables = base_tables(&self.query.body);
        if tables.iter().all(|t| self.base.shares_storage(head, t)) {
            self.base = Arc::clone(head);
            return Ok(MaintainOutcome::Unchanged);
        }
        let mut work = ExecStats::new();
        let delta = match &mut self.state {
            ViewState::Set(set) => {
                let BoundQuery::Spec(spec) = &self.query.body else {
                    return Err(Error::internal("set-tier view must be a single block"));
                };
                let derivations = spec_delta(spec, &self.base, head, self.exec, &mut work)?;
                let mut inserted = Vec::new();
                for row in derivations {
                    // Under a valid 0/1 license every new derivation is
                    // a new view row; a collision would mean the proof
                    // was wrong, so it is surfaced loudly in debug.
                    let fresh = set.insert(row.clone());
                    debug_assert!(fresh, "0/1-multiplicity license violated for {row:?}");
                    if fresh {
                        inserted.push(row);
                    }
                }
                sort_canonical(&mut inserted);
                ViewDelta {
                    inserted,
                    deleted: Vec::new(),
                }
            }
            ViewState::Counting(node) => {
                let signed = node.delta(&self.base, head, self.exec, &mut work)?;
                signed_to_delta(signed)
            }
            ViewState::Full(counts) => {
                let rows = run_output_query(&self.query, head, self.exec, &mut work)?;
                let after = count_rows(rows);
                let signed = multiset_diff(counts, &after);
                *counts = after;
                signed_to_delta(signed)
            }
        };
        work.view_updates += delta.len() as u64;
        self.stats.merge(&work);
        self.base = Arc::clone(head);
        Ok(MaintainOutcome::Delta { delta, work })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_core::optimize_output;
    use uniq_core::pipeline::{Optimizer, OptimizerOptions};
    use uniq_plan::bind_output;
    use uniq_sql::{parse_statement, Statement};

    fn bind(db: &Database, sql: &str) -> (BoundOutput, Vec<ColumnName>) {
        let Statement::Query(ast) = parse_statement(sql).unwrap() else {
            panic!("not a query");
        };
        let bound = bind_output(db.catalog(), &ast).unwrap();
        let (query, _trace) =
            optimize_output(&Optimizer::new(OptimizerOptions::relational()), &bound);
        let columns = query.output_names();
        (query, columns)
    }

    fn view(db: &Arc<Database>, sql: &str) -> MaterializedView {
        let (query, columns) = bind(db, sql);
        MaterializedView::new(
            sql.to_string(),
            query,
            columns,
            Arc::clone(db),
            ExecOptions::default(),
        )
        .unwrap()
    }

    fn sample() -> Arc<Database> {
        Arc::new(uniq_catalog::sample::supplier_database().unwrap())
    }

    fn advance(db: &Arc<Database>, script: &str) -> Arc<Database> {
        let mut next = (**db).clone();
        next.run_script(script).unwrap();
        Arc::new(next)
    }

    fn oracle(db: &Database, sql: &str) -> Vec<Row> {
        let (query, _) = bind(db, sql);
        let mut stats = ExecStats::new();
        let mut rows = run_output_query(&query, db, ExecOptions::default(), &mut stats).unwrap();
        rows.sort();
        rows
    }

    #[test]
    fn key_covered_join_gets_the_set_license() {
        let db = sample();
        let v = view(
            &db,
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        );
        assert_eq!(v.mode(), MaintenanceMode::Set);
        assert!(v.license().is_proved(), "license is a theorem");
        assert_eq!(v.license().marker(), "✓");
    }

    #[test]
    fn non_unique_projection_falls_back_to_counting() {
        let db = sample();
        let v = view(&db, "SELECT S.SCITY FROM SUPPLIER S");
        assert_eq!(v.mode(), MaintenanceMode::Counting);
        assert!(!v.license().is_proved());
    }

    #[test]
    fn subqueries_force_recompute() {
        let db = sample();
        let v = view(
            &db,
            "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
             (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)",
        );
        assert_eq!(v.mode(), MaintenanceMode::Recompute);
    }

    #[test]
    fn set_tier_maintains_by_key_probe() {
        let db = sample();
        let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
        let mut v = view(&db, sql);
        let before = v.rows();
        let head = advance(
            &db,
            "INSERT INTO PARTS VALUES (1, 77, 'gasket', 120, 'RED');",
        );
        let MaintainOutcome::Delta { delta, work } = v.maintain(&head).unwrap() else {
            panic!("expected a delta");
        };
        assert_eq!(delta.inserted, vec![vec![Value::Int(1), Value::Int(77)]]);
        assert!(delta.deleted.is_empty());
        assert_eq!(work.delta_rows, 1, "one delta row consumed");
        assert!(work.probe_steps >= 1, "supplier side probed by key");
        assert_eq!(
            work.rows_scanned, 0,
            "no table scan on the key-probe path: {work:?}"
        );
        assert!(before.len() + 1 == v.rows().len());
        assert_eq!(v.rows(), oracle(&head, sql));
    }

    #[test]
    fn untouched_tables_cost_one_pointer_compare() {
        let db = sample();
        let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
        let mut v = view(&db, sql);
        // AGENTS is not in the view: its insert must be a no-op round.
        let head = advance(&db, "INSERT INTO AGENTS VALUES (1, 9, 'Zed', 'Ottawa');");
        assert!(matches!(
            v.maintain(&head).unwrap(),
            MaintainOutcome::Unchanged
        ));
        assert_eq!(v.base().version(), head.version());
    }

    #[test]
    fn ddl_demands_a_rebuild() {
        let db = sample();
        let mut v = view(&db, "SELECT DISTINCT S.SNO FROM SUPPLIER S");
        let head = advance(&db, "CREATE TABLE Z (A INTEGER, PRIMARY KEY (A));");
        assert!(matches!(
            v.maintain(&head).unwrap(),
            MaintainOutcome::NeedsRebuild
        ));
    }

    #[test]
    fn counting_tier_tracks_distinct_transitions() {
        let db = sample();
        let sql = "SELECT DISTINCT S.SNAME FROM SUPPLIER S";
        let mut v = view(&db, sql);
        assert_eq!(v.mode(), MaintenanceMode::Counting);
        // A third 'Acme': no new distinct name.
        let head = advance(
            &db,
            "INSERT INTO SUPPLIER VALUES (9, 'Acme', 'Toronto', 1, 'Active');",
        );
        let MaintainOutcome::Delta { delta, .. } = v.maintain(&head).unwrap() else {
            panic!("expected a delta round");
        };
        assert!(delta.is_empty(), "duplicate name adds nothing: {delta:?}");
        // A genuinely new name crosses the 0→1 edge.
        let head2 = advance(
            &head,
            "INSERT INTO SUPPLIER VALUES (10, 'Zeta', 'Chicago', 1, 'Active');",
        );
        let MaintainOutcome::Delta { delta, .. } = v.maintain(&head2).unwrap() else {
            panic!("expected a delta round");
        };
        assert_eq!(delta.inserted, vec![vec![Value::Str("Zeta".into())]]);
        assert_eq!(v.rows(), oracle(&head2, sql));
    }

    #[test]
    fn except_view_can_delete_under_insert_only_bases() {
        let db = sample();
        let sql = "SELECT S.SNO FROM SUPPLIER S EXCEPT SELECT P.SNO FROM PARTS P";
        // Bind without optimizing: the rewrite pipeline may turn EXCEPT
        // into an anti-join subquery (Recompute tier); the raw set-op
        // tree exercises the counting delta operators.
        let Statement::Query(ast) = parse_statement(sql).unwrap() else {
            panic!();
        };
        let bound = bind_output(db.catalog(), &ast).unwrap();
        let columns = bound.output_names();
        let mut v = MaterializedView::new(
            sql.to_string(),
            bound,
            columns,
            Arc::clone(&db),
            ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(v.mode(), MaintenanceMode::Counting);
        let survivors = v.rows();
        assert!(!survivors.is_empty(), "some supplier ships nothing");
        let lone = survivors[0][0].clone();
        let Value::Int(sno) = lone else { panic!() };
        let head = advance(
            &db,
            &format!("INSERT INTO PARTS VALUES ({sno}, 90, 'new', 121, 'BLUE');"),
        );
        let MaintainOutcome::Delta { delta, .. } = v.maintain(&head).unwrap() else {
            panic!("expected a delta round");
        };
        assert_eq!(delta.deleted, vec![vec![Value::Int(sno)]]);
        assert_eq!(v.rows(), oracle(&head, sql));
    }

    #[test]
    fn aggregate_views_route_to_recompute_and_diff_honestly() {
        let db = sample();
        let sql = "SELECT S.SCITY, COUNT(*) AS N FROM SUPPLIER S GROUP BY S.SCITY";
        let mut v = view(&db, sql);
        assert_eq!(v.mode(), MaintenanceMode::Recompute);
        assert!(!v.license().is_proved());
        let ProofStatus::PropertyTested { reason } = v.license() else {
            panic!("expected the recompute obstruction");
        };
        assert!(reason.contains("aggregate/order/limit"), "{reason}");
        let before = v.rows();
        let head = advance(
            &db,
            "INSERT INTO SUPPLIER VALUES (9, 'Nine', 'Toronto', 1, 'Active');",
        );
        let MaintainOutcome::Delta { delta, .. } = v.maintain(&head).unwrap() else {
            panic!("expected a delta round");
        };
        // Toronto's count row is *replaced*: one delete + one insert —
        // the shape the insert-only delta tiers cannot express.
        assert_eq!(delta.deleted.len(), 1, "{delta:?}");
        assert_eq!(delta.inserted.len(), 1, "{delta:?}");
        assert_ne!(v.rows(), before);
        assert_eq!(v.rows(), oracle(&head, sql));
    }

    #[test]
    fn recompute_tier_agrees_with_oracle() {
        let db = sample();
        let sql = "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
                   (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)";
        let mut v = view(&db, sql);
        let head = advance(&db, "INSERT INTO PARTS VALUES (5, 91, 'new', 122, 'BLUE');");
        match v.maintain(&head).unwrap() {
            MaintainOutcome::Delta { .. } | MaintainOutcome::Unchanged => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(v.rows(), oracle(&head, sql));
    }

    #[test]
    fn self_join_deltas_telescope_without_double_counting() {
        let db = sample();
        // Pairs of parts shipped by the same supplier (self-join).
        let sql = "SELECT P.PNO, Q.PNO FROM PARTS P, PARTS Q \
                   WHERE P.SNO = Q.SNO AND P.PNO < Q.PNO";
        let mut v = view(&db, sql);
        let head = advance(
            &db,
            "INSERT INTO PARTS VALUES (1, 78, 'bolt', 123, 'RED'); \
             INSERT INTO PARTS VALUES (1, 79, 'nut', 124, 'BLUE');",
        );
        let MaintainOutcome::Delta { .. } = v.maintain(&head).unwrap() else {
            panic!("expected a delta round");
        };
        assert_eq!(v.rows(), oracle(&head, sql));
    }
}
