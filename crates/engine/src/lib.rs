//! A multiset query executor for the paper's algebra (§2.2).
//!
//! The executor evaluates bound queries against a
//! [`uniq_catalog::Database`] with exactly the semantics the paper's
//! theorems assume:
//!
//! * `WHERE` filters are **false-interpreted** three-valued predicates
//!   (`⌊·⌋`): a row qualifies only when the condition is definitely true.
//! * `SELECT DISTINCT`, `INTERSECT [ALL]` and `EXCEPT [ALL]` compare
//!   tuples with the null-aware `=̇` (`NULL =̇ NULL` is *true*), via
//!   sort-based duplicate elimination by default — the expensive sort
//!   whose avoidance motivates the whole paper — with a hash-based
//!   alternative for ablation.
//! * `INTERSECT ALL` emits `min(j,k)` copies, `EXCEPT ALL` emits
//!   `max(j−k, 0)`, per the SQL2 definitions quoted in §2.2.
//! * `EXISTS` subqueries run correlated with first-match early exit —
//!   the property §6 exploits on navigational systems.
//!
//! Joins run as hash equi-joins when an equality conjunct links two
//! tables (the "alternate join methods" an optimizer buys by rewriting a
//! subquery to a join, §5.2), falling back to nested loops. Every
//! operator maintains [`stats::ExecStats`] counters so experiments can
//! report *work* (rows scanned, comparisons, probes) as well as time.
//!
//! The [`columnar`] module adds a vectorized execution path over
//! dictionary-encoded column storage for the block shapes the cost
//! planner proves covered; the row executor above remains the default
//! and the correctness oracle it is property-tested against. The
//! [`agg`] module supplies the aggregation / `ORDER BY` / `LIMIT`
//! output stage over either path, with the uniqueness elisions
//! (key-covered `GROUP BY`, `COUNT(DISTINCT)` degradation, early-stop
//! Top-K) that experiment E23 measures.

pub mod agg;
pub mod columnar;
pub mod exec;
pub mod explain;
pub mod ivm;
pub mod parallel;
pub mod plancache;
pub mod session;
pub mod setops;
pub mod shared;
pub mod stats;

pub use columnar::{ColumnBatch, ColumnData, ColumnStore, TableColumns, DEFAULT_DICT_LIMIT};
pub use exec::{ExecOptions, Executor};
pub use explain::{explain, explain_with_trace, render_trace};
pub use ivm::{MaintainOutcome, MaintenanceMode, MaterializedView, ViewDelta};
pub use parallel::MORSEL_SIZE;
pub use plancache::{CacheStats, CachedPlan, PlanCache};
pub use session::{QueryOutput, Session};
pub use shared::{
    EngineStats, SharedEngine, SharedSession, Subscription, SubscriptionSink, SubscriptionStats,
};
pub use stats::{Degree, DistinctMethod, ExecStats, JoinMethod, StageTimings};
pub use uniq_cost::{CardReport, PhysicalPlan, PlannerOptions, QErrorStats, Statistics};
