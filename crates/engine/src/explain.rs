//! `EXPLAIN`-style rendering of the physical strategy the executor will
//! use for a bound query.
//!
//! The executor's physical decisions are deterministic functions of the
//! bound query and [`ExecOptions`] (conjunct assignment, equi-join
//! detection, distinct method), so the plan can be rendered without
//! executing. The same helper functions drive both, keeping the
//! explanation honest.

use crate::exec::ExecOptions;
use crate::stats::{DistinctMethod, JoinMethod};
use uniq_core::pipeline::RewriteTrace;
use uniq_plan::{BScalar, BoundExpr, BoundOutput, BoundQuery, BoundSpec};
use uniq_sql::{CmpOp, Distinct, SetOp};

/// Render the physical plan as an indented tree, one operator per line.
pub fn explain(query: &BoundQuery, opts: &ExecOptions) -> String {
    let mut out = String::new();
    explain_query(query, opts, 0, &mut out);
    out
}

/// Render a [`RewriteTrace`]: the ordered steps (rule, licensing
/// theorem, before/after SQL) followed by the per-rule counters. This is
/// the front half of `EXPLAIN` output — what the optimizer did and what
/// it cost — shown identically for freshly compiled and cached plans.
pub fn render_trace(trace: &RewriteTrace) -> String {
    let mut out = String::new();
    if trace.steps.is_empty() {
        out.push_str(&format!(
            "Rewrites: none ({} pass(es), {} uniqueness test(s) computed)\n",
            trace.passes, trace.uniqueness_tests_computed
        ));
    } else {
        out.push_str(&format!(
            "Rewrites: {} step(s) in {} pass(es), {} uniqueness test(s) computed, {} memoized\n",
            trace.steps.len(),
            trace.passes,
            trace.uniqueness_tests_computed,
            trace.uniqueness_tests_memoized
        ));
        for (i, step) in trace.steps.iter().enumerate() {
            out.push_str(&format!(
                "  {}. {} [{}] proof={}\n",
                i + 1,
                step.rule,
                step.theorem,
                step.proof.marker()
            ));
            out.push_str(&format!("     before: {}\n", step.sql_before));
            out.push_str(&format!("     after:  {}\n", step.sql_after));
            out.push_str(&format!("     why: {}\n", step.why));
        }
    }
    let active: Vec<_> = trace.rule_stats.iter().filter(|s| s.attempts > 0).collect();
    if !active.is_empty() {
        out.push_str("Rule stats (attempts/fires/uniqueness tests/time):\n");
        for s in active {
            out.push_str(&format!(
                "  {}: {}/{}/{}/{}\n",
                s.rule,
                s.attempts,
                s.fires,
                s.uniqueness_tests,
                fmt_ns(s.nanos)
            ));
        }
    }
    out
}

/// Render the full `EXPLAIN`: rewrite trace, then the physical plan for
/// the (already optimized) query — output stage (`Limit` / `Sort` /
/// `Aggregate`, with the uniqueness-elision markers) above the body.
pub fn explain_with_trace(
    trace: &RewriteTrace,
    output: &BoundOutput,
    opts: &ExecOptions,
) -> String {
    let mut out = render_trace(trace);
    out.push_str("Physical plan:\n");
    let mut plan = String::new();
    let depth = explain_output_ops(output, opts, 1, &mut plan);
    explain_query(&output.body, opts, depth, &mut plan);
    out.push_str(&plan);
    out
}

/// Render the output operators above the body, mirroring the decisions
/// [`Executor::run_output`](crate::Executor::run_output) makes: a
/// `Limit` under a re-derivable early-stop license absorbs the `Sort`
/// (the ordered index serves the order), and elided aggregations carry
/// their proof markers. Returns the body's indentation depth.
fn explain_output_ops(
    output: &BoundOutput,
    opts: &ExecOptions,
    mut depth: usize,
    out: &mut String,
) -> usize {
    let license = if opts.early_stop {
        uniq_cost::early_stop_license(output)
    } else {
        None
    };
    if let Some(k) = output.limit {
        indent(out, depth);
        match license.as_ref().and_then(|lic| lic.index()) {
            Some(index) => out.push_str(&format!("Limit {k} early-stop({index})\n")),
            None => out.push_str(&format!("Limit {k}\n")),
        }
        depth += 1;
    }
    if !output.order_by.is_empty() && license.is_none() {
        indent(out, depth);
        let names = output.output_names();
        let cols: Vec<String> = output
            .order_by
            .iter()
            .map(|&(pos, desc)| {
                let name = names
                    .get(pos)
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| format!("#{pos}"));
                if desc {
                    format!("{name} DESC")
                } else {
                    name
                }
            })
            .collect();
        out.push_str(&format!("Sort [{}]\n", cols.join(", ")));
        depth += 1;
    }
    if let Some(agg) = &output.agg {
        indent(out, depth);
        let items: Vec<String> = agg.items.iter().map(|i| i.name().to_string()).collect();
        out.push_str(&format!("Aggregate [{}]", items.join(", ")));
        if agg.group_elided {
            out.push_str(" group-elided");
        }
        if agg.count_distinct_elided {
            out.push_str(" count-distinct-elided");
        }
        out.push_str(&deg_suffix(opts));
        out.push('\n');
        depth += 1;
    }
    depth
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// ` deg=N` when the session executes morsel-parallel (the static path
/// applies one degree to the whole pipeline; per-operator degrees are
/// the cost-based planner's refinement, rendered by
/// [`uniq_cost::PhysicalPlan::render`]).
fn deg_suffix(opts: &ExecOptions) -> String {
    let deg = opts.degree.resolve();
    if deg > 1 {
        format!(" deg={deg}")
    } else {
        String::new()
    }
}

fn explain_query(q: &BoundQuery, opts: &ExecOptions, depth: usize, out: &mut String) {
    match q {
        BoundQuery::Spec(spec) => explain_spec(spec, opts, depth, out),
        BoundQuery::SetOp {
            op,
            all,
            left,
            right,
        } => {
            indent(out, depth);
            let method = match opts.distinct {
                DistinctMethod::Sort => "sort-merge",
                DistinctMethod::Hash => "hash-count",
            };
            let name = match op {
                SetOp::Intersect => "Intersect",
                SetOp::Except => "Except",
                SetOp::Union => "Union",
            };
            // UNION ALL is pure concatenation; it never partitions.
            let deg = if *op == SetOp::Union && *all {
                String::new()
            } else {
                deg_suffix(opts)
            };
            out.push_str(&format!(
                "{name}{} [{method}]{deg}\n",
                if *all { "All" } else { "" }
            ));
            explain_query(left, opts, depth + 1, out);
            explain_query(right, opts, depth + 1, out);
        }
    }
}

fn explain_spec(spec: &BoundSpec, opts: &ExecOptions, depth: usize, out: &mut String) {
    if spec.distinct == Distinct::Distinct {
        indent(out, depth);
        out.push_str(match opts.distinct {
            DistinctMethod::Sort => "SortDistinct",
            DistinctMethod::Hash => "HashDistinct",
        });
        out.push_str(&deg_suffix(opts));
        out.push('\n');
        return explain_projection(spec, opts, depth + 1, out);
    }
    explain_projection(spec, opts, depth, out);
}

fn explain_projection(spec: &BoundSpec, opts: &ExecOptions, depth: usize, out: &mut String) {
    indent(out, depth);
    let cols: Vec<String> = spec
        .projection
        .iter()
        .map(|p| spec.attr_name(p.attr))
        .collect();
    out.push_str(&format!("Project [{}]\n", cols.join(", ")));
    explain_pipeline(spec, opts, depth + 1, out);
}

fn explain_pipeline(spec: &BoundSpec, opts: &ExecOptions, depth: usize, out: &mut String) {
    // Mirror Executor's conjunct assignment.
    let conjuncts: Vec<&BoundExpr> = spec
        .predicate
        .as_ref()
        .map(|p| p.conjuncts())
        .unwrap_or_default();
    let hash_joins = opts.join == JoinMethod::Hash && spec.from.len() > 1;
    for (level, table) in spec.from.iter().enumerate().rev() {
        indent(out, depth);
        if level == 0 {
            out.push_str(&format!(
                "Scan {} AS {}{}\n",
                table.schema.name,
                table.binding,
                deg_suffix(opts)
            ));
        } else {
            let range = table.attr_range();
            let has_equi = conjuncts.iter().any(|c| {
                matches!(
                    c,
                    BoundExpr::Cmp {
                        op: CmpOp::Eq,
                        left: BScalar::Attr(a),
                        right: BScalar::Attr(b),
                    } if a.is_local() && b.is_local()
                        && (range.contains(&a.idx) != range.contains(&b.idx))
                )
            });
            let method = if hash_joins && has_equi {
                "HashJoin"
            } else {
                "NestedLoop"
            };
            out.push_str(&format!(
                "{method} with Scan {} AS {}{}\n",
                table.schema.name,
                table.binding,
                deg_suffix(opts)
            ));
        }
    }
    // Subqueries, rendered beneath their semi-join marker.
    for c in &conjuncts {
        render_subqueries(c, opts, depth, out);
    }
    if let Some(p) = &spec.predicate {
        indent(out, depth);
        let n = p.conjuncts().len();
        out.push_str(&format!("Filter [{n} conjunct(s)]\n"));
    }
}

fn render_subqueries(e: &BoundExpr, opts: &ExecOptions, depth: usize, out: &mut String) {
    match e {
        BoundExpr::Exists { negated, subquery } => {
            indent(out, depth);
            out.push_str(if *negated {
                "AntiSemiJoin (NOT EXISTS, first-match exit)\n"
            } else {
                "SemiJoin (EXISTS, first-match exit)\n"
            });
            explain_spec(subquery, opts, depth + 1, out);
        }
        BoundExpr::InSubquery {
            subquery, negated, ..
        } => {
            indent(out, depth);
            out.push_str(if *negated {
                "InSubquery (NOT IN, three-valued)\n"
            } else {
                "InSubquery (IN, three-valued)\n"
            });
            explain_spec(subquery, opts, depth + 1, out);
        }
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            render_subqueries(a, opts, depth, out);
            render_subqueries(b, opts, depth, out);
        }
        BoundExpr::Not(a) => render_subqueries(a, opts, depth, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn plan(sql: &str, opts: ExecOptions) -> String {
        let db = supplier_schema().unwrap();
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        explain(&q, &opts)
    }

    #[test]
    fn distinct_join_plan() {
        let p = plan(
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            ExecOptions::default(),
        );
        assert!(p.contains("SortDistinct"), "{p}");
        assert!(p.contains("HashJoin with Scan PARTS AS P"), "{p}");
        assert!(p.contains("Scan SUPPLIER AS S"), "{p}");
        assert!(p.contains("Filter [2 conjunct(s)]"), "{p}");
    }

    #[test]
    fn nested_loop_when_no_equi_join() {
        let p = plan(
            "SELECT S.SNO FROM SUPPLIER S, AGENTS A WHERE S.BUDGET > A.ANO",
            ExecOptions::default(),
        );
        assert!(p.contains("NestedLoop"), "{p}");
        assert!(!p.contains("HashJoin"), "{p}");
    }

    #[test]
    fn exists_renders_semijoin() {
        let p = plan(
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            ExecOptions::default(),
        );
        assert!(p.contains("SemiJoin (EXISTS"), "{p}");
        assert!(p.contains("Scan PARTS AS P"), "{p}");
    }

    #[test]
    fn setop_renders_method() {
        let sort = plan(
            "SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT A.SNO FROM AGENTS A",
            ExecOptions::default(),
        );
        assert!(sort.contains("Intersect [sort-merge]"), "{sort}");
        let hash = plan(
            "SELECT S.SNO FROM SUPPLIER S EXCEPT ALL SELECT A.SNO FROM AGENTS A",
            ExecOptions {
                distinct: DistinctMethod::Hash,
                ..Default::default()
            },
        );
        assert!(hash.contains("ExceptAll [hash-count]"), "{hash}");
    }

    #[test]
    fn trace_rendering_names_rule_theorem_and_timing() {
        let db = supplier_schema().unwrap();
        let q = bind_query(
            db.catalog(),
            &parse_query(
                "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                 WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            )
            .unwrap(),
        )
        .unwrap();
        let outcome = uniq_core::pipeline::Optimizer::new(
            uniq_core::pipeline::OptimizerOptions::relational(),
        )
        .optimize(&q);
        let text = explain_with_trace(
            &outcome.trace,
            &BoundOutput::plain(outcome.query),
            &ExecOptions::default(),
        );
        assert!(
            text.contains("distinct-removal [Theorem 1] proof=✓"),
            "{text}"
        );
        assert!(text.contains("before: SELECT DISTINCT"), "{text}");
        assert!(text.contains("after:  SELECT ALL"), "{text}");
        assert!(text.contains("Rule stats"), "{text}");
        assert!(text.contains("Physical plan:"), "{text}");
        assert!(text.contains("Scan SUPPLIER AS S"), "{text}");
    }

    fn output_plan(sql: &str, opts: ExecOptions) -> String {
        let db = supplier_schema().unwrap();
        let ast = uniq_sql::parse_full_query(sql).unwrap();
        let bound = uniq_plan::bind_output(db.catalog(), &ast).unwrap();
        let optimizer = uniq_core::pipeline::Optimizer::new(
            uniq_core::pipeline::OptimizerOptions::relational(),
        );
        let (output, trace) = uniq_core::optimize_output(&optimizer, &bound);
        explain_with_trace(&trace, &output, &opts)
    }

    #[test]
    fn aggregate_sort_limit_render_above_the_body() {
        let p = output_plan(
            "SELECT S.SCITY, COUNT(*) AS N FROM SUPPLIER S \
             GROUP BY S.SCITY ORDER BY N DESC LIMIT 3",
            ExecOptions::default(),
        );
        let limit = p.find("Limit 3").expect(&p);
        let sort = p.find("Sort [N DESC]").expect(&p);
        let agg = p.find("Aggregate [SCITY, N]").expect(&p);
        let scan = p.find("Scan SUPPLIER AS S").expect(&p);
        assert!(limit < sort && sort < agg && agg < scan, "{p}");
        assert!(!p.contains("group-elided"), "SCITY is no key: {p}");
    }

    #[test]
    fn key_covered_group_by_renders_the_elision_marker() {
        let p = output_plan(
            "SELECT S.SNO, COUNT(*) AS N FROM SUPPLIER S GROUP BY S.SNO",
            ExecOptions::default(),
        );
        assert!(p.contains("Aggregate [SNO, N] group-elided"), "{p}");
    }

    #[test]
    fn empty_trace_renders_none() {
        let text = render_trace(&RewriteTrace::default());
        assert!(text.contains("Rewrites: none"), "{text}");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(50), "50ns");
        assert_eq!(fmt_ns(2_500), "2.5µs");
        assert_eq!(fmt_ns(3_000_000), "3.0ms");
    }

    #[test]
    fn parallel_session_annotates_operators_with_degree() {
        let opts = ExecOptions {
            degree: crate::stats::Degree::Fixed(4),
            ..Default::default()
        };
        let p = plan(
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            opts,
        );
        assert!(p.contains("SortDistinct deg=4"), "{p}");
        assert!(p.contains("HashJoin with Scan PARTS AS P deg=4"), "{p}");
        assert!(p.contains("Scan SUPPLIER AS S deg=4"), "{p}");
        // Serial plans carry no degree annotation anywhere.
        let serial = plan(
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            ExecOptions::default(),
        );
        assert!(!serial.contains("deg="), "{serial}");
        // UNION ALL is concatenation — never annotated.
        let union_all = plan(
            "SELECT S.SNO FROM SUPPLIER S UNION ALL SELECT A.SNO FROM AGENTS A",
            opts,
        );
        assert!(
            !union_all.lines().next().unwrap().contains("deg="),
            "{union_all}"
        );
    }

    #[test]
    fn hash_option_off_forces_nested_loops() {
        let p = plan(
            "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            ExecOptions {
                join: JoinMethod::NestedLoop,
                ..Default::default()
            },
        );
        assert!(p.contains("NestedLoop"), "{p}");
    }
}
