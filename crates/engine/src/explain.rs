//! `EXPLAIN`-style rendering of the physical strategy the executor will
//! use for a bound query.
//!
//! The executor's physical decisions are deterministic functions of the
//! bound query and [`ExecOptions`] (conjunct assignment, equi-join
//! detection, distinct method), so the plan can be rendered without
//! executing. The same helper functions drive both, keeping the
//! explanation honest.

use crate::exec::ExecOptions;
use crate::stats::{DistinctMethod, JoinMethod};
use uniq_plan::{BScalar, BoundExpr, BoundQuery, BoundSpec};
use uniq_sql::{CmpOp, Distinct, SetOp};

/// Render the physical plan as an indented tree, one operator per line.
pub fn explain(query: &BoundQuery, opts: &ExecOptions) -> String {
    let mut out = String::new();
    explain_query(query, opts, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn explain_query(q: &BoundQuery, opts: &ExecOptions, depth: usize, out: &mut String) {
    match q {
        BoundQuery::Spec(spec) => explain_spec(spec, opts, depth, out),
        BoundQuery::SetOp {
            op,
            all,
            left,
            right,
        } => {
            indent(out, depth);
            let method = match opts.distinct {
                DistinctMethod::Sort => "sort-merge",
                DistinctMethod::Hash => "hash-count",
            };
            let name = match op {
                SetOp::Intersect => "Intersect",
                SetOp::Except => "Except",
                SetOp::Union => "Union",
            };
            out.push_str(&format!(
                "{name}{} [{method}]\n",
                if *all { "All" } else { "" }
            ));
            explain_query(left, opts, depth + 1, out);
            explain_query(right, opts, depth + 1, out);
        }
    }
}

fn explain_spec(spec: &BoundSpec, opts: &ExecOptions, depth: usize, out: &mut String) {
    if spec.distinct == Distinct::Distinct {
        indent(out, depth);
        out.push_str(match opts.distinct {
            DistinctMethod::Sort => "SortDistinct\n",
            DistinctMethod::Hash => "HashDistinct\n",
        });
        return explain_projection(spec, opts, depth + 1, out);
    }
    explain_projection(spec, opts, depth, out);
}

fn explain_projection(spec: &BoundSpec, opts: &ExecOptions, depth: usize, out: &mut String) {
    indent(out, depth);
    let cols: Vec<String> = spec
        .projection
        .iter()
        .map(|p| spec.attr_name(p.attr))
        .collect();
    out.push_str(&format!("Project [{}]\n", cols.join(", ")));
    explain_pipeline(spec, opts, depth + 1, out);
}

fn explain_pipeline(spec: &BoundSpec, opts: &ExecOptions, depth: usize, out: &mut String) {
    // Mirror Executor's conjunct assignment.
    let conjuncts: Vec<&BoundExpr> = spec
        .predicate
        .as_ref()
        .map(|p| p.conjuncts())
        .unwrap_or_default();
    let hash_joins = opts.join == JoinMethod::Hash && spec.from.len() > 1;
    for (level, table) in spec.from.iter().enumerate().rev() {
        indent(out, depth);
        if level == 0 {
            out.push_str(&format!(
                "Scan {} AS {}\n",
                table.schema.name, table.binding
            ));
        } else {
            let range = table.attr_range();
            let has_equi = conjuncts.iter().any(|c| {
                matches!(
                    c,
                    BoundExpr::Cmp {
                        op: CmpOp::Eq,
                        left: BScalar::Attr(a),
                        right: BScalar::Attr(b),
                    } if a.is_local() && b.is_local()
                        && (range.contains(&a.idx) != range.contains(&b.idx))
                )
            });
            let method = if hash_joins && has_equi {
                "HashJoin"
            } else {
                "NestedLoop"
            };
            out.push_str(&format!(
                "{method} with Scan {} AS {}\n",
                table.schema.name, table.binding
            ));
        }
    }
    // Subqueries, rendered beneath their semi-join marker.
    for c in &conjuncts {
        render_subqueries(c, opts, depth, out);
    }
    if let Some(p) = &spec.predicate {
        indent(out, depth);
        let n = p.conjuncts().len();
        out.push_str(&format!("Filter [{n} conjunct(s)]\n"));
    }
}

fn render_subqueries(e: &BoundExpr, opts: &ExecOptions, depth: usize, out: &mut String) {
    match e {
        BoundExpr::Exists { negated, subquery } => {
            indent(out, depth);
            out.push_str(if *negated {
                "AntiSemiJoin (NOT EXISTS, first-match exit)\n"
            } else {
                "SemiJoin (EXISTS, first-match exit)\n"
            });
            explain_spec(subquery, opts, depth + 1, out);
        }
        BoundExpr::InSubquery {
            subquery, negated, ..
        } => {
            indent(out, depth);
            out.push_str(if *negated {
                "InSubquery (NOT IN, three-valued)\n"
            } else {
                "InSubquery (IN, three-valued)\n"
            });
            explain_spec(subquery, opts, depth + 1, out);
        }
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
            render_subqueries(a, opts, depth, out);
            render_subqueries(b, opts, depth, out);
        }
        BoundExpr::Not(a) => render_subqueries(a, opts, depth, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_schema;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn plan(sql: &str, opts: ExecOptions) -> String {
        let db = supplier_schema().unwrap();
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        explain(&q, &opts)
    }

    #[test]
    fn distinct_join_plan() {
        let p = plan(
            "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            ExecOptions::default(),
        );
        assert!(p.contains("SortDistinct"), "{p}");
        assert!(p.contains("HashJoin with Scan PARTS AS P"), "{p}");
        assert!(p.contains("Scan SUPPLIER AS S"), "{p}");
        assert!(p.contains("Filter [2 conjunct(s)]"), "{p}");
    }

    #[test]
    fn nested_loop_when_no_equi_join() {
        let p = plan(
            "SELECT S.SNO FROM SUPPLIER S, AGENTS A WHERE S.BUDGET > A.ANO",
            ExecOptions::default(),
        );
        assert!(p.contains("NestedLoop"), "{p}");
        assert!(!p.contains("HashJoin"), "{p}");
    }

    #[test]
    fn exists_renders_semijoin() {
        let p = plan(
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            ExecOptions::default(),
        );
        assert!(p.contains("SemiJoin (EXISTS"), "{p}");
        assert!(p.contains("Scan PARTS AS P"), "{p}");
    }

    #[test]
    fn setop_renders_method() {
        let sort = plan(
            "SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT A.SNO FROM AGENTS A",
            ExecOptions::default(),
        );
        assert!(sort.contains("Intersect [sort-merge]"), "{sort}");
        let hash = plan(
            "SELECT S.SNO FROM SUPPLIER S EXCEPT ALL SELECT A.SNO FROM AGENTS A",
            ExecOptions {
                distinct: DistinctMethod::Hash,
                ..Default::default()
            },
        );
        assert!(hash.contains("ExceptAll [hash-count]"), "{hash}");
    }

    #[test]
    fn hash_option_off_forces_nested_loops() {
        let p = plan(
            "SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
            ExecOptions {
                join: JoinMethod::NestedLoop,
                ..Default::default()
            },
        );
        assert!(p.contains("NestedLoop"), "{p}");
    }
}
