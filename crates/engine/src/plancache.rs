//! A sharded, LRU plan cache — the serving layer's memory.
//!
//! [`Session::query`](crate::Session::query) re-parses, re-binds and
//! re-optimizes every statement, including the paper's Algorithm 1
//! CNF→DNF uniqueness tests, even when the same query text arrives over
//! and over. This module amortizes that work the way production engines
//! do: a map from a *normalized query fingerprint* to the optimized
//! [`BoundOutput`] plus its rewrite trace, shared by every thread
//! serving the session.
//!
//! **Keying.** The fingerprint is the FNV-1a hash
//! ([`uniq_types::hash`]) of the canonical printed form of the parsed
//! query (`sql::printer` normalizes whitespace, case and parenthesis
//! noise) mixed with an optimizer-options tag, since differently
//! configured sessions must not share plans. The canonical text is
//! stored in the entry and re-verified on every probe, so a 64-bit hash
//! collision degrades to a cache miss, never a wrong plan. Host-variable
//! queries key naturally: `:X` prints canonically, and variable *values*
//! are supplied at execution, so one cached plan serves every binding.
//!
//! **Invalidation.** Each entry records the
//! [`Database::version`](uniq_catalog::Database::version) it was
//! compiled against. A probe presenting a different version treats the
//! entry as stale, removes it, and counts an invalidation — schema DDL
//! invalidates lazily, with no stop-the-world sweep. All sessions
//! sharing one cache must share one schema history (clones made for
//! read-only fan-out are fine; divergent DDL on clones is not).
//!
//! **Concurrency.** The map is split into [`SHARDS`] shards, each behind
//! its own `std::sync::RwLock`, selected by the fingerprint's high bits.
//! Probes take a shard read lock; recency is an atomic stamp from a
//! cache-global clock, so hits never take a write lock. Inserts take the
//! shard write lock and evict that shard's least-recently-used entry at
//! capacity. Hit/miss/eviction/invalidation counters are atomics,
//! accurate under concurrent load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use uniq_core::pipeline::RewriteTrace;
use uniq_plan::BoundOutput;
use uniq_types::{ColumnName, Fnv64};

/// Number of independently locked shards.
pub const SHARDS: usize = 8;

/// Default total capacity of a session's plan cache.
pub const DEFAULT_CAPACITY: usize = 1024;

/// A compiled, optimized query ready to execute.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The optimized query: body plus aggregation / `ORDER BY` /
    /// `LIMIT` output clauses (empty for the paper's §2 subset).
    pub query: BoundOutput,
    /// The rewrite trace the optimizer produced when compiling it —
    /// steps, per-rule stats and fixpoint shape, served verbatim on
    /// every hit so `EXPLAIN` can show what compilation did.
    pub trace: RewriteTrace,
    /// Output column names (derived from `query`, cached to keep the
    /// hit path allocation-light).
    pub columns: Vec<ColumnName>,
    /// The cost-based physical plan, when the session planned one
    /// (`None` for sessions running on static executor options).
    pub physical: Option<std::sync::Arc<uniq_cost::PhysicalPlan>>,
}

struct Entry {
    /// Full canonical key (printed query + options tag); verified on
    /// every probe so fingerprint collisions cannot serve a wrong plan.
    text: String,
    /// Catalog version the plan was compiled against.
    catalog_version: u64,
    /// Recency stamp from the cache-global clock (atomic so read-locked
    /// probes can update it).
    last_used: AtomicU64,
    plan: std::sync::Arc<CachedPlan>,
}

/// Counter snapshot; see [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that returned a valid plan.
    pub hits: u64,
    /// Probes that found nothing usable.
    pub misses: u64,
    /// Plans stored.
    pub insertions: u64,
    /// Entries evicted to make room (LRU within the shard).
    pub evictions: u64,
    /// Entries dropped because their catalog version was stale.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hits as a fraction of probes, 0.0 when nothing was probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulate another snapshot into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

/// The sharded LRU plan cache. Create one per logical database (a
/// [`Session`](crate::Session) does this for you) and share it freely
/// across threads.
pub struct PlanCache {
    shards: Vec<RwLock<HashMap<u64, Entry>>>,
    /// Per-shard entry budget; 0 disables the cache entirely (every
    /// probe misses, nothing is stored) — the uncached baseline.
    shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding up to `capacity` plans (rounded up to a multiple
    /// of [`SHARDS`]). `capacity == 0` yields a disabled cache: probes
    /// always miss and inserts are dropped, which is the uncached
    /// baseline used by benchmarks.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Total plan capacity.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }

    /// Hash a canonicalized query text once. Callers that probe the
    /// cache repeatedly (or under several option tags) should compute
    /// this interned hash a single time and combine it with each tag via
    /// [`PlanCache::fingerprint_with`] — re-hashing the full SQL text on
    /// every probe is the cost this split removes.
    pub fn sql_hash(canonical: &str) -> u64 {
        uniq_types::fnv64(canonical.as_bytes())
    }

    /// Combine an interned [`PlanCache::sql_hash`] with an options tag
    /// into a cache fingerprint. O(1): two 64-bit words through FNV,
    /// independent of the query text's length.
    pub fn fingerprint_with(sql_hash: u64, options_tag: u64) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(options_tag).write_u64(sql_hash);
        h.finish()
    }

    /// The fingerprint of a canonicalized query under an options tag.
    /// `canonical` should come from printing the parsed AST (so textual
    /// noise — whitespace, case of keywords — has been normalized away),
    /// and `options_tag` distinguishes optimizer configurations.
    /// Equivalent to `fingerprint_with(sql_hash(canonical), options_tag)`;
    /// prefer the split form when the same text is probed more than once.
    pub fn fingerprint(canonical: &str, options_tag: u64) -> u64 {
        PlanCache::fingerprint_with(PlanCache::sql_hash(canonical), options_tag)
    }

    fn shard(&self, fingerprint: u64) -> &RwLock<HashMap<u64, Entry>> {
        // High bits: FNV mixes them well, and the low bits already pick
        // the bucket inside the shard's HashMap.
        &self.shards[(fingerprint >> 59) as usize % SHARDS]
    }

    /// Probe for a plan compiled for `canonical` text (including the
    /// options tag, exactly as passed to [`PlanCache::insert`]) at the
    /// given catalog version. Counts a hit or a miss; stale entries are
    /// removed and counted as invalidations.
    pub fn get(
        &self,
        fingerprint: u64,
        canonical: &str,
        catalog_version: u64,
    ) -> Option<std::sync::Arc<CachedPlan>> {
        if self.shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = self.shard(fingerprint);
        let mut stale = false;
        {
            let map = shard.read().expect("plan cache shard poisoned");
            match map.get(&fingerprint) {
                Some(entry) if entry.text == canonical => {
                    if entry.catalog_version == catalog_version {
                        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                        entry.last_used.store(stamp, Ordering::Relaxed);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(std::sync::Arc::clone(&entry.plan));
                    }
                    stale = true;
                }
                _ => {}
            }
        }
        if stale {
            let mut map = shard.write().expect("plan cache shard poisoned");
            // Re-check under the write lock: another thread may already
            // have replaced the stale entry with a fresh compilation.
            if let Some(entry) = map.get(&fingerprint) {
                if entry.text == canonical && entry.catalog_version != catalog_version {
                    map.remove(&fingerprint);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a compiled plan. At capacity the shard's least-recently
    /// used entry is evicted. A plan for the same fingerprint simply
    /// replaces the old entry (last compilation wins).
    pub fn insert(
        &self,
        fingerprint: u64,
        canonical: &str,
        catalog_version: u64,
        plan: CachedPlan,
    ) {
        if self.shard_capacity == 0 {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let entry = Entry {
            text: canonical.to_string(),
            catalog_version,
            last_used: AtomicU64::new(stamp),
            plan: std::sync::Arc::new(plan),
        };
        let shard = self.shard(fingerprint);
        let mut map = shard.write().expect("plan cache shard poisoned");
        if map.len() >= self.shard_capacity && !map.contains_key(&fingerprint) {
            if let Some((&victim, _)) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(fingerprint, entry);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("plan cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache currently holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("plan cache shard poisoned").clear();
        }
    }

    /// A consistent-enough snapshot of the counters (each counter is
    /// read atomically; the set is not a single atomic snapshot).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> CachedPlan {
        // A minimal bound query to stand in for a real plan.
        let db = uniq_catalog::sample::supplier_database().unwrap();
        let ast = uniq_sql::parse_query("SELECT S.SNO FROM SUPPLIER S").unwrap();
        let query = BoundOutput::plain(uniq_plan::bind_query(db.catalog(), &ast).unwrap());
        CachedPlan {
            columns: query.output_names(),
            query,
            trace: RewriteTrace::default(),
            physical: None,
        }
    }

    #[test]
    fn hit_after_insert_and_miss_before() {
        let cache = PlanCache::new(16);
        let fp = PlanCache::fingerprint("SELECT 1", 0);
        assert!(cache.get(fp, "SELECT 1", 1).is_none());
        cache.insert(fp, "SELECT 1", 1, plan());
        assert!(cache.get(fp, "SELECT 1", 1).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn version_mismatch_invalidates() {
        let cache = PlanCache::new(16);
        let fp = PlanCache::fingerprint("Q", 0);
        cache.insert(fp, "Q", 1, plan());
        assert!(cache.get(fp, "Q", 2).is_none(), "stale plan must not serve");
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.len(), 0, "stale entry removed");
    }

    #[test]
    fn colliding_fingerprint_with_different_text_is_a_miss() {
        let cache = PlanCache::new(16);
        let fp = 0xDEAD_BEEF;
        cache.insert(fp, "QUERY A", 1, plan());
        assert!(cache.get(fp, "QUERY B", 1).is_none());
        assert!(cache.get(fp, "QUERY A", 1).is_some());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        // Capacity rounds up to one entry per shard; overfill a single
        // shard by pinning the fingerprints' shard-selector bits.
        let cache = PlanCache::new(SHARDS);
        let fp = |i: u64| i; // shard selector = high bits = 0 for small i
        cache.insert(fp(1), "Q1", 1, plan());
        cache.insert(fp(2), "Q2", 1, plan());
        // Shard 0 has capacity 1: Q1 was evicted by Q2.
        assert!(cache.get(fp(1), "Q1", 1).is_none());
        assert!(cache.get(fp(2), "Q2", 1).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn recency_protects_hot_entries() {
        let cache = PlanCache::new(2 * SHARDS);
        cache.insert(1, "Q1", 1, plan());
        cache.insert(2, "Q2", 1, plan());
        // Touch Q1 so Q2 is the LRU victim when Q3 arrives.
        assert!(cache.get(1, "Q1", 1).is_some());
        cache.insert(3, "Q3", 1, plan());
        assert!(cache.get(1, "Q1", 1).is_some(), "hot entry survived");
        assert!(cache.get(2, "Q2", 1).is_none(), "cold entry evicted");
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = PlanCache::new(0);
        let fp = PlanCache::fingerprint("Q", 0);
        cache.insert(fp, "Q", 1, plan());
        assert!(cache.get(fp, "Q", 1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn options_tag_separates_configurations() {
        let a = PlanCache::fingerprint("SELECT 1", 0);
        let b = PlanCache::fingerprint("SELECT 1", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn interned_sql_hash_matches_direct_fingerprint() {
        // The split form (hash the text once, mix each tag in O(1))
        // must agree with the one-shot fingerprint for every tag.
        let text = "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto'";
        let h = PlanCache::sql_hash(text);
        for tag in [0, 1, 7, u64::MAX] {
            assert_eq!(
                PlanCache::fingerprint_with(h, tag),
                PlanCache::fingerprint(text, tag)
            );
        }
        // Different texts intern to different hashes.
        assert_ne!(h, PlanCache::sql_hash("SELECT 1"));
    }

    #[test]
    fn concurrent_probes_lose_no_counter_updates() {
        let cache = PlanCache::new(64);
        let fp = PlanCache::fingerprint("HOT", 0);
        cache.insert(fp, "HOT", 1, plan());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        assert!(cache.get(fp, "HOT", 1).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 8 * 1000);
    }
}
