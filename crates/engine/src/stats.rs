//! Execution statistics and executor tuning knobs.

/// How duplicate elimination is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistinctMethod {
    /// Sort the result and collapse adjacent `=̇`-equal runs — the
    /// strategy whose cost the paper's §1 calls "expensive". Default.
    #[default]
    Sort,
    /// Hash-set elimination (ablation; see experiment E12).
    Hash,
}

/// How multi-table blocks are joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMethod {
    /// Build/probe hash tables on available equality conjuncts, falling
    /// back to nested loops when none apply. Default.
    #[default]
    Hash,
    /// Pure nested loops (the naive strategy subquery rewrites avoid).
    NestedLoop,
}

/// Work counters maintained by every operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows read by scans (counted once per iteration over a
    /// stored row, including re-scans in nested loops).
    pub rows_scanned: u64,
    /// Rows produced by the top-level operator.
    pub rows_output: u64,
    /// Comparisons performed by sorts (duplicate elimination and
    /// sort-merge set operations).
    pub sort_comparisons: u64,
    /// Rows fed into sort-based operators.
    pub rows_sorted: u64,
    /// Number of sort operations performed.
    pub sorts: u64,
    /// Hash-table probes performed by hash joins and hash distinct.
    pub hash_probes: u64,
    /// Correlated subquery evaluations (one per outer row tested).
    pub subquery_evals: u64,
    /// Hash joins executed.
    pub hash_joins: u64,
}

impl ExecStats {
    /// Zeroed counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Accumulate another stats block into this one.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_output += other.rows_output;
        self.sort_comparisons += other.sort_comparisons;
        self.rows_sorted += other.rows_sorted;
        self.sorts += other.sorts;
        self.hash_probes += other.hash_probes;
        self.subquery_evals += other.subquery_evals;
        self.hash_joins += other.hash_joins;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = ExecStats {
            rows_scanned: 1,
            sorts: 2,
            ..ExecStats::new()
        };
        let b = ExecStats {
            rows_scanned: 10,
            hash_probes: 5,
            ..ExecStats::new()
        };
        a.absorb(&b);
        assert_eq!(a.rows_scanned, 11);
        assert_eq!(a.sorts, 2);
        assert_eq!(a.hash_probes, 5);
    }

    #[test]
    fn defaults_match_paper_premises() {
        assert_eq!(DistinctMethod::default(), DistinctMethod::Sort);
        assert_eq!(JoinMethod::default(), JoinMethod::Hash);
    }
}
