//! Execution statistics and executor tuning knobs.
//!
//! The physical-method enums moved to `uniq-cost` (the planner chooses
//! them per node); they are re-exported here so existing imports keep
//! working.

pub use uniq_cost::{Degree, DistinctMethod, JoinMethod};

/// Work counters maintained by every operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows read by scans (counted once per iteration over a
    /// stored row, including re-scans in nested loops).
    pub rows_scanned: u64,
    /// Rows produced by the top-level operator.
    pub rows_output: u64,
    /// Comparisons performed by sorts (duplicate elimination and
    /// sort-merge set operations).
    pub sort_comparisons: u64,
    /// Rows fed into sort-based operators.
    pub rows_sorted: u64,
    /// Number of sort operations performed.
    pub sorts: u64,
    /// Hash-table probes performed by hash joins and hash distinct.
    pub hash_probes: u64,
    /// Hash-bucket entries examined while probing joins: a chained
    /// bucket costs one step per entry plus the end-of-chain check,
    /// while the unique-key kernel costs exactly one step per probe
    /// (single slot, first-match exit, no chain to finish).
    pub probe_steps: u64,
    /// Secondary-index probes: one per `IxScan` access and one per
    /// outer partial of an `IxJoin` step. The work they cost lands in
    /// `probe_steps` (exactly one step for a unique index — guaranteed
    /// single-row lookup — otherwise one per matched position plus the
    /// end-of-postings check); this counter just says how often the
    /// index was consulted.
    pub ix_probes: u64,
    /// Correlated subquery evaluations (one per outer row tested).
    pub subquery_evals: u64,
    /// Hash joins executed.
    pub hash_joins: u64,
    /// Morsels (scan ranges and partition tasks) dispatched to parallel
    /// workers; zero on the serial path.
    pub morsels: u64,
    /// Vectorized kernel invocations on the columnar path: one per
    /// (kernel, column chunk) pair, regardless of how many rows the
    /// chunk holds. This is the columnar analogue of per-row operator
    /// dispatch — the whole point of vectorization is that this counter
    /// grows with `rows / MORSEL_SIZE` where the row path's
    /// `rows_scanned` grows with `rows`.
    pub vector_ops: u64,
    /// Rows converted back from column codes to `Value` tuples by late
    /// materialization. Only query output is ever materialized; counted
    /// here so E18 can charge the columnar path for that final copy.
    pub materialized_rows: u64,
    /// Base-table delta rows consumed by incremental view maintenance —
    /// the `|Δ|` that O(Δ) subscription maintenance is linear in.
    pub delta_rows: u64,
    /// Net view changes (insertions plus deletions) emitted by
    /// incremental view maintenance rounds.
    pub view_updates: u64,
    /// Rows fed into an aggregate operator (hash or elided). Hash
    /// grouping additionally books one `hash_probes` per row, and every
    /// un-elided `COUNT(DISTINCT)` argument books one more per
    /// distinct-set insert; the key-elided one-pass and the global
    /// (no `GROUP BY`) single group book zero — the gaps E23 measures.
    pub agg_rows: u64,
    /// Early terminations taken: an `ORDER BY key-prefix LIMIT k` query
    /// served from an ordered index that stopped before exhausting the
    /// table.
    pub early_stops: u64,
    /// Rows examined by an early-stopping Top-K index scan before it
    /// cut off — the "rows-examined ≈ k" proof E23 asserts against the
    /// full table size.
    pub topk_rows_examined: u64,
}

impl ExecStats {
    /// Zeroed counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Accumulate another stats block into this one. Counters are all
    /// sums, so merging is associative and commutative — the batch
    /// driver folds per-worker tallies and the parallel executor folds
    /// per-morsel tallies through this one function. The exhaustive
    /// destructuring means a newly added counter cannot be silently
    /// dropped here: the compiler rejects the pattern until it is
    /// merged too.
    pub fn merge(&mut self, other: &ExecStats) {
        let ExecStats {
            rows_scanned,
            rows_output,
            sort_comparisons,
            rows_sorted,
            sorts,
            hash_probes,
            probe_steps,
            ix_probes,
            subquery_evals,
            hash_joins,
            morsels,
            vector_ops,
            materialized_rows,
            delta_rows,
            view_updates,
            agg_rows,
            early_stops,
            topk_rows_examined,
        } = *other;
        self.rows_scanned += rows_scanned;
        self.rows_output += rows_output;
        self.sort_comparisons += sort_comparisons;
        self.rows_sorted += rows_sorted;
        self.sorts += sorts;
        self.hash_probes += hash_probes;
        self.probe_steps += probe_steps;
        self.ix_probes += ix_probes;
        self.subquery_evals += subquery_evals;
        self.hash_joins += hash_joins;
        self.morsels += morsels;
        self.vector_ops += vector_ops;
        self.materialized_rows += materialized_rows;
        self.delta_rows += delta_rows;
        self.view_updates += view_updates;
        self.agg_rows += agg_rows;
        self.early_stops += early_stops;
        self.topk_rows_examined += topk_rows_examined;
    }
}

/// Wall-clock nanoseconds spent in each serving stage of a query (or,
/// after [`StageTimings::absorb`], of a whole batch). Cache hits skip
/// the bind and optimize stages entirely, which is where the paper's
/// Algorithm 1 CNF→DNF conversion lives — these counters make that
/// saving visible in the bench report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Time tokenizing and parsing SQL text.
    pub parse_ns: u64,
    /// Time name-resolving and type-checking the AST.
    pub bind_ns: u64,
    /// Time in the rewrite pipeline (uniqueness tests included).
    pub optimize_ns: u64,
    /// Time executing the final plan.
    pub execute_ns: u64,
}

impl StageTimings {
    /// Zeroed timings.
    pub fn new() -> StageTimings {
        StageTimings::default()
    }

    /// Accumulate another timing block into this one.
    pub fn absorb(&mut self, other: &StageTimings) {
        self.parse_ns += other.parse_ns;
        self.bind_ns += other.bind_ns;
        self.optimize_ns += other.optimize_ns;
        self.execute_ns += other.execute_ns;
    }

    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.parse_ns + self.bind_ns + self.optimize_ns + self.execute_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timings_absorb_and_total() {
        let mut a = StageTimings {
            parse_ns: 1,
            bind_ns: 2,
            optimize_ns: 3,
            execute_ns: 4,
        };
        a.absorb(&StageTimings {
            parse_ns: 10,
            ..StageTimings::new()
        });
        assert_eq!(a.parse_ns, 11);
        assert_eq!(a.total_ns(), 20);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = ExecStats {
            rows_scanned: 1,
            sorts: 2,
            ..ExecStats::new()
        };
        let b = ExecStats {
            rows_scanned: 10,
            hash_probes: 5,
            probe_steps: 7,
            morsels: 3,
            vector_ops: 6,
            materialized_rows: 8,
            delta_rows: 4,
            view_updates: 2,
            agg_rows: 9,
            early_stops: 1,
            topk_rows_examined: 12,
            ..ExecStats::new()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 11);
        assert_eq!(a.sorts, 2);
        assert_eq!(a.hash_probes, 5);
        assert_eq!(a.probe_steps, 7);
        assert_eq!(a.morsels, 3);
        assert_eq!(a.vector_ops, 6);
        assert_eq!(a.materialized_rows, 8);
        assert_eq!(a.delta_rows, 4);
        assert_eq!(a.view_updates, 2);
        assert_eq!(a.agg_rows, 9);
        assert_eq!(a.early_stops, 1);
        assert_eq!(a.topk_rows_examined, 12);
    }

    #[test]
    fn merge_is_associative() {
        let blocks = [
            ExecStats {
                rows_scanned: 3,
                hash_joins: 1,
                ..ExecStats::new()
            },
            ExecStats {
                probe_steps: 9,
                morsels: 2,
                ..ExecStats::new()
            },
            ExecStats {
                sort_comparisons: 4,
                subquery_evals: 5,
                ..ExecStats::new()
            },
        ];
        // ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)): workers may fold in any order.
        let mut left = blocks[0];
        left.merge(&blocks[1]);
        left.merge(&blocks[2]);
        let mut bc = blocks[1];
        bc.merge(&blocks[2]);
        let mut right = blocks[0];
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn defaults_match_paper_premises() {
        assert_eq!(DistinctMethod::default(), DistinctMethod::Sort);
        assert_eq!(JoinMethod::default(), JoinMethod::Hash);
    }
}
