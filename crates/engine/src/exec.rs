//! The block executor.
//!
//! A bound block `π_d[A](σ[C](T0 × T1 × …))` executes as a left-deep
//! pipeline over the `FROM` tables. Each top-level conjunct of `C` is
//! assigned to the earliest pipeline position at which all the attributes
//! it references are bound, so selections are pushed down as far as the
//! conjunct structure allows. When two consecutive positions are linked by
//! an equality conjunct and [`JoinMethod::Hash`] is selected, the join
//! runs as a build/probe hash join (`NULL` join keys excluded on both
//! sides, per `WHERE`-clause `=` semantics); otherwise nested loops.
//!
//! `EXISTS` evaluation uses the same machinery with a row limit of one —
//! first-match early exit, the behaviour §6's navigational arguments rely
//! on.

use crate::setops::{combine_setop, distinct};
use crate::stats::{Degree, DistinctMethod, ExecStats, JoinMethod};
use std::collections::HashMap;
use uniq_catalog::{Database, Row};
use uniq_cost::{
    find_index_probe, find_index_sarg, BlockPlan, IndexProbe, Justification, OutputOp, PhysNode,
    PhysicalPlan, ProbeSource,
};
use uniq_plan::{
    AttrRef, BScalar, BoundExpr, BoundOutput, BoundQuery, BoundSpec, FromTable, HostVars,
};
use uniq_sql::CmpOp;
use uniq_types::{Error, Result, Tri, Value};

/// Executor tuning (which physical strategies to use).
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Duplicate-elimination strategy.
    pub distinct: DistinctMethod,
    /// Join strategy for multi-table blocks.
    pub join: JoinMethod,
    /// Worker budget for morsel-driven parallel execution (see
    /// [`crate::parallel`]). The default is [`Degree::Serial`]: the
    /// single-threaded path is the correctness oracle the parallel one
    /// is tested against, and work counters stay exactly reproducible.
    pub degree: Degree,
    /// Allow the unique-key hash-join kernel when the build side's join
    /// keys cover one of its candidate keys (no bucket chains, probe
    /// stops at the first match). Off = always chain (ablation).
    pub unique_kernels: bool,
    /// Allow `ORDER BY key-prefix LIMIT k` queries to walk an ordered
    /// index and stop after `k` emitted rows instead of scanning,
    /// sorting and truncating. Off = always scan + sort (the oracle the
    /// early-stopping path is tested against, and the E23 baseline).
    pub early_stop: bool,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            distinct: DistinctMethod::default(),
            join: JoinMethod::default(),
            degree: Degree::Serial,
            unique_kernels: true,
            early_stop: true,
        }
    }
}

/// Executes bound queries against a database.
pub struct Executor<'a> {
    pub(crate) db: &'a Database,
    pub(crate) hostvars: &'a HostVars,
    pub(crate) opts: ExecOptions,
    /// Columnar encodings of the database, when the session built them
    /// (see [`crate::columnar::ColumnStore`]). Blocks the planner marked
    /// columnar execute on the vectorized kernels when the store is
    /// fresh; everything else (and every run without a store) uses the
    /// row pipeline below, which remains the oracle.
    columns: Option<&'a crate::columnar::ColumnStore>,
    /// Work counters, accumulated across the whole run.
    pub stats: ExecStats,
    /// Per-operator output counts, parallel to the physical plan's
    /// operator registry (empty when running without a plan).
    actuals: Vec<u64>,
}

impl<'a> Executor<'a> {
    /// A fresh executor.
    pub fn new(db: &'a Database, hostvars: &'a HostVars, opts: ExecOptions) -> Executor<'a> {
        Executor {
            db,
            hostvars,
            opts,
            columns: None,
            stats: ExecStats::new(),
            actuals: Vec::new(),
        }
    }

    /// Attach a columnar store for this run. Only blocks whose
    /// [`BlockPlan::columnar`] flag is set consult it, and only after
    /// the store proves fresh against the live database.
    pub fn with_columns(
        mut self,
        columns: Option<&'a crate::columnar::ColumnStore>,
    ) -> Executor<'a> {
        self.columns = columns;
        self
    }

    /// Execute a query, returning its result rows. Physical strategies
    /// come from the session-static [`ExecOptions`].
    pub fn run(&mut self, query: &BoundQuery) -> Result<Vec<Row>> {
        self.run_with_plan(query, None)
    }

    /// Execute a query, taking per-node physical choices (join order,
    /// join method, distinct method) from `plan` when one is supplied
    /// and recording each operator's actual output cardinality (see
    /// [`Executor::actuals`]). Without a plan, behaves like
    /// [`Executor::run`].
    pub fn run_with_plan(
        &mut self,
        query: &BoundQuery,
        plan: Option<&PhysicalPlan>,
    ) -> Result<Vec<Row>> {
        if let Some(p) = plan {
            self.actuals = vec![0; p.ops.len()];
        }
        let rows = self.exec_query(query, &[], plan.map(|p| &p.root))?;
        self.stats.rows_output += rows.len() as u64;
        Ok(rows)
    }

    /// Execute a full query — body plus aggregation / `ORDER BY` /
    /// `LIMIT` output clauses — optionally under a physical plan whose
    /// [`OutputOp`]s get their actual
    /// cardinalities recorded.
    ///
    /// Fast paths, in order:
    ///
    /// 1. **Early-stop Top-K** — a plain `ORDER BY key-prefix LIMIT k`
    ///    whose license re-derives against the live catalog walks the
    ///    ordered index and stops after `k` emitted rows (books
    ///    `early_stops` / `topk_rows_examined`).
    /// 2. **Columnar aggregation** — an aggregate over a block the
    ///    planner marked columnar groups on dictionary codes without
    ///    materializing body rows.
    /// 3. **Row aggregation** — hash grouping, or the proof-elided
    ///    zero-hash one-pass, morsel-parallel above one morsel.
    ///
    /// Then sort (engine total order, `NULL`s first) and limit.
    pub fn run_output(
        &mut self,
        output: &BoundOutput,
        plan: Option<&PhysicalPlan>,
    ) -> Result<Vec<Row>> {
        if let Some(plain) = output.as_plain() {
            return self.run_with_plan(plain, plan);
        }
        if let Some(p) = plan {
            self.actuals = vec![0; p.ops.len()];
        }

        // Early-stop Top-K. The license is re-derived from the bound
        // output (cheap — pure catalog inspection) rather than trusted
        // from the plan, and `early_stop_topk` still verifies the
        // named index against the live catalog before probing.
        if self.opts.early_stop {
            if let (Some(k), Some(license)) = (output.limit, uniq_cost::early_stop_license(output))
            {
                if let Some(rows) = self.early_stop_topk(output, &license, k)? {
                    if let Some(p) = plan {
                        for op in &p.output {
                            if let OutputOp::Limit { id, .. } = op {
                                self.record(*id, rows.len());
                            }
                        }
                    }
                    self.stats.rows_output += rows.len() as u64;
                    return Ok(rows);
                }
            }
        }

        let mut rows = None;
        if let Some(agg) = &output.agg {
            // Columnar aggregate: dictionary-coded group keys, no body
            // materialization. Same coverage gate as the plain path.
            if let (Some(spec), Some(store), Some(p)) = (output.body.as_spec(), self.columns, plan)
            {
                if let PhysNode::Block(bp) = &p.root {
                    if bp.columnar && plan_matches(bp, spec) {
                        rows = crate::columnar::exec_block_agg(self, store, spec, bp, agg)?;
                    }
                }
            }
            if rows.is_none() {
                let body = self.exec_query(&output.body, &[], plan.map(|p| &p.root))?;
                let deg = plan
                    .and_then(|p| {
                        p.output.iter().find_map(|op| match op {
                            OutputOp::Agg { deg, .. } => Some(*deg),
                            _ => None,
                        })
                    })
                    .unwrap_or_else(|| self.static_degree(&[]));
                rows = Some(crate::agg::aggregate_rows(agg, body, deg, &mut self.stats)?);
            }
        }
        let mut rows = match rows {
            Some(r) => r,
            None => self.exec_query(&output.body, &[], plan.map(|p| &p.root))?,
        };
        if output.agg.is_some() {
            if let Some(p) = plan {
                for op in &p.output {
                    if let OutputOp::Agg { id, .. } = op {
                        self.record(*id, rows.len());
                    }
                }
            }
        }

        if !output.order_by.is_empty() {
            self.sort_rows(&mut rows, &output.order_by)?;
            if let Some(p) = plan {
                for op in &p.output {
                    if let OutputOp::Sort { id } = op {
                        self.record(*id, rows.len());
                    }
                }
            }
        }

        if let Some(k) = output.limit {
            rows.truncate(k.min(usize::MAX as u64) as usize);
            if let Some(p) = plan {
                for op in &p.output {
                    if let OutputOp::Limit { id, .. } = op {
                        self.record(*id, rows.len());
                    }
                }
            }
        }

        self.stats.rows_output += rows.len() as u64;
        Ok(rows)
    }

    /// Serve `ORDER BY key-prefix LIMIT k` by walking the licensed
    /// ordered index in canonical key order (`NULL`s first — exactly
    /// the engine's sort order) and stopping as soon as `k` rows pass
    /// the residual filter. `Ok(None)` means the license no longer
    /// holds against the live catalog: the caller scans, sorts and
    /// truncates instead, so a dropped index costs speed, never rows.
    fn early_stop_topk(
        &mut self,
        output: &BoundOutput,
        license: &Justification,
        k: u64,
    ) -> Result<Option<Vec<Row>>> {
        let Some(spec) = output.body.as_spec() else {
            return Ok(None);
        };
        let table = &spec.from[0];
        let Some(index) = license.index() else {
            return Ok(None);
        };
        if !self.index_fresh(table, index) {
            return Ok(None);
        }
        let db = self.db;
        let ids = db.index_range(
            &table.schema.name,
            index,
            &[],
            std::ops::Bound::Unbounded,
            std::ops::Bound::Unbounded,
        )?;
        self.stats.ix_probes += 1;
        let all = db.rows(&table.schema.name)?;
        let mut out: Vec<Row> = Vec::new();
        let mut examined = 0u64;
        for &r in &ids {
            let tuple = &all[r];
            examined += 1;
            self.stats.rows_scanned += 1;
            if let Some(pred) = &spec.predicate {
                if self.eval(pred, &[], tuple)? != Tri::True {
                    continue;
                }
            }
            out.push(
                spec.projection
                    .iter()
                    .map(|p| tuple[p.attr].clone())
                    .collect(),
            );
            if out.len() as u64 >= k {
                break;
            }
        }
        self.stats.topk_rows_examined += examined;
        if (examined as usize) < ids.len() {
            self.stats.early_stops += 1;
        }
        Ok(Some(out))
    }

    /// Stable sort by the output positions in `order` under the engine
    /// total order (`NULL`s first), booking sort work like the
    /// duplicate-elimination sorts do.
    fn sort_rows(&mut self, rows: &mut [Row], order: &[(usize, bool)]) -> Result<()> {
        self.stats.sorts += 1;
        self.stats.rows_sorted += rows.len() as u64;
        let mut cmps = 0u64;
        let mut err = None;
        rows.sort_by(|a, b| {
            cmps += 1;
            for &(p, desc) in order {
                match a[p].null_cmp(&b[p]) {
                    Ok(std::cmp::Ordering::Equal) => continue,
                    Ok(o) => return if desc { o.reverse() } else { o },
                    Err(e) => {
                        err.get_or_insert(e);
                        return std::cmp::Ordering::Equal;
                    }
                }
            }
            std::cmp::Ordering::Equal
        });
        self.stats.sort_comparisons += cmps;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Measured per-operator output cardinalities of the last
    /// [`Executor::run_with_plan`] call, indexed by the plan's
    /// [`OpId`](uniq_cost::OpId)s (empty when no plan was supplied).
    pub fn actuals(&self) -> &[u64] {
        &self.actuals
    }

    pub(crate) fn record(&mut self, id: usize, count: usize) {
        if let Some(slot) = self.actuals.get_mut(id) {
            *slot = count as u64;
        }
    }

    /// A fresh single-threaded executor over the same database, host
    /// variables and options (degree forced to serial). Parallel workers
    /// use one each to evaluate predicates — correlated subqueries
    /// included — without spawning nested pools; the worker's counters
    /// are merged back afterwards.
    pub(crate) fn serial_worker(&self) -> Executor<'a> {
        let mut opts = self.opts;
        opts.degree = Degree::Serial;
        Executor::new(self.db, self.hostvars, opts)
    }

    /// Worker budget on the static (non-cost-based) path: the session
    /// degree at the top level, serial inside correlated evaluation
    /// (non-empty outer scopes) — each parallel worker already owns the
    /// subquery it is evaluating.
    fn static_degree(&self, outer: &[Vec<Value>]) -> usize {
        if outer.is_empty() {
            self.opts.degree.resolve()
        } else {
            1
        }
    }

    fn exec_query(
        &mut self,
        query: &BoundQuery,
        outer: &[Vec<Value>],
        node: Option<&PhysNode>,
    ) -> Result<Vec<Row>> {
        match query {
            BoundQuery::Spec(spec) => {
                let block = match node {
                    Some(PhysNode::Block(b)) => Some(b),
                    _ => None,
                };
                self.exec_spec(spec, outer, block)
            }
            BoundQuery::SetOp {
                op,
                all,
                left,
                right,
            } => {
                // A plan node is used only when it mirrors the query
                // shape; a mismatch falls back to static options.
                let (l_node, r_node, method, id, deg) = match node {
                    Some(PhysNode::SetOp {
                        method,
                        id,
                        deg,
                        left: l,
                        right: r,
                    }) => (Some(l.as_ref()), Some(r.as_ref()), *method, Some(*id), *deg),
                    _ => (
                        None,
                        None,
                        self.opts.distinct,
                        None,
                        self.static_degree(outer),
                    ),
                };
                let deg = if outer.is_empty() { deg } else { 1 };
                let l = self.exec_query(left, outer, l_node)?;
                let r = self.exec_query(right, outer, r_node)?;
                let out = if deg > 1 {
                    crate::parallel::par_setop(*op, *all, l, r, method, deg, &mut self.stats)?
                } else {
                    combine_setop(*op, *all, l, r, method, &mut self.stats)?
                };
                if let Some(id) = id {
                    self.record(id, out.len());
                }
                Ok(out)
            }
        }
    }

    fn exec_spec(
        &mut self,
        spec: &BoundSpec,
        outer: &[Vec<Value>],
        plan: Option<&BlockPlan>,
    ) -> Result<Vec<Row>> {
        // Columnar fast path: only for top-level blocks the planner
        // marked columnar, and only when the store covers the block and
        // is fresh — `exec_block` returning `None` means "not covered",
        // and the row pipeline below handles the block as always.
        if let (Some(bp), Some(store)) = (plan, self.columns) {
            if bp.columnar && outer.is_empty() && plan_matches(bp, spec) {
                if let Some(rows) = crate::columnar::exec_block(self, store, spec, bp)? {
                    return Ok(rows);
                }
            }
        }
        let product = self.block_rows(spec, outer, plan)?;
        let mut rows: Vec<Row> = product
            .into_iter()
            .map(|tuple| {
                spec.projection
                    .iter()
                    .map(|p| tuple[p.attr].clone())
                    .collect()
            })
            .collect();
        if let Some(bp) = plan {
            self.record(bp.project, rows.len());
        }
        if spec.distinct == uniq_sql::Distinct::Distinct {
            let step = plan.and_then(|bp| bp.distinct);
            let method = step.map(|d| d.method).unwrap_or(self.opts.distinct);
            let deg = if outer.is_empty() {
                step.map(|d| d.deg)
                    .unwrap_or_else(|| self.static_degree(outer))
            } else {
                1
            };
            rows = if deg > 1 {
                crate::parallel::par_distinct(rows, method, deg, &mut self.stats)?
            } else {
                distinct(rows, method, &mut self.stats)?
            };
            if let Some(d) = step {
                self.record(d.id, rows.len());
            }
        }
        Ok(rows)
    }

    /// Materialize the filtered Cartesian product of a block (full-arity
    /// tuples, before projection).
    fn block_rows(
        &mut self,
        spec: &BoundSpec,
        outer: &[Vec<Value>],
        plan: Option<&BlockPlan>,
    ) -> Result<Vec<Row>> {
        if let Some(bp) = plan {
            if plan_matches(bp, spec) {
                return self.block_rows_planned(spec, outer, bp);
            }
        }
        let deg = self.static_degree(outer);
        if deg > 1 && !spec.from.is_empty() {
            return crate::parallel::block_rows_static(self, spec, outer, deg);
        }
        if self.opts.join == JoinMethod::Hash && spec.from.len() > 1 {
            self.block_rows_hash(spec, outer)
        } else {
            let mut out = Vec::new();
            self.enumerate(spec, outer, None, &mut out)?;
            Ok(out)
        }
    }

    /// Does the block produce at least one row? First-match early exit.
    fn block_exists(&mut self, spec: &BoundSpec, outer: &[Vec<Value>]) -> Result<bool> {
        let mut out = Vec::new();
        self.enumerate(spec, outer, Some(1), &mut out)?;
        Ok(!out.is_empty())
    }

    // --- conjunct assignment -------------------------------------------

    /// Cumulative attribute width after each table position.
    pub(crate) fn prefix_widths(spec: &BoundSpec) -> Vec<usize> {
        let mut widths = Vec::with_capacity(spec.from.len());
        let mut acc = 0;
        for t in &spec.from {
            acc += t.schema.arity();
            widths.push(acc);
        }
        widths
    }

    /// The smallest bound-attribute prefix a conjunct needs before it can
    /// be evaluated (0 = no local references at all, including through
    /// correlated subqueries).
    fn required_prefix(conjunct: &BoundExpr) -> usize {
        let mut required = 0usize;
        let mut probe = conjunct.clone();
        crate::exec::map_all_attr_refs(&mut probe, &mut |depth, a| {
            if a.up == depth {
                required = required.max(a.idx + 1);
            }
        });
        required
    }

    /// Assign each top-level conjunct to the earliest pipeline level where
    /// it is evaluable.
    pub(crate) fn assign_conjuncts<'e>(
        spec: &'e BoundSpec,
        widths: &[usize],
    ) -> Vec<Vec<&'e BoundExpr>> {
        let mut levels: Vec<Vec<&BoundExpr>> = vec![Vec::new(); spec.from.len()];
        if let Some(pred) = &spec.predicate {
            for c in pred.conjuncts() {
                let req = Self::required_prefix(c);
                let level = widths
                    .iter()
                    .position(|&w| w >= req)
                    .unwrap_or(spec.from.len() - 1);
                levels[level].push(c);
            }
        }
        levels
    }

    // --- nested-loop enumeration ---------------------------------------

    fn enumerate(
        &mut self,
        spec: &BoundSpec,
        outer: &[Vec<Value>],
        limit: Option<usize>,
        out: &mut Vec<Row>,
    ) -> Result<()> {
        if spec.from.is_empty() {
            return Err(Error::internal("block with empty FROM clause"));
        }
        let widths = Self::prefix_widths(spec);
        let levels = Self::assign_conjuncts(spec, &widths);
        let mut scratch = vec![Value::Null; spec.product_arity()];
        self.enumerate_level(spec, outer, &levels, 0, &mut scratch, limit, out)
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_level(
        &mut self,
        spec: &BoundSpec,
        outer: &[Vec<Value>],
        levels: &[Vec<&BoundExpr>],
        level: usize,
        scratch: &mut Vec<Value>,
        limit: Option<usize>,
        out: &mut Vec<Row>,
    ) -> Result<()> {
        if level == spec.from.len() {
            out.push(scratch.clone());
            return Ok(());
        }
        let table = &spec.from[level];
        let db = self.db;
        let rows = db.rows(&table.schema.name)?;
        let offset = table.offset;
        'rows: for row in rows {
            if limit.is_some_and(|l| out.len() >= l) {
                return Ok(());
            }
            self.stats.rows_scanned += 1;
            scratch[offset..offset + row.len()].clone_from_slice(row);
            for conjunct in &levels[level] {
                let t = self.eval(conjunct, outer, scratch)?;
                if !t.false_interpreted() {
                    continue 'rows;
                }
            }
            self.enumerate_level(spec, outer, levels, level + 1, scratch, limit, out)?;
        }
        Ok(())
    }

    // --- hash-join pipeline ---------------------------------------------

    fn block_rows_hash(&mut self, spec: &BoundSpec, outer: &[Vec<Value>]) -> Result<Vec<Row>> {
        let widths = Self::prefix_widths(spec);
        let levels = Self::assign_conjuncts(spec, &widths);
        let arity = spec.product_arity();

        // Level 0: filtered scan.
        let t0 = &spec.from[0];
        let mut partials: Vec<Row> = Vec::new();
        {
            let db = self.db;
            let rows = db.rows(&t0.schema.name)?;
            let mut scratch = vec![Value::Null; arity];
            'rows: for row in rows {
                self.stats.rows_scanned += 1;
                scratch[t0.offset..t0.offset + row.len()].clone_from_slice(row);
                for c in &levels[0] {
                    if !self.eval(c, outer, &scratch)?.false_interpreted() {
                        continue 'rows;
                    }
                }
                partials.push(scratch.clone());
            }
        }

        for (level, table) in spec.from.iter().enumerate().skip(1) {
            let range = table.attr_range();
            partials = self.hash_step(table, outer, partials, &levels[level], arity, &|idx| {
                idx < range.start
            })?;
        }
        Ok(partials)
    }

    /// One step of the hash pipeline: join `table` onto `partials` using
    /// this level's conjuncts. Equality conjuncts linking an
    /// already-bound attribute (per `is_placed`) to the new table become
    /// hash keys; conjuncts touching only the new table filter its build
    /// side; the rest run as residual filters over the combined tuples.
    /// Without any key the step degrades to a Cartesian product with the
    /// (still filtered, still materialized-once) build side.
    fn hash_step(
        &mut self,
        table: &FromTable,
        outer: &[Vec<Value>],
        partials: Vec<Row>,
        conjuncts: &[&BoundExpr],
        arity: usize,
        is_placed: &dyn Fn(usize) -> bool,
    ) -> Result<Vec<Row>> {
        let range = table.attr_range();
        let StepConjuncts {
            self_conj,
            join_keys,
            residual,
        } = classify_step_conjuncts(conjuncts, &range, is_placed);

        // Build side: filtered rows of the new table, placed into an
        // otherwise-null scratch (self_conj only touches new attrs).
        let mut build: Vec<Row> = Vec::new();
        {
            let db = self.db;
            let rows = db.rows(&table.schema.name)?;
            let mut scratch = vec![Value::Null; arity];
            'rows: for row in rows {
                self.stats.rows_scanned += 1;
                scratch[range.start..range.end].clone_from_slice(row);
                for c in &self_conj {
                    if !self.eval(c, outer, &scratch)?.false_interpreted() {
                        continue 'rows;
                    }
                }
                build.push(row.clone());
            }
        }

        let mut next: Vec<Row> = Vec::new();
        if join_keys.is_empty() {
            // Cartesian with the build side.
            for partial in &partials {
                for row in &build {
                    let mut tuple = partial.clone();
                    tuple[range.start..range.end].clone_from_slice(row);
                    next.push(tuple);
                }
            }
        } else {
            self.stats.hash_joins += 1;
            // Hash the build side on its key columns; NULL keys never
            // match under WHERE `=` and are excluded.
            let mut table_map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            'build: for (i, row) in build.iter().enumerate() {
                let mut key = Vec::with_capacity(join_keys.len());
                for &(_, new_attr) in &join_keys {
                    let v = &row[new_attr - range.start];
                    if v.is_null() {
                        continue 'build;
                    }
                    key.push(v.clone());
                }
                table_map.entry(key).or_default().push(i);
            }
            'probe: for partial in &partials {
                let mut key = Vec::with_capacity(join_keys.len());
                for &(built_attr, _) in &join_keys {
                    let v = &partial[built_attr];
                    if v.is_null() {
                        continue 'probe;
                    }
                    key.push(v.clone());
                }
                self.stats.hash_probes += 1;
                match table_map.get(&key) {
                    Some(matches) => {
                        // Chained bucket: one step per entry plus the
                        // end-of-chain check.
                        self.stats.probe_steps += matches.len() as u64 + 1;
                        for &i in matches {
                            let mut tuple = partial.clone();
                            tuple[range.start..range.end].clone_from_slice(&build[i]);
                            next.push(tuple);
                        }
                    }
                    None => self.stats.probe_steps += 1,
                }
            }
        }

        // Residual conjuncts.
        if !residual.is_empty() {
            let mut filtered = Vec::with_capacity(next.len());
            'tuples: for tuple in next {
                for c in &residual {
                    if !self.eval(c, outer, &tuple)?.false_interpreted() {
                        continue 'tuples;
                    }
                }
                filtered.push(tuple);
            }
            next = filtered;
        }
        Ok(next)
    }

    // --- cost-based pipeline ---------------------------------------------

    /// Execute a block following a cost-based [`BlockPlan`]: the
    /// planner's join input order, its per-step join methods, and
    /// per-operator actual-output recording.
    fn block_rows_planned(
        &mut self,
        spec: &BoundSpec,
        outer: &[Vec<Value>],
        bp: &BlockPlan,
    ) -> Result<Vec<Row>> {
        let arity = spec.product_arity();
        let n = spec.from.len();

        // Assign each top-level conjunct to the earliest *planned*
        // position at which every table it references is bound
        // (references from nested subqueries included — they see this
        // block's attributes as correlated outers).
        let mut pos = vec![0usize; n];
        for (k, &t) in bp.order.iter().enumerate() {
            pos[t] = k;
        }
        let mut levels: Vec<Vec<&BoundExpr>> = vec![Vec::new(); n];
        if let Some(pred) = &spec.predicate {
            for c in pred.conjuncts() {
                let mut level = 0usize;
                let mut probe = c.clone();
                map_all_attr_refs(&mut probe, &mut |depth, a| {
                    if a.up == depth {
                        let owner = spec
                            .from
                            .iter()
                            .position(|ft| ft.attr_range().contains(&a.idx));
                        if let Some(at) = owner {
                            level = level.max(pos[at]);
                        }
                    }
                });
                levels[level].push(c);
            }
        }

        // First table of the planned order: filtered scan. Planned
        // degrees apply only at the top level — correlated evaluation
        // (non-empty outer scopes) stays serial per worker.
        let t0 = &spec.from[bp.order[0]];
        let scan_deg = if outer.is_empty() { bp.scan_deg } else { 1 };
        // Planned index access path: re-derive the sarg and serve the
        // scan from the index when the license still holds.
        let ix_rows = match &bp.ixscan {
            Some(info) if scan_deg <= 1 => {
                self.ix_scan(spec, bp.order[0], &levels[0], info, outer)?
            }
            _ => None,
        };
        let mut partials: Vec<Row>;
        if let Some(rows) = ix_rows {
            partials = rows;
        } else if scan_deg > 1 {
            let (rows, s) =
                crate::parallel::par_scan(self, t0, &levels[0], outer, arity, scan_deg)?;
            self.stats.merge(&s);
            partials = rows;
        } else {
            partials = Vec::new();
            let db = self.db;
            let rows = db.rows(&t0.schema.name)?;
            let mut scratch = vec![Value::Null; arity];
            'rows: for row in rows {
                self.stats.rows_scanned += 1;
                scratch[t0.offset..t0.offset + row.len()].clone_from_slice(row);
                for c in &levels[0] {
                    if !self.eval(c, outer, &scratch)?.false_interpreted() {
                        continue 'rows;
                    }
                }
                partials.push(scratch.clone());
            }
        }
        self.record(bp.scan, partials.len());

        let mut placed: Vec<std::ops::Range<usize>> = vec![t0.attr_range()];
        for (k, &t) in bp.order.iter().enumerate().skip(1) {
            let step = &bp.joins[k - 1];
            let table = &spec.from[t];
            let range = table.attr_range();
            let deg = if outer.is_empty() { step.deg } else { 1 };
            // Planned index-nested-loop probe: the plan names the index,
            // but the probe key is re-derived here and checked against
            // the live catalog — on any disagreement the step falls
            // back to its planned join method below.
            let probe = match &step.ix {
                Some(info) if deg <= 1 => find_index_probe(spec, t, &levels[k], &|idx| {
                    placed.iter().any(|r| r.contains(&idx))
                })
                .filter(|p| {
                    Some(p.index.as_str()) == info.index() && self.index_fresh(table, &p.index)
                }),
                _ => None,
            };
            if let Some(p) = probe {
                partials = self.ix_join_step(table, outer, partials, &levels[k], &p)?;
                placed.push(range);
                self.record(step.id, partials.len());
                continue;
            }
            match step.method {
                JoinMethod::NestedLoop if deg > 1 => {
                    let (next, s) = crate::parallel::par_nl_step(
                        self, table, outer, partials, &levels[k], deg,
                    )?;
                    self.stats.merge(&s);
                    partials = next;
                }
                JoinMethod::NestedLoop => {
                    // Re-scan the table once per outer partial; every
                    // conjunct of this level runs on the combined tuple.
                    let db = self.db;
                    let rows = db.rows(&table.schema.name)?;
                    let mut next = Vec::new();
                    for partial in &partials {
                        'rows: for row in rows {
                            self.stats.rows_scanned += 1;
                            let mut tuple = partial.clone();
                            tuple[range.start..range.end].clone_from_slice(row);
                            for c in &levels[k] {
                                if !self.eval(c, outer, &tuple)?.false_interpreted() {
                                    continue 'rows;
                                }
                            }
                            next.push(tuple);
                        }
                    }
                    partials = next;
                }
                JoinMethod::Hash if deg > 1 => {
                    let (next, s) = crate::parallel::par_hash_step(
                        self,
                        table,
                        outer,
                        partials,
                        &levels[k],
                        arity,
                        &|idx| placed.iter().any(|r| r.contains(&idx)),
                        deg,
                        Some(step.unique),
                    )?;
                    self.stats.merge(&s);
                    partials = next;
                }
                JoinMethod::Hash => {
                    partials =
                        self.hash_step(table, outer, partials, &levels[k], arity, &|idx| {
                            placed.iter().any(|r| r.contains(&idx))
                        })?;
                }
            }
            placed.push(range);
            self.record(step.id, partials.len());
        }
        Ok(partials)
    }

    // --- index access paths ----------------------------------------------

    /// Does the live catalog still carry exactly the index definition
    /// this spec was bound (and planned) against? Guards every planned
    /// index access: a cached plan can outlive a table re-creation.
    fn index_fresh(&self, table: &FromTable, index: &str) -> bool {
        let planned = table.schema.index(index);
        let live = self
            .db
            .catalog()
            .table(&table.schema.name)
            .ok()
            .and_then(|s| s.index(index));
        planned.is_some() && planned == live
    }

    /// Serve a block's initial scan through a planned secondary index.
    ///
    /// The plan's [`Justification::IndexAccess`] is a license, not a
    /// promise: the sarg
    /// is re-derived from the spec and checked against the live catalog
    /// before any probe. `Ok(None)` means the license no longer holds —
    /// the caller runs the ordinary full filtered scan, so a dropped or
    /// re-shaped index costs speed, never rows. Every conjunct of the
    /// level is still evaluated over the returned rows; the index only
    /// narrows which rows are visited.
    fn ix_scan(
        &mut self,
        spec: &BoundSpec,
        t: usize,
        conjuncts: &[&BoundExpr],
        info: &Justification,
        outer: &[Vec<Value>],
    ) -> Result<Option<Vec<Row>>> {
        let Some(sarg) = find_index_sarg(spec, t, conjuncts) else {
            return Ok(None);
        };
        let table = &spec.from[t];
        if Some(sarg.index.as_str()) != info.index() || !self.index_fresh(table, &sarg.index) {
            return Ok(None);
        }
        let Some(def) = table.schema.index(&sarg.index) else {
            return Ok(None);
        };
        let full_point = sarg.full_point(def);
        let unique = sarg.unique;

        // Resolve the probe scalars (host variables bind now). A NULL
        // component never satisfies `=` or a range bound: empty scan.
        let mut prefix = Vec::with_capacity(sarg.prefix.len());
        for s in &sarg.prefix {
            let v = self.scalar(s, outer, &[])?;
            if v.is_null() {
                return Ok(Some(Vec::new()));
            }
            prefix.push(v);
        }
        let resolve_bound = |s: &Option<(uniq_plan::BScalar, bool)>| -> Result<_> {
            Ok(match s {
                Some((s, inc)) => {
                    let v = self.scalar(s, outer, &[])?;
                    if v.is_null() {
                        None // `col >= NULL` is unknown for every row
                    } else {
                        Some((v, *inc))
                    }
                }
                None => None,
            })
        };
        let low = resolve_bound(&sarg.low)?;
        let high = resolve_bound(&sarg.high)?;
        if (sarg.low.is_some() && low.is_none()) || (sarg.high.is_some() && high.is_none()) {
            return Ok(Some(Vec::new()));
        }
        fn as_bound(b: &Option<(Value, bool)>) -> std::ops::Bound<&Value> {
            match b {
                Some((v, true)) => std::ops::Bound::Included(v),
                Some((v, false)) => std::ops::Bound::Excluded(v),
                None => std::ops::Bound::Unbounded,
            }
        }

        let db = self.db;
        let name = &table.schema.name;
        let positions: Vec<usize> = if full_point {
            db.index_probe(name, &sarg.index, &prefix)?.to_vec()
        } else {
            db.index_range(name, &sarg.index, &prefix, as_bound(&low), as_bound(&high))?
        };
        self.stats.ix_probes += 1;
        // A unique fully-bound probe is a guaranteed one-row lookup:
        // exactly one probe step. Anything else walks its postings.
        self.stats.probe_steps += if unique {
            1
        } else {
            positions.len() as u64 + 1
        };

        let rows = db.rows(name)?;
        let mut scratch = vec![Value::Null; spec.product_arity()];
        let mut out = Vec::new();
        'rows: for &p in &positions {
            let row = &rows[p];
            self.stats.rows_scanned += 1;
            scratch[table.offset..table.offset + row.len()].clone_from_slice(row);
            for c in conjuncts {
                if !self.eval(c, outer, &scratch)?.false_interpreted() {
                    continue 'rows;
                }
            }
            out.push(scratch.clone());
        }
        Ok(Some(out))
    }

    /// One index-nested-loop join step: probe the named index once per
    /// outer partial — key assembled from already-bound attributes and
    /// constants — and join the matched rows. The probed table is never
    /// scanned and no hash table is built; a unique index makes every
    /// probe a guaranteed one-row lookup costing exactly one probe
    /// step. All level conjuncts are re-evaluated over the combined
    /// tuples, so the probe can only skip work, never change results.
    fn ix_join_step(
        &mut self,
        table: &FromTable,
        outer: &[Vec<Value>],
        partials: Vec<Row>,
        conjuncts: &[&BoundExpr],
        probe: &IndexProbe,
    ) -> Result<Vec<Row>> {
        let range = table.attr_range();
        let db = self.db;
        let name = &table.schema.name;
        let rows = db.rows(name)?;
        let mut next = Vec::new();
        'probe: for partial in &partials {
            let mut key = Vec::with_capacity(probe.sources.len());
            for src in &probe.sources {
                let v = match src {
                    ProbeSource::Outer(idx) => partial[*idx].clone(),
                    ProbeSource::Const(s) => self.scalar(s, outer, partial)?,
                };
                if v.is_null() {
                    continue 'probe; // `=` never matches NULL
                }
                key.push(v);
            }
            self.stats.ix_probes += 1;
            let positions = db.index_probe(name, &probe.index, &key)?;
            self.stats.probe_steps += if probe.unique {
                1
            } else {
                positions.len() as u64 + 1
            };
            'matches: for &p in positions {
                let row = &rows[p];
                let mut tuple = partial.clone();
                tuple[range.start..range.end].clone_from_slice(row);
                for c in conjuncts {
                    if !self.eval(c, outer, &tuple)?.false_interpreted() {
                        continue 'matches;
                    }
                }
                next.push(tuple);
            }
        }
        Ok(next)
    }

    // --- expression evaluation -------------------------------------------

    fn resolve<'v>(
        &self,
        a: &AttrRef,
        outer: &'v [Vec<Value>],
        current: &'v [Value],
    ) -> Result<&'v Value> {
        if a.up == 0 {
            current
                .get(a.idx)
                .ok_or_else(|| Error::internal(format!("attr #{} out of range", a.idx)))
        } else {
            let scope = outer
                .len()
                .checked_sub(a.up)
                .and_then(|i| outer.get(i))
                .ok_or_else(|| {
                    Error::internal(format!("correlated ref up={} escapes scope", a.up))
                })?;
            scope
                .get(a.idx)
                .ok_or_else(|| Error::internal(format!("outer attr #{} out of range", a.idx)))
        }
    }

    fn scalar(&self, s: &BScalar, outer: &[Vec<Value>], current: &[Value]) -> Result<Value> {
        Ok(match s {
            BScalar::Literal(v) => v.clone(),
            BScalar::HostVar(h) => self.hostvars.get(h)?.clone(),
            BScalar::Attr(a) => self.resolve(a, outer, current)?.clone(),
        })
    }

    /// Evaluate a predicate under three-valued logic.
    pub(crate) fn eval(
        &mut self,
        e: &BoundExpr,
        outer: &[Vec<Value>],
        current: &[Value],
    ) -> Result<Tri> {
        match e {
            BoundExpr::Cmp { op, left, right } => {
                let l = self.scalar(left, outer, current)?;
                let r = self.scalar(right, outer, current)?;
                cmp_tri(*op, &l, &r)
            }
            BoundExpr::Between {
                scalar,
                low,
                high,
                negated,
            } => {
                let v = self.scalar(scalar, outer, current)?;
                let lo = self.scalar(low, outer, current)?;
                let hi = self.scalar(high, outer, current)?;
                let t = cmp_tri(CmpOp::Ge, &v, &lo)?.and(cmp_tri(CmpOp::Le, &v, &hi)?);
                Ok(if *negated { t.not() } else { t })
            }
            BoundExpr::InList {
                scalar,
                list,
                negated,
            } => {
                let v = self.scalar(scalar, outer, current)?;
                let mut t = Tri::False;
                for item in list {
                    let i = self.scalar(item, outer, current)?;
                    t = t.or(cmp_tri(CmpOp::Eq, &v, &i)?);
                }
                Ok(if *negated { t.not() } else { t })
            }
            BoundExpr::IsNull { scalar, negated } => {
                let v = self.scalar(scalar, outer, current)?;
                Ok(Tri::from_bool(v.is_null() != *negated))
            }
            BoundExpr::Exists { negated, subquery } => {
                self.stats.subquery_evals += 1;
                let mut scopes: Vec<Vec<Value>> = outer.to_vec();
                scopes.push(current.to_vec());
                let found = self.block_exists(subquery, &scopes)?;
                Ok(Tri::from_bool(found != *negated))
            }
            BoundExpr::InSubquery {
                scalar,
                subquery,
                negated,
            } => {
                self.stats.subquery_evals += 1;
                let v = self.scalar(scalar, outer, current)?;
                let mut scopes: Vec<Vec<Value>> = outer.to_vec();
                scopes.push(current.to_vec());
                let rows = self.exec_spec(subquery, &scopes, None)?;
                // SQL IN semantics: true if any comparison is true;
                // otherwise unknown if any comparison is unknown (or the
                // tested value is NULL and the set is non-empty); false
                // otherwise (including the empty set).
                let mut t = Tri::False;
                for row in &rows {
                    t = t.or(cmp_tri(CmpOp::Eq, &v, &row[0])?);
                    if t == Tri::True {
                        break;
                    }
                }
                Ok(if *negated { t.not() } else { t })
            }
            BoundExpr::And(a, b) => {
                // Short-circuit: false dominates regardless of the other
                // operand (including unknown).
                let l = self.eval(a, outer, current)?;
                if l == Tri::False {
                    return Ok(Tri::False);
                }
                Ok(l.and(self.eval(b, outer, current)?))
            }
            BoundExpr::Or(a, b) => {
                let l = self.eval(a, outer, current)?;
                if l == Tri::True {
                    return Ok(Tri::True);
                }
                Ok(l.or(self.eval(b, outer, current)?))
            }
            BoundExpr::Not(a) => Ok(self.eval(a, outer, current)?.not()),
        }
    }
}

/// Three-valued comparison of two values.
fn cmp_tri(op: CmpOp, l: &Value, r: &Value) -> Result<Tri> {
    Ok(match l.sql_cmp(r)? {
        None => Tri::Unknown,
        Some(ord) => Tri::from_bool(match op {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }),
    })
}

/// One hash-pipeline step's conjuncts, split by role (shared between the
/// serial [`Executor::hash_step`] and the partitioned parallel kernels in
/// [`crate::parallel`]).
pub(crate) struct StepConjuncts<'e> {
    /// Conjuncts touching only the incoming table: filter its build side.
    pub(crate) self_conj: Vec<&'e BoundExpr>,
    /// Equality conjuncts linking an already-bound attribute to the new
    /// table, as `(built attr, new attr)` pairs: the hash keys.
    pub(crate) join_keys: Vec<(usize, usize)>,
    /// Everything else (subqueries included): filters over the combined
    /// tuples after the join.
    pub(crate) residual: Vec<&'e BoundExpr>,
}

/// Split one level's conjuncts for a hash-pipeline step over the table
/// occupying `range` (`is_placed` tells which attributes are already
/// bound by earlier steps).
pub(crate) fn classify_step_conjuncts<'e>(
    conjuncts: &[&'e BoundExpr],
    range: &std::ops::Range<usize>,
    is_placed: &dyn Fn(usize) -> bool,
) -> StepConjuncts<'e> {
    let mut out = StepConjuncts {
        self_conj: Vec::new(),
        join_keys: Vec::new(),
        residual: Vec::new(),
    };
    for &c in conjuncts {
        if let Some((built, new)) = equi_join_key(c, range, is_placed) {
            out.join_keys.push((built, new));
            continue;
        }
        let mut only_new = true;
        let mut probe = c.clone();
        map_all_attr_refs(&mut probe, &mut |depth, a| {
            if a.up == depth && !range.contains(&a.idx) {
                only_new = false;
            }
        });
        // Conjuncts with subqueries always go residual: their
        // evaluation may consult any bound attribute.
        if only_new && !contains_subquery(c) {
            out.self_conj.push(c);
        } else {
            out.residual.push(c);
        }
    }
    out
}

/// Is this conjunct `built_attr = new_attr` (either direction) linking an
/// already-bound attribute (per `is_placed`) to the table occupying
/// `range`? (Shared with the columnar kernels, which resolve the same
/// keys against encoded columns.)
pub(crate) fn equi_join_key(
    c: &BoundExpr,
    range: &std::ops::Range<usize>,
    is_placed: &dyn Fn(usize) -> bool,
) -> Option<(usize, usize)> {
    let BoundExpr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = c
    else {
        return None;
    };
    let (a, b) = match (left, right) {
        (BScalar::Attr(a), BScalar::Attr(b)) if a.is_local() && b.is_local() => (a.idx, b.idx),
        _ => return None,
    };
    match (range.contains(&a), range.contains(&b)) {
        (false, true) if is_placed(a) => Some((a, b)),
        (true, false) if is_placed(b) => Some((b, a)),
        _ => None,
    }
}

/// Does `bp` still describe this block's shape? Guards against a stale
/// cached plan being applied after a rewrite changed the block.
fn plan_matches(bp: &BlockPlan, spec: &BoundSpec) -> bool {
    let n = spec.from.len();
    if n == 0 || bp.order.len() != n || bp.joins.len() != n - 1 {
        return false;
    }
    let mut seen = vec![false; n];
    bp.order
        .iter()
        .all(|&t| t < n && !std::mem::replace(&mut seen[t], true))
}

pub(crate) fn contains_subquery(e: &BoundExpr) -> bool {
    match e {
        BoundExpr::Exists { .. } | BoundExpr::InSubquery { .. } => true,
        BoundExpr::And(a, b) | BoundExpr::Or(a, b) => contains_subquery(a) || contains_subquery(b),
        BoundExpr::Not(a) => contains_subquery(a),
        _ => false,
    }
}

/// Visit every attribute reference in `e` with its subquery depth
/// (re-exported plumbing shared with `uniq-core`'s rewrites, duplicated
/// here to keep the engine independent of the optimizer's internals).
pub(crate) fn map_all_attr_refs(e: &mut BoundExpr, f: &mut impl FnMut(usize, &mut AttrRef)) {
    fn go(e: &mut BoundExpr, depth: usize, f: &mut impl FnMut(usize, &mut AttrRef)) {
        let scalar = |s: &mut BScalar, depth: usize, f: &mut dyn FnMut(usize, &mut AttrRef)| {
            if let BScalar::Attr(a) = s {
                f(depth, a);
            }
        };
        match e {
            BoundExpr::Cmp { left, right, .. } => {
                scalar(left, depth, f);
                scalar(right, depth, f);
            }
            BoundExpr::Between {
                scalar: s,
                low,
                high,
                ..
            } => {
                scalar(s, depth, f);
                scalar(low, depth, f);
                scalar(high, depth, f);
            }
            BoundExpr::InList {
                scalar: s, list, ..
            } => {
                scalar(s, depth, f);
                for item in list {
                    scalar(item, depth, f);
                }
            }
            BoundExpr::IsNull { scalar: s, .. } => scalar(s, depth, f),
            BoundExpr::Exists { subquery, .. } => {
                if let Some(p) = &mut subquery.predicate {
                    go(p, depth + 1, f);
                }
            }
            BoundExpr::InSubquery {
                scalar: s,
                subquery,
                ..
            } => {
                scalar(s, depth, f);
                if let Some(p) = &mut subquery.predicate {
                    go(p, depth + 1, f);
                }
            }
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
                go(a, depth, f);
                go(b, depth, f);
            }
            BoundExpr::Not(a) => go(a, depth, f),
        }
    }
    go(e, 0, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_catalog::sample::supplier_database;
    use uniq_plan::bind_query;
    use uniq_sql::parse_query;

    fn run_opts(sql: &str, hv: &HostVars, opts: ExecOptions) -> (Vec<Row>, ExecStats) {
        let db = supplier_database().unwrap();
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let mut ex = Executor::new(&db, hv, opts);
        let rows = ex.run(&q).unwrap();
        (rows, ex.stats)
    }

    fn run(sql: &str) -> Vec<Row> {
        run_opts(sql, &HostVars::new(), ExecOptions::default()).0
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| uniq_types::value::tuple_null_cmp(a, b).unwrap());
        rows
    }

    #[test]
    fn single_table_filter() {
        let rows = run("SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto'");
        assert_eq!(sorted(rows), vec![vec![Value::Int(1)], vec![Value::Int(4)]]);
    }

    #[test]
    fn join_produces_expected_pairs() {
        let rows = run("SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'");
        assert_eq!(
            sorted(rows),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(10)],
                vec![Value::Int(3), Value::Int(10)],
                vec![Value::Int(3), Value::Int(13)],
            ]
        );
    }

    #[test]
    fn hash_and_nested_loop_agree() {
        let sql = "SELECT S.SNAME, P.PNAME FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let hv = HostVars::new();
        let (h, hs) = run_opts(
            sql,
            &hv,
            ExecOptions {
                join: JoinMethod::Hash,
                ..Default::default()
            },
        );
        let (n, ns) = run_opts(
            sql,
            &hv,
            ExecOptions {
                join: JoinMethod::NestedLoop,
                ..Default::default()
            },
        );
        assert_eq!(sorted(h), sorted(n));
        assert!(hs.hash_joins > 0);
        assert_eq!(ns.hash_joins, 0);
        // Hash join scans each table once; nested loop re-scans PARTS.
        assert!(hs.rows_scanned < ns.rows_scanned);
    }

    #[test]
    fn distinct_eliminates_duplicates() {
        let rows = run("SELECT DISTINCT P.COLOR FROM PARTS P");
        assert_eq!(rows.len(), 3); // RED, GREEN, BLUE
    }

    #[test]
    fn where_null_comparison_filters_row() {
        // OEM-PNO = 104 is unknown for the NULL row → filtered out.
        let rows = run("SELECT P.PNO FROM PARTS P WHERE P.OEM-PNO >= 100");
        assert_eq!(rows.len(), 6, "NULL OEM-PNO row must not qualify");
    }

    #[test]
    fn distinct_treats_nulls_as_equal() {
        // Two NULLs collapse under DISTINCT (=̇), unlike WHERE.
        let mut db = supplier_database().unwrap();
        db.run_script("CREATE TABLE N (X INTEGER); INSERT INTO N VALUES (NULL), (NULL), (1);")
            .unwrap();
        let q = bind_query(
            db.catalog(),
            &parse_query("SELECT DISTINCT X FROM N").unwrap(),
        )
        .unwrap();
        let hv = HostVars::new();
        let mut ex = Executor::new(&db, &hv, ExecOptions::default());
        let rows = ex.run(&q).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn host_variables_resolve_at_execution() {
        let hv = HostVars::new().with("SUPPLIER-NO", 3i64);
        let (rows, _) = run_opts(
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
            &hv,
            ExecOptions::default(),
        );
        assert_eq!(rows.len(), 2); // supplier 3 supplies parts 10 and 13
    }

    #[test]
    fn unbound_host_variable_errors() {
        let db = supplier_database().unwrap();
        let q = bind_query(
            db.catalog(),
            &parse_query("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :MISSING").unwrap(),
        )
        .unwrap();
        let hv = HostVars::new();
        let mut ex = Executor::new(&db, &hv, ExecOptions::default());
        assert!(matches!(ex.run(&q), Err(Error::UnboundHostVar(_))));
    }

    #[test]
    fn exists_subquery_semijoin() {
        // Example 8's original form: suppliers with at least one red part.
        let rows = run("SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')");
        assert_eq!(
            sorted(rows)
                .iter()
                .map(|r| r[0].clone())
                .collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn not_exists() {
        let rows = run("SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)");
        assert_eq!(sorted(rows), vec![vec![Value::Int(5)]]);
    }

    #[test]
    fn in_subquery_three_valued_semantics() {
        let mut db = supplier_database().unwrap();
        db.run_script(
            "CREATE TABLE L (X INTEGER); INSERT INTO L VALUES (1), (99);
             CREATE TABLE R2 (Y INTEGER); INSERT INTO R2 VALUES (1), (NULL);",
        )
        .unwrap();
        let hv = HostVars::new();
        // X IN (1, NULL): for X=1 → true; for X=99 → unknown (not false!)
        // so NOT IN must ALSO filter X=99 out.
        let q_in = bind_query(
            db.catalog(),
            &parse_query("SELECT X FROM L WHERE X IN (SELECT Y FROM R2)").unwrap(),
        )
        .unwrap();
        let mut ex = Executor::new(&db, &hv, ExecOptions::default());
        assert_eq!(ex.run(&q_in).unwrap(), vec![vec![Value::Int(1)]]);

        let q_not_in = bind_query(
            db.catalog(),
            &parse_query("SELECT X FROM L WHERE X NOT IN (SELECT Y FROM R2)").unwrap(),
        )
        .unwrap();
        let mut ex = Executor::new(&db, &hv, ExecOptions::default());
        assert_eq!(
            ex.run(&q_not_in).unwrap(),
            Vec::<Row>::new(),
            "NOT IN over a set containing NULL yields no rows"
        );
    }

    #[test]
    fn exists_stops_at_first_match() {
        let hv = HostVars::new();
        let (_, stats) = run_opts(
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            &hv,
            ExecOptions::default(),
        );
        // 5 suppliers scanned + early-exit scans of PARTS (7 rows): if
        // every EXISTS scanned all of PARTS we'd see 5 + 35; early exit
        // must do strictly better.
        assert!(
            stats.rows_scanned < 40,
            "rows_scanned = {}",
            stats.rows_scanned
        );
        assert_eq!(stats.subquery_evals, 5);
    }

    #[test]
    fn cartesian_product_multiplicity() {
        let rows = run("SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A");
        assert_eq!(rows.len(), 25); // 5 × 5
    }

    #[test]
    fn intersect_example_9() {
        // Suppliers in Toronto ∩ suppliers with agents in Ottawa/Hull.
        let rows = run(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT \
             SELECT ALL A.SNO FROM AGENTS A \
             WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
        );
        assert_eq!(sorted(rows), vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn select_all_retains_duplicates() {
        let rows = run("SELECT ALL P.COLOR FROM PARTS P WHERE P.COLOR = 'RED'");
        assert_eq!(rows.len(), 4);
    }

    fn indexed_supplier_db() -> Database {
        let mut db = supplier_database().unwrap();
        db.run_script(
            "CREATE UNIQUE INDEX IDX_S_SNO ON SUPPLIER (SNO);
             CREATE INDEX IDX_P_COLOR ON PARTS (COLOR);",
        )
        .unwrap();
        db
    }

    fn cost_plan(db: &Database, q: &BoundQuery) -> PhysicalPlan {
        let stats = uniq_cost::Statistics::collect(db);
        uniq_cost::plan_query(q, &stats, uniq_cost::PlannerOptions::default())
    }

    #[test]
    fn planned_index_paths_agree_with_the_oracle_and_save_work() {
        let db = indexed_supplier_db();
        let sql = "SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let plan = cost_plan(&db, &q);
        let hv = HostVars::new();
        let mut via_ix = Executor::new(&db, &hv, ExecOptions::default());
        let ix_rows = via_ix.run_with_plan(&q, Some(&plan)).unwrap();
        let mut oracle = Executor::new(&db, &hv, ExecOptions::default());
        let expect = oracle.run(&q).unwrap();
        assert_eq!(sorted(ix_rows), sorted(expect));
        // 1 ixscan probe of IDX_P_COLOR + one IxJoin probe per red part.
        assert_eq!(via_ix.stats.ix_probes, 5, "{:?}", via_ix.stats);
        // Unique probes cost exactly one step each; the color postings
        // walk costs its 4 matches + 1.
        assert_eq!(via_ix.stats.probe_steps, 4 + (4 + 1));
        assert!(
            via_ix.stats.rows_scanned < oracle.stats.rows_scanned,
            "index paths must visit fewer rows ({} vs {})",
            via_ix.stats.rows_scanned,
            oracle.stats.rows_scanned
        );
        assert_eq!(via_ix.stats.hash_joins, 0, "no build side at all");
    }

    #[test]
    fn unique_point_ixscan_reads_one_row() {
        let db = indexed_supplier_db();
        let q = bind_query(
            db.catalog(),
            &parse_query("SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3").unwrap(),
        )
        .unwrap();
        let plan = cost_plan(&db, &q);
        let hv = HostVars::new();
        let mut ex = Executor::new(&db, &hv, ExecOptions::default());
        let rows = ex.run_with_plan(&q, Some(&plan)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(ex.stats.ix_probes, 1);
        assert_eq!(ex.stats.probe_steps, 1, "guaranteed one-row lookup");
        assert_eq!(ex.stats.rows_scanned, 1, "only the matched row is read");
    }

    #[test]
    fn stale_index_license_falls_back_to_the_full_scan() {
        // Bind and plan against an indexed catalog…
        let db = indexed_supplier_db();
        let sql = "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3";
        let q = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let plan = cost_plan(&db, &q);
        let PhysNode::Block(b) = &plan.root else {
            panic!("expected block")
        };
        assert!(b.ixscan.is_some(), "plan must carry the index license");
        // …then execute against a database without the index: run-time
        // re-verification fails and the full scan answers, correctly.
        let plain = supplier_database().unwrap();
        let hv = HostVars::new();
        let mut ex = Executor::new(&plain, &hv, ExecOptions::default());
        let rows = ex.run_with_plan(&q, Some(&plan)).unwrap();
        let mut oracle = Executor::new(&plain, &hv, ExecOptions::default());
        assert_eq!(rows, oracle.run(&q).unwrap());
        assert_eq!(ex.stats.ix_probes, 0, "fallback never touches an index");
        assert_eq!(ex.stats.rows_scanned, 5, "full scan of SUPPLIER");
    }

    #[test]
    fn host_variable_probes_resolve_at_execution() {
        let db = indexed_supplier_db();
        let q = bind_query(
            db.catalog(),
            &parse_query("SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = :N").unwrap(),
        )
        .unwrap();
        let plan = cost_plan(&db, &q);
        for n in [1i64, 3, 99] {
            let hv = HostVars::new().with("N", n);
            let mut ex = Executor::new(&db, &hv, ExecOptions::default());
            let rows = ex.run_with_plan(&q, Some(&plan)).unwrap();
            let mut oracle = Executor::new(&db, &hv, ExecOptions::default());
            assert_eq!(rows, oracle.run(&q).unwrap(), "N = {n}");
            assert_eq!(ex.stats.ix_probes, 1);
        }
    }
}
