//! A convenience façade: parse → bind → optimize → execute in one call.
//!
//! [`Session`] is the API the examples and benchmarks use. It owns a
//! [`Database`], an optimizer configuration and executor options; each
//! [`Session::query`] returns the rows together with the rewrite steps the
//! optimizer applied and the executor's work counters, so callers can see
//! *what* the paper's techniques did and *what they saved*.

use crate::exec::{ExecOptions, Executor};
use crate::stats::ExecStats;
use uniq_catalog::{Database, Row};
use uniq_core::pipeline::{Optimizer, OptimizerOptions, RewriteStep};
use uniq_plan::{bind_query, BoundQuery, HostVars};
use uniq_sql::{parse_statement, Statement};
use uniq_types::{ColumnName, Error, Result};

/// The result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Output column names.
    pub columns: Vec<ColumnName>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Rewrites the optimizer applied (empty if none, or if disabled).
    pub steps: Vec<RewriteStep>,
    /// Executor work counters for this query.
    pub stats: ExecStats,
}

/// A database handle with optimizer and executor settings.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// The database queried by this session.
    pub db: Database,
    /// Rewrite configuration applied before execution.
    pub optimizer: OptimizerOptions,
    /// Physical execution strategies.
    pub exec: ExecOptions,
}

impl Session {
    /// A session over an existing database with default (relational
    /// profile) optimization.
    pub fn new(db: Database) -> Session {
        Session {
            db,
            optimizer: OptimizerOptions::relational(),
            exec: ExecOptions::default(),
        }
    }

    /// Session over the paper's populated Figure 1 database.
    pub fn sample() -> Result<Session> {
        Ok(Session::new(uniq_catalog::sample::supplier_database()?))
    }

    /// Run DDL/DML statements (`CREATE TABLE` / `INSERT`).
    pub fn run_script(&mut self, sql: &str) -> Result<()> {
        self.db.run_script(sql)
    }

    /// Parse, bind, optimize and execute a query with no host variables.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.query_with(sql, &HostVars::new())
    }

    /// Parse, bind, optimize and execute a query with host variables.
    pub fn query_with(&self, sql: &str, hostvars: &HostVars) -> Result<QueryOutput> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal(
                "Session::query executes queries; use run_script for DDL/DML",
            ));
        };
        let bound = bind_query(self.db.catalog(), &ast)?;
        self.execute_bound(&bound, hostvars)
    }

    /// Optimize and execute an already-bound query.
    pub fn execute_bound(&self, bound: &BoundQuery, hostvars: &HostVars) -> Result<QueryOutput> {
        let outcome = Optimizer::new(self.optimizer).optimize(bound);
        let mut executor = Executor::new(&self.db, hostvars, self.exec);
        let rows = executor.run(&outcome.query)?;
        Ok(QueryOutput {
            columns: outcome.query.output_names(),
            rows,
            steps: outcome.steps,
            stats: executor.stats,
        })
    }

    /// Execute without any rewriting (baseline for experiments).
    pub fn query_unoptimized(&self, sql: &str, hostvars: &HostVars) -> Result<QueryOutput> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal("not a query"));
        };
        let bound = bind_query(self.db.catalog(), &ast)?;
        let mut executor = Executor::new(&self.db, hostvars, self.exec);
        let rows = executor.run(&bound)?;
        Ok(QueryOutput {
            columns: bound.output_names(),
            rows,
            steps: Vec::new(),
            stats: executor.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use uniq_types::Value;

    fn multiset(rows: &[Row]) -> HashMap<Row, usize> {
        let mut m = HashMap::new();
        for r in rows {
            *m.entry(r.clone()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn optimized_and_unoptimized_agree_on_example_1() {
        let s = Session::sample().unwrap();
        let sql = "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let opt = s.query(sql).unwrap();
        let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        assert_eq!(multiset(&opt.rows), multiset(&base.rows));
        assert_eq!(opt.steps.len(), 1);
        // The optimized run performs no sort at all.
        assert_eq!(opt.stats.sorts, 0);
        assert!(base.stats.sorts > 0);
    }

    #[test]
    fn example_2_still_sorts() {
        let s = Session::sample().unwrap();
        let out = s
            .query(
                "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                 WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            )
            .unwrap();
        assert!(out.steps.is_empty());
        assert!(out.stats.sorts > 0);
        // Acme appears twice as a name but rows differ by PNO — and the
        // two Acme suppliers both supply part 10 as 'bolt', which IS a
        // duplicate that must collapse.
        let bolt_rows: Vec<_> = out
            .rows
            .iter()
            .filter(|r| r[0] == Value::str("Acme") && r[1] == Value::Int(10))
            .collect();
        assert_eq!(bolt_rows.len(), 1, "duplicate (Acme, 10, bolt) collapsed");
    }

    #[test]
    fn ddl_through_session() {
        let mut s = Session::new(Database::new());
        s.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        let out = s.query("SELECT A FROM T").unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(1)]]);
        assert_eq!(out.columns, vec![ColumnName::new("A")]);
    }

    #[test]
    fn query_rejects_ddl() {
        let s = Session::sample().unwrap();
        assert!(s.query("CREATE TABLE X (A INTEGER)").is_err());
    }

    #[test]
    fn host_vars_flow_through() {
        let s = Session::sample().unwrap();
        let hv = HostVars::new().with("CITY", "Toronto");
        let out = s
            .query_with("SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = :CITY", &hv)
            .unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn rewritten_intersect_matches_baseline() {
        let s = Session::sample().unwrap();
        let sql = "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
                   INTERSECT \
                   SELECT ALL A.SNO FROM AGENTS A \
                   WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'";
        let opt = s.query(sql).unwrap();
        let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        assert!(!opt.steps.is_empty());
        assert_eq!(multiset(&opt.rows), multiset(&base.rows));
        assert_eq!(opt.rows, vec![vec![Value::Int(1)]]);
    }
}
