//! A convenience façade: parse → bind → optimize → execute in one call.
//!
//! [`Session`] is the API the examples and benchmarks use. It owns a
//! [`Database`], an optimizer configuration and executor options; each
//! [`Session::query`] returns the rows together with the rewrite steps the
//! optimizer applied and the executor's work counters, so callers can see
//! *what* the paper's techniques did and *what they saved*.

use crate::exec::{ExecOptions, Executor};
use crate::plancache::{CacheStats, CachedPlan, PlanCache};
use crate::stats::{Degree, ExecStats, StageTimings};
use std::sync::Arc;
use std::time::Instant;
use uniq_catalog::{Database, Row};
use uniq_core::optimize_output;
use uniq_core::pipeline::{Optimizer, OptimizerOptions, RewriteTrace};
use uniq_cost::{plan_output, CardReport, PhysicalPlan, PlannerOptions, Statistics};
use uniq_plan::{bind_output, BoundOutput, BoundQuery, HostVars};
use uniq_sql::{parse_statement, Statement};
use uniq_types::{fnv64, ColumnName, Error, Result};

/// The result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Output column names.
    pub columns: Vec<ColumnName>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// The rewrite trace: steps, per-rule stats, fixpoint shape. On a
    /// plan-cache hit this is the trace recorded at compile time.
    pub trace: RewriteTrace,
    /// Executor work counters for this query.
    pub stats: ExecStats,
    /// Wall-clock time spent in each serving stage.
    pub timings: StageTimings,
    /// Whether the plan came from the session's plan cache.
    pub cache_hit: bool,
    /// Per-operator estimated vs. actual cardinalities, when the query
    /// ran under a cost-based physical plan (`None` on the static path).
    pub cards: Option<CardReport>,
}

/// A database handle with optimizer and executor settings.
///
/// Sessions are `Sync`: `query` takes `&self`, so one session can serve
/// a whole worker pool (see `uniq_workload::driver`). Cloning shares
/// the plan cache (the clones' hits and misses land in the same
/// counters); it is meant for read-only fan-out — running divergent DDL
/// on clones that share a cache is unsupported.
#[derive(Debug, Clone, Default)]
pub struct Session {
    /// The database queried by this session.
    pub db: Database,
    /// Rewrite configuration applied before execution.
    pub optimizer: OptimizerOptions,
    /// Static physical execution strategies, used when cost-based
    /// planning is off (or no statistics have been collected).
    pub exec: ExecOptions,
    /// Cost-based planner configuration.
    pub planner: PlannerOptions,
    /// Compiled-plan cache consulted by [`Session::query`] /
    /// [`Session::query_with`]; see [`crate::plancache`].
    pub cache: Arc<PlanCache>,
    /// Statistics collected by [`Session::analyze`], consumed by the
    /// cost-based planner.
    stats: Option<Arc<Statistics>>,
    /// Dictionary-encoded column store built by [`Session::analyze`]
    /// when the planner's columnar option is on; consulted by the
    /// executor for blocks the planner licensed `exec=columnar`. Built
    /// once per analyze — the executor verifies freshness per query and
    /// falls back to rows when the store has gone stale.
    columns: Option<Arc<crate::columnar::ColumnStore>>,
    /// Bumped on every [`Session::analyze`]; mixed into plan
    /// fingerprints so plans chosen under old statistics are recompiled.
    stats_epoch: u64,
}

fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos() as u64
}

impl Session {
    /// A session over an existing database with default (relational
    /// profile) optimization and a default-capacity plan cache.
    pub fn new(db: Database) -> Session {
        Session {
            db,
            optimizer: OptimizerOptions::relational(),
            exec: ExecOptions::default(),
            planner: PlannerOptions::default(),
            cache: Arc::new(PlanCache::default()),
            stats: None,
            columns: None,
            stats_epoch: 0,
        }
    }

    /// Collect table and column statistics from the current database
    /// contents. Bumps the statistics epoch, so plans compiled under
    /// older statistics are recompiled on their next use.
    pub fn analyze(&mut self) {
        self.stats = Some(Arc::new(Statistics::collect(&self.db)));
        self.stats_epoch += 1;
        // Rebuild the column store from the same snapshot the statistics
        // were collected from, so the two stay in step.
        self.columns = self
            .planner
            .columnar
            .then(|| Arc::new(crate::columnar::ColumnStore::build(&self.db)));
    }

    /// Enable cost-based physical planning, collecting statistics first.
    pub fn with_cost_based(mut self) -> Session {
        self.planner.cost_based = true;
        self.analyze();
        self
    }

    /// Enable the vectorized columnar execution path (implies cost-based
    /// planning — columnar licensing is a planner decision), building
    /// the dictionary-encoded column store alongside the statistics. The
    /// row executor still serves every block the planner does not prove
    /// covered, and every covered block whose encoding has gone stale.
    pub fn with_columnar(mut self) -> Session {
        self.planner.cost_based = true;
        self.planner.columnar = true;
        self.analyze();
        self
    }

    /// The statistics collected by the last [`Session::analyze`], if any.
    pub fn statistics(&self) -> Option<&Statistics> {
        self.stats.as_deref()
    }

    /// Plan the physical execution of an optimized query, when the
    /// session is cost-based and has statistics.
    fn plan_physical(&self, output: &BoundOutput) -> Option<Arc<PhysicalPlan>> {
        if !self.planner.cost_based {
            return None;
        }
        let stats = self.stats.as_ref()?;
        Some(Arc::new(plan_output(output, stats, self.planner)))
    }

    /// Enable morsel-driven parallel execution with one worker per
    /// available core ([`Degree::Auto`]), for both the static executor
    /// and the cost-based planner's per-operator degree choice.
    pub fn with_parallel(self) -> Session {
        self.with_exec_degree(Degree::Auto)
    }

    /// Enable morsel-driven parallel execution with exactly `n` workers.
    pub fn with_degree(self, n: usize) -> Session {
        self.with_exec_degree(Degree::Fixed(n))
    }

    fn with_exec_degree(mut self, degree: Degree) -> Session {
        self.exec.degree = degree;
        self.planner.degree = degree;
        self
    }

    /// Toggle the uniqueness-powered aggregation / Top-K fast paths:
    /// the proof-gated `GROUP BY` key elision and `COUNT(DISTINCT)`
    /// degradation rewrites, and the early-stopping ordered-index
    /// `ORDER BY … LIMIT k` walk. `with_agg_elision(false)` is the
    /// un-elided oracle the agreement tests and experiment E23 compare
    /// against — same answers, hash/sort work paid in full. Both knobs
    /// are fingerprinted, so elided and un-elided sessions never share
    /// cached plans.
    pub fn with_agg_elision(mut self, on: bool) -> Session {
        self.optimizer.agg_elision = on;
        self.exec.early_stop = on;
        self
    }

    /// Replace the plan cache with one of the given capacity. Capacity
    /// `0` disables caching — the uncached baseline for benchmarks.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Session {
        self.cache = Arc::new(PlanCache::new(capacity));
        self
    }

    /// Snapshot of the plan cache's hit/miss/eviction counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The tag mixed into plan fingerprints so differently configured
    /// sessions never share plans: it covers the optimizer knobs, the
    /// static executor strategies (parallel degree and kernel choice
    /// included — a cost-based plan compiled at degree 4 embeds
    /// per-operator `deg`s a serial session must not reuse), the planner
    /// configuration and the statistics epoch (cached plans embed
    /// physical choices made from statistics, so re-`analyze` must
    /// recompile them). All option structs are small `Copy` types, so
    /// their `Debug` form is a faithful, cheap serialization of every
    /// knob.
    fn options_tag(&self) -> u64 {
        fnv64(
            format!(
                "{:?}|{:?}|{:?}|{}",
                self.optimizer, self.exec, self.planner, self.stats_epoch
            )
            .as_bytes(),
        )
    }

    /// Session over the paper's populated Figure 1 database.
    pub fn sample() -> Result<Session> {
        Ok(Session::new(uniq_catalog::sample::supplier_database()?))
    }

    /// Run DDL/DML statements (`CREATE TABLE` / `INSERT`).
    pub fn run_script(&mut self, sql: &str) -> Result<()> {
        self.db.run_script(sql)
    }

    /// Parse, bind, optimize and execute a query with no host variables.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.query_with(sql, &HostVars::new())
    }

    /// Parse, bind, optimize and execute a query with host variables.
    ///
    /// The serving path: parse → canonical fingerprint → plan-cache
    /// probe → (on a miss) bind + optimize + insert → execute. Cache
    /// hits skip binding and the whole rewrite pipeline; host-variable
    /// *values* are applied at execution, so one cached plan serves
    /// every binding of the same text.
    pub fn query_with(&self, sql: &str, hostvars: &HostVars) -> Result<QueryOutput> {
        let mut timings = StageTimings::new();

        let t = Instant::now();
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal(
                "Session::query executes queries; use run_script for DDL/DML",
            ));
        };
        let canonical = ast.to_string();
        timings.parse_ns = elapsed_ns(t);

        // Hash the canonical text once; the tag mixes in O(1).
        let sql_hash = PlanCache::sql_hash(&canonical);
        let fingerprint = PlanCache::fingerprint_with(sql_hash, self.options_tag());
        let version = self.db.version();
        if let Some(plan) = self.cache.get(fingerprint, &canonical, version) {
            let t = Instant::now();
            let mut executor =
                Executor::new(&self.db, hostvars, self.exec).with_columns(self.columns.as_deref());
            let rows = executor.run_output(&plan.query, plan.physical.as_deref())?;
            timings.execute_ns = elapsed_ns(t);
            let cards = plan
                .physical
                .as_deref()
                .map(|p| p.card_report(executor.actuals()));
            return Ok(QueryOutput {
                columns: plan.columns.clone(),
                rows,
                trace: plan.trace.clone(),
                stats: executor.stats,
                timings,
                cache_hit: true,
                cards,
            });
        }

        let t = Instant::now();
        let bound = bind_output(self.db.catalog(), &ast)?;
        timings.bind_ns = elapsed_ns(t);

        let t = Instant::now();
        let (query, trace) = optimize_output(&Optimizer::new(self.optimizer), &bound);
        let physical = self.plan_physical(&query);
        timings.optimize_ns = elapsed_ns(t);

        let columns = query.output_names();
        self.cache.insert(
            fingerprint,
            &canonical,
            version,
            CachedPlan {
                query: query.clone(),
                trace: trace.clone(),
                columns: columns.clone(),
                physical: physical.clone(),
            },
        );

        let t = Instant::now();
        let mut executor =
            Executor::new(&self.db, hostvars, self.exec).with_columns(self.columns.as_deref());
        let rows = executor.run_output(&query, physical.as_deref())?;
        timings.execute_ns = elapsed_ns(t);
        let cards = physical
            .as_deref()
            .map(|p| p.card_report(executor.actuals()));
        Ok(QueryOutput {
            columns,
            rows,
            trace,
            stats: executor.stats,
            timings,
            cache_hit: false,
            cards,
        })
    }

    /// `EXPLAIN`: render the rewrite trace (rule, theorem, per-rule
    /// timing) and the physical plan for `sql`, without executing it.
    ///
    /// Follows the same serving path as [`Session::query`]: a plan-cache
    /// hit explains the cached plan with the trace recorded when it was
    /// compiled; a miss compiles (and caches) the plan first. Both paths
    /// produce the same trace sections.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal("EXPLAIN applies to queries only"));
        };
        let canonical = ast.to_string();
        let fingerprint = PlanCache::fingerprint(&canonical, self.options_tag());
        let version = self.db.version();
        if let Some(plan) = self.cache.get(fingerprint, &canonical, version) {
            let body = crate::explain::explain_with_trace(&plan.trace, &plan.query, &self.exec);
            let cost = self.explain_cost_section(&plan.query, plan.physical.as_deref());
            return Ok(format!("Plan: cached\n{body}{cost}"));
        }
        let bound = bind_output(self.db.catalog(), &ast)?;
        let (query, trace) = optimize_output(&Optimizer::new(self.optimizer), &bound);
        let physical = self.plan_physical(&query);
        let columns = query.output_names();
        self.cache.insert(
            fingerprint,
            &canonical,
            version,
            CachedPlan {
                query: query.clone(),
                trace: trace.clone(),
                columns,
                physical: physical.clone(),
            },
        );
        let body = crate::explain::explain_with_trace(&trace, &query, &self.exec);
        let cost = self.explain_cost_section(&query, physical.as_deref());
        Ok(format!("Plan: compiled\n{body}{cost}"))
    }

    /// The `Cost-based plan` section of `EXPLAIN`: the physical plan
    /// with estimated and actual rows per operator. Actuals come from
    /// executing the plan; `EXPLAIN` binds no host variables, so a query
    /// that needs them renders `act=?` instead. Empty when the session
    /// has no cost-based plan for the query.
    fn explain_cost_section(&self, query: &BoundOutput, physical: Option<&PhysicalPlan>) -> String {
        let Some(plan) = physical else {
            return String::new();
        };
        let hostvars = HostVars::new();
        let mut executor =
            Executor::new(&self.db, &hostvars, self.exec).with_columns(self.columns.as_deref());
        let actuals = executor
            .run_output(query, Some(plan))
            .ok()
            .map(|_| executor.actuals().to_vec());
        format!(
            "Cost-based plan (est/act rows):\n{}",
            plan.render(1, actuals.as_deref())
        )
    }

    /// Optimize and execute an already-bound query (no cache involved —
    /// there is no query text to key on).
    pub fn execute_bound(&self, bound: &BoundQuery, hostvars: &HostVars) -> Result<QueryOutput> {
        let mut timings = StageTimings::new();
        let t = Instant::now();
        let outcome = Optimizer::new(self.optimizer).optimize(bound);
        let query = BoundOutput::plain(outcome.query);
        let physical = self.plan_physical(&query);
        timings.optimize_ns = elapsed_ns(t);
        let t = Instant::now();
        let mut executor =
            Executor::new(&self.db, hostvars, self.exec).with_columns(self.columns.as_deref());
        let rows = executor.run_output(&query, physical.as_deref())?;
        timings.execute_ns = elapsed_ns(t);
        let cards = physical
            .as_deref()
            .map(|p| p.card_report(executor.actuals()));
        Ok(QueryOutput {
            columns: query.output_names(),
            rows,
            trace: outcome.trace,
            stats: executor.stats,
            timings,
            cache_hit: false,
            cards,
        })
    }

    /// Execute without any rewriting and with the early-stopping Top-K
    /// path off (baseline for experiments: every hash op and sort
    /// comparison the elisions avoid is paid here in full).
    pub fn query_unoptimized(&self, sql: &str, hostvars: &HostVars) -> Result<QueryOutput> {
        let mut timings = StageTimings::new();
        let t = Instant::now();
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal("not a query"));
        };
        timings.parse_ns = elapsed_ns(t);
        let t = Instant::now();
        let bound = bind_output(self.db.catalog(), &ast)?;
        timings.bind_ns = elapsed_ns(t);
        let t = Instant::now();
        let exec = ExecOptions {
            early_stop: false,
            ..self.exec
        };
        let mut executor = Executor::new(&self.db, hostvars, exec);
        let rows = executor.run_output(&bound, None)?;
        timings.execute_ns = elapsed_ns(t);
        Ok(QueryOutput {
            columns: bound.output_names(),
            rows,
            trace: RewriteTrace::default(),
            stats: executor.stats,
            timings,
            cache_hit: false,
            cards: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use uniq_types::Value;

    fn multiset(rows: &[Row]) -> HashMap<Row, usize> {
        let mut m = HashMap::new();
        for r in rows {
            *m.entry(r.clone()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn optimized_and_unoptimized_agree_on_example_1() {
        let s = Session::sample().unwrap();
        let sql = "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let opt = s.query(sql).unwrap();
        let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        assert_eq!(multiset(&opt.rows), multiset(&base.rows));
        assert_eq!(opt.trace.steps.len(), 1);
        // The optimized run performs no sort at all.
        assert_eq!(opt.stats.sorts, 0);
        assert!(base.stats.sorts > 0);
    }

    #[test]
    fn example_2_still_sorts() {
        let s = Session::sample().unwrap();
        let out = s
            .query(
                "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                 WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            )
            .unwrap();
        assert!(out.trace.steps.is_empty());
        assert!(out.stats.sorts > 0);
        // Acme appears twice as a name but rows differ by PNO — and the
        // two Acme suppliers both supply part 10 as 'bolt', which IS a
        // duplicate that must collapse.
        let bolt_rows: Vec<_> = out
            .rows
            .iter()
            .filter(|r| r[0] == Value::str("Acme") && r[1] == Value::Int(10))
            .collect();
        assert_eq!(bolt_rows.len(), 1, "duplicate (Acme, 10, bolt) collapsed");
    }

    #[test]
    fn ddl_through_session() {
        let mut s = Session::new(Database::new());
        s.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        let out = s.query("SELECT A FROM T").unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(1)]]);
        assert_eq!(out.columns, vec![ColumnName::new("A")]);
    }

    #[test]
    fn query_rejects_ddl() {
        let s = Session::sample().unwrap();
        assert!(s.query("CREATE TABLE X (A INTEGER)").is_err());
    }

    #[test]
    fn host_vars_flow_through() {
        let s = Session::sample().unwrap();
        let hv = HostVars::new().with("CITY", "Toronto");
        let out = s
            .query_with("SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = :CITY", &hv)
            .unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn repeated_query_hits_the_plan_cache() {
        let s = Session::sample().unwrap();
        let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let first = s.query(sql).unwrap();
        assert!(!first.cache_hit);
        assert!(first.timings.bind_ns > 0 && first.timings.optimize_ns > 0);
        let second = s.query(sql).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.timings.bind_ns, 0, "hits skip binding");
        assert_eq!(
            second.timings.optimize_ns, 0,
            "hits skip the rewrite pipeline"
        );
        assert_eq!(first.rows, second.rows);
        assert_eq!(first.trace, second.trace, "rewrite trace preserved on hits");
        let stats = s.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn textual_noise_shares_one_plan() {
        let s = Session::sample().unwrap();
        assert!(!s.query("SELECT S.SNO FROM SUPPLIER S").unwrap().cache_hit);
        // Different whitespace, same canonical print → same fingerprint.
        assert!(
            s.query("SELECT  S.SNO  FROM  SUPPLIER  S")
                .unwrap()
                .cache_hit
        );
    }

    #[test]
    fn hostvar_bindings_share_one_plan() {
        let s = Session::sample().unwrap();
        let sql = "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = :CITY";
        let a = s
            .query_with(sql, &HostVars::new().with("CITY", "Toronto"))
            .unwrap();
        let b = s
            .query_with(sql, &HostVars::new().with("CITY", "Chicago"))
            .unwrap();
        assert!(!a.cache_hit);
        assert!(
            b.cache_hit,
            "values bind at execution, so the plan is shared"
        );
        assert_ne!(a.rows, b.rows, "each binding still sees its own result");
    }

    #[test]
    fn ddl_invalidates_cached_plans() {
        let mut s = Session::sample().unwrap();
        let sql = "SELECT S.SNO FROM SUPPLIER S";
        s.query(sql).unwrap();
        assert!(s.query(sql).unwrap().cache_hit);
        s.run_script("CREATE TABLE Z (A INTEGER, PRIMARY KEY (A));")
            .unwrap();
        let after = s.query(sql).unwrap();
        assert!(!after.cache_hit, "schema change must invalidate the plan");
        assert_eq!(s.cache_stats().invalidations, 1);
        assert!(s.query(sql).unwrap().cache_hit, "recompiled plan re-cached");
    }

    #[test]
    fn create_index_replans_cached_queries_onto_the_index() {
        let mut s = Session::sample().unwrap().with_cost_based();
        let sql = "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3";
        let before = s.query(sql).unwrap();
        assert_eq!(before.stats.ix_probes, 0, "no index exists yet");
        assert!(s.query(sql).unwrap().cache_hit);
        s.run_script("CREATE UNIQUE INDEX IDX_S_SNO ON SUPPLIER (SNO);")
            .unwrap();
        let after = s.query(sql).unwrap();
        assert!(!after.cache_hit, "CREATE INDEX must force a re-plan");
        assert_eq!(after.rows, before.rows);
        assert_eq!(after.stats.ix_probes, 1, "re-plan adopted the index");
        assert_eq!(after.stats.rows_scanned, 1, "one-row unique lookup");
        assert!(s.explain(sql).unwrap().contains("ixscan(IDX_S_SNO"));
    }

    #[test]
    fn cached_index_plan_sees_rows_inserted_later() {
        // INSERT maintains secondary indexes but leaves the catalog
        // version alone, so the cached IxScan plan keeps serving — and
        // must find the new row through the live index.
        let mut s = Session::sample().unwrap().with_cost_based();
        s.run_script("CREATE INDEX IDX_S_NAME ON SUPPLIER (SNAME);")
            .unwrap();
        let sql = "SELECT S.SNO FROM SUPPLIER S WHERE S.SNAME = 'Carver'";
        assert_eq!(s.query(sql).unwrap().rows.len(), 0);
        s.run_script("INSERT INTO SUPPLIER VALUES (9, 'Carver', 'Toronto', 100, 'Active');")
            .unwrap();
        let out = s.query(sql).unwrap();
        assert!(out.cache_hit, "plain INSERT does not invalidate plans");
        assert_eq!(out.rows, vec![vec![Value::Int(9)]]);
        assert!(out.stats.ix_probes >= 1, "served through the index");
    }

    #[test]
    fn different_optimizer_options_do_not_share_plans() {
        let relational = Session::sample().unwrap();
        let mut navigational = relational.clone(); // shares the cache
        navigational.optimizer = OptimizerOptions::navigational();
        let sql = "SELECT DISTINCT S.SNO FROM SUPPLIER S";
        relational.query(sql).unwrap();
        let out = navigational.query(sql).unwrap();
        assert!(!out.cache_hit, "configurations must not share plans");
    }

    #[test]
    fn disabled_cache_never_hits() {
        let s = Session::sample().unwrap().with_cache_capacity(0);
        let sql = "SELECT S.SNO FROM SUPPLIER S";
        s.query(sql).unwrap();
        assert!(!s.query(sql).unwrap().cache_hit);
        assert_eq!(s.cache_stats().hits, 0);
    }

    #[test]
    fn explain_shows_trace_on_miss_and_hit() {
        let s = Session::sample().unwrap();
        let sql = "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let miss = s.explain(sql).unwrap();
        assert!(miss.starts_with("Plan: compiled"), "{miss}");
        assert!(miss.contains("distinct-removal [Theorem 1]"), "{miss}");
        assert!(miss.contains("Rule stats"), "{miss}");
        assert!(miss.contains("Physical plan:"), "{miss}");
        let hit = s.explain(sql).unwrap();
        assert!(hit.starts_with("Plan: cached"), "{hit}");
        // The cached path shows the very trace recorded at compile time.
        assert_eq!(
            miss.trim_start_matches("Plan: compiled"),
            hit.trim_start_matches("Plan: cached")
        );
        // EXPLAIN compiles (and caches) on a miss, so a subsequent query
        // is served from the cache.
        assert!(s.query(sql).unwrap().cache_hit);
    }

    #[test]
    fn explain_rejects_ddl() {
        let s = Session::sample().unwrap();
        assert!(s.explain("CREATE TABLE X (A INTEGER)").is_err());
    }

    #[test]
    fn cost_based_rows_match_static_execution() {
        let s = Session::sample().unwrap();
        let c = s.clone().with_cost_based();
        for sql in [
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            "SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A",
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT SELECT ALL A.SNO FROM AGENTS A",
            "SELECT DISTINCT P.COLOR FROM PARTS P, SUPPLIER S, AGENTS A \
             WHERE S.SNO = P.SNO AND S.SNO = A.SNO",
        ] {
            let stat = s.query(sql).unwrap();
            let cost = c.query(sql).unwrap();
            assert_eq!(
                multiset(&stat.rows),
                multiset(&cost.rows),
                "cost-based result diverged for {sql}"
            );
            assert!(stat.cards.is_none());
            let cards = cost.cards.expect("cost-based run reports cardinalities");
            assert!(!cards.rows.is_empty());
            assert!(cards.max_q_error() >= 1.0);
        }
    }

    #[test]
    fn cost_based_cache_hits_keep_reporting_cards() {
        let s = Session::sample().unwrap().with_cost_based();
        let sql = "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
        assert!(s.query(sql).unwrap().cards.is_some());
        let hit = s.query(sql).unwrap();
        assert!(hit.cache_hit);
        assert!(hit.cards.is_some(), "cached physical plan still measured");
    }

    #[test]
    fn analyze_invalidates_cost_based_plans() {
        let mut s = Session::sample().unwrap().with_cost_based();
        let sql = "SELECT S.SNO FROM SUPPLIER S";
        s.query(sql).unwrap();
        assert!(s.query(sql).unwrap().cache_hit);
        // New statistics epoch → new fingerprint → plans recompiled.
        s.analyze();
        assert!(!s.query(sql).unwrap().cache_hit);
    }

    #[test]
    fn static_and_cost_based_sessions_do_not_share_plans() {
        let s = Session::sample().unwrap();
        let mut c = s.clone(); // shares the cache
        c.planner.cost_based = true;
        c.analyze();
        let sql = "SELECT S.SNO FROM SUPPLIER S";
        s.query(sql).unwrap();
        assert!(!c.query(sql).unwrap().cache_hit);
    }

    #[test]
    fn serial_and_parallel_sessions_do_not_share_plans() {
        let serial = Session::sample().unwrap();
        let parallel = serial.clone().with_degree(2); // shares the cache
        let sql = "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
        serial.query(sql).unwrap();
        assert!(
            !parallel.query(sql).unwrap().cache_hit,
            "degrees must not share plans"
        );
        // And a differently-sized pool is a third configuration.
        let wider = serial.clone().with_degree(4);
        assert!(!wider.query(sql).unwrap().cache_hit);
    }

    #[test]
    fn parallel_rows_match_serial() {
        let serial = Session::sample().unwrap();
        let parallel = serial.clone().with_degree(3).with_cache_capacity(64);
        for sql in [
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            "SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A",
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT SELECT ALL A.SNO FROM AGENTS A",
        ] {
            let a = serial.query(sql).unwrap();
            let b = parallel.query(sql).unwrap();
            assert_eq!(multiset(&a.rows), multiset(&b.rows), "{sql}");
        }
    }

    #[test]
    fn parallel_cost_based_session_plans_with_degrees() {
        let s = Session::sample().unwrap().with_degree(4).with_cost_based();
        // The sample DB is tiny, so every operator stays deg=1 under the
        // work budget — but the session must still run and agree.
        let out = s
            .query("SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO")
            .unwrap();
        assert_eq!(out.rows.len(), 4);
        assert!(out.cards.is_some());
    }

    #[test]
    fn exec_options_separate_cached_plans() {
        let sort = Session::sample().unwrap();
        let mut hash = sort.clone(); // shares the cache
        hash.exec.distinct = crate::stats::DistinctMethod::Hash;
        let sql = "SELECT DISTINCT S.SNO FROM SUPPLIER S";
        sort.query(sql).unwrap();
        assert!(!hash.query(sql).unwrap().cache_hit);
    }

    #[test]
    fn explain_shows_est_and_act_when_cost_based() {
        let s = Session::sample().unwrap().with_cost_based();
        let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        let out = s.explain(sql).unwrap();
        assert!(out.contains("Cost-based plan (est/act rows):"), "{out}");
        let section = out.split("Cost-based plan (est/act rows):").nth(1).unwrap();
        for line in section.lines().filter(|l| !l.trim().is_empty()) {
            assert!(line.contains("est="), "{line}");
            assert!(line.contains("act="), "{line}");
        }
        assert!(!section.contains("act=?"), "actuals were measured: {out}");
        // The static session's EXPLAIN has no cost section.
        let plain = Session::sample().unwrap().explain(sql).unwrap();
        assert!(!plain.contains("Cost-based plan"), "{plain}");
    }

    #[test]
    fn explain_hostvar_query_renders_unmeasured_actuals() {
        let s = Session::sample().unwrap().with_cost_based();
        let out = s
            .explain("SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = :CITY")
            .unwrap();
        assert!(out.contains("Cost-based plan (est/act rows):"), "{out}");
        assert!(out.contains("act=?"), "unbound host variable: {out}");
    }

    #[test]
    fn columnar_rows_match_static_execution() {
        let s = Session::sample().unwrap();
        let c = s.clone().with_columnar();
        for sql in [
            // Covered: keyed joins, literal filters, DISTINCT.
            "SELECT DISTINCT P.COLOR, S.SCITY FROM PARTS P, SUPPLIER S \
             WHERE P.SNO = S.SNO AND P.COLOR = 'RED'",
            "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SCITY = 'Toronto'",
            "SELECT P.PNO, S.SCITY, A.ACITY FROM PARTS P, SUPPLIER S, AGENTS A \
             WHERE P.SNO = S.SNO AND S.SNO = A.SNO AND P.COLOR = 'RED'",
            // Uncovered shapes exercise the row fallback.
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1 OR S.SNO = 2",
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO)",
            "SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A",
            // Set operations run rowwise over columnar block outputs.
            "SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT A.SNO FROM AGENTS A",
        ] {
            let stat = s.query(sql).unwrap();
            let col = c.query(sql).unwrap();
            assert_eq!(
                multiset(&stat.rows),
                multiset(&col.rows),
                "columnar result diverged for {sql}"
            );
        }
    }

    #[test]
    fn columnar_session_counts_vector_ops_not_scans() {
        let c = Session::sample().unwrap().with_columnar();
        let out = c
            .query(
                "SELECT DISTINCT P.COLOR, S.SCITY FROM PARTS P, SUPPLIER S \
                 WHERE P.SNO = S.SNO AND P.COLOR = 'RED'",
            )
            .unwrap();
        assert!(out.stats.vector_ops > 0, "{:?}", out.stats);
        assert_eq!(out.stats.rows_scanned, 0, "no row-at-a-time scan");
        assert_eq!(
            out.stats.materialized_rows,
            out.rows.len() as u64,
            "only the final output is materialized"
        );
        // The key-covered SUPPLIER join runs on the direct-index kernel:
        // a join-only query performs zero hash probes (DISTINCT would
        // add its own, so probe without it).
        let joined = c
            .query(
                "SELECT P.PNO, S.SCITY FROM PARTS P, SUPPLIER S \
                 WHERE P.SNO = S.SNO AND P.COLOR = 'RED'",
            )
            .unwrap();
        assert_eq!(joined.stats.hash_probes, 0, "{:?}", joined.stats);
        assert!(joined.stats.probe_steps > 0, "{:?}", joined.stats);
        // A static session never touches the vectorized kernels.
        let s = Session::sample().unwrap();
        let plain = s.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
        assert_eq!(plain.stats.vector_ops, 0);
    }

    #[test]
    fn stale_column_store_falls_back_until_reanalyzed() {
        let mut c = Session::sample().unwrap().with_columnar();
        let sql = "SELECT DISTINCT P.COLOR, S.SCITY FROM PARTS P, SUPPLIER S \
                   WHERE P.SNO = S.SNO AND P.COLOR = 'RED'";
        assert!(c.query(sql).unwrap().stats.vector_ops > 0);
        // INSERT does not bump the catalog version: the cached plan
        // still serves, but the executor detects the row-count drift and
        // answers from the row path — stale codes are never read.
        c.run_script("INSERT INTO PARTS VALUES (4, 15, 'rod', 107, 'RED');")
            .unwrap();
        let stale = c.query(sql).unwrap();
        assert_eq!(stale.stats.vector_ops, 0, "stale store must not serve");
        assert!(stale.stats.rows_scanned > 0);
        assert!(
            stale
                .rows
                .iter()
                .any(|r| r[1] == Value::str("Toronto") && r[0] == Value::str("RED")),
            "fallback sees the new row: {:?}",
            stale.rows
        );
        // Re-analyze rebuilds the store; the columnar path resumes.
        c.analyze();
        let fresh = c.query(sql).unwrap();
        assert!(fresh.stats.vector_ops > 0);
        assert_eq!(multiset(&stale.rows), multiset(&fresh.rows));
    }

    #[test]
    fn explain_renders_columnar_markers() {
        let c = Session::sample().unwrap().with_columnar();
        let out = c
            .explain(
                "SELECT DISTINCT P.COLOR, S.SCITY FROM PARTS P, SUPPLIER S \
                 WHERE P.SNO = S.SNO AND P.COLOR = 'RED'",
            )
            .unwrap();
        assert!(out.contains("exec=columnar"), "{out}");
        assert!(out.contains("enc=dict"), "{out}");
        let plain = c
            .explain("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1 OR S.SNO = 2")
            .unwrap();
        assert!(!plain.contains("exec=columnar"), "{plain}");
        assert!(!plain.contains("enc=dict"), "{plain}");
    }

    #[test]
    fn columnar_and_row_sessions_do_not_share_plans() {
        let row = Session::sample().unwrap().with_cost_based();
        let mut col = row.clone(); // shares the cache
        col.planner.columnar = true;
        col.analyze();
        let sql = "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto'";
        row.query(sql).unwrap();
        assert!(
            !col.query(sql).unwrap().cache_hit,
            "columnar license must not leak into row sessions"
        );
    }

    #[test]
    fn rewritten_intersect_matches_baseline() {
        let s = Session::sample().unwrap();
        let sql = "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
                   INTERSECT \
                   SELECT ALL A.SNO FROM AGENTS A \
                   WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'";
        let opt = s.query(sql).unwrap();
        let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        assert!(!opt.trace.steps.is_empty());
        assert_eq!(multiset(&opt.rows), multiset(&base.rows));
        assert_eq!(opt.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn group_by_round_trip_matches_unoptimized() {
        let s = Session::sample().unwrap();
        let sql = "SELECT S.SCITY, COUNT(*) AS N, SUM(S.BUDGET) AS B \
                   FROM SUPPLIER S GROUP BY S.SCITY ORDER BY S.SCITY";
        let opt = s.query(sql).unwrap();
        let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        assert_eq!(opt.rows, base.rows, "ORDER BY pins the row order");
        assert_eq!(
            opt.rows,
            vec![
                vec![Value::str("Chicago"), Value::Int(2), Value::Int(2000)],
                vec![Value::str("New York"), Value::Int(1), Value::Int(500)],
                vec![Value::str("Toronto"), Value::Int(2), Value::Int(1300)],
            ]
        );
        let names: Vec<String> = opt.columns.iter().map(|c| c.to_string()).collect();
        assert_eq!(names, ["SCITY", "N", "B"]);
    }

    #[test]
    fn key_covered_group_by_skips_every_hash_op() {
        let s = Session::sample().unwrap();
        let sql = "SELECT S.SNO, COUNT(*) AS N FROM SUPPLIER S GROUP BY S.SNO";
        let opt = s.query(sql).unwrap();
        assert_eq!(opt.rows.len(), 5, "one group per key value");
        assert!(opt.rows.iter().all(|r| r[1] == Value::Int(1)));
        assert!(
            opt.trace
                .steps
                .iter()
                .any(|st| st.rule == "group-by-key-elision"),
            "elision must be proof-carrying: {:?}",
            opt.trace.steps
        );
        assert_eq!(opt.stats.hash_probes, 0, "elided grouping hashes nothing");
        let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        assert_eq!(multiset(&opt.rows), multiset(&base.rows));
        assert!(
            base.stats.hash_probes >= 5,
            "the naive plan pays one probe per row: {:?}",
            base.stats
        );
    }

    #[test]
    fn count_distinct_over_a_key_degrades_to_plain_count() {
        let s = Session::sample().unwrap();
        let sql = "SELECT COUNT(DISTINCT S.SNO) AS N FROM SUPPLIER S";
        let opt = s.query(sql).unwrap();
        assert_eq!(opt.rows, vec![vec![Value::Int(5)]]);
        assert!(
            opt.trace
                .steps
                .iter()
                .any(|st| st.rule == "count-distinct-elision"),
            "{:?}",
            opt.trace.steps
        );
        let base = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        assert_eq!(opt.rows, base.rows);
        assert!(
            base.stats.hash_probes > opt.stats.hash_probes,
            "naive COUNT(DISTINCT) pays distinct-set probes: {:?} vs {:?}",
            base.stats,
            opt.stats
        );
    }

    #[test]
    fn order_by_index_prefix_limit_stops_early() {
        let mut s = Session::sample().unwrap();
        s.run_script("CREATE INDEX IDX_S_BUDGET ON SUPPLIER (BUDGET);")
            .unwrap();
        let sql = "SELECT S.SNO, S.BUDGET FROM SUPPLIER S ORDER BY S.BUDGET LIMIT 2";
        let opt = s.query(sql).unwrap();
        assert_eq!(
            opt.rows,
            vec![
                vec![Value::Int(5), Value::Int(0)],
                vec![Value::Int(4), Value::Int(300)],
            ]
        );
        assert_eq!(opt.stats.early_stops, 1, "{:?}", opt.stats);
        assert_eq!(opt.stats.sorts, 0, "the index serves the order");
        assert_eq!(opt.stats.topk_rows_examined, 2, "stopped after k rows");
        // The un-elided oracle scans and sorts everything, same answer.
        let oracle = s.clone().with_agg_elision(false);
        let base = oracle.query(sql).unwrap();
        assert_eq!(base.rows, opt.rows);
        assert_eq!(base.stats.early_stops, 0);
        assert!(base.stats.sorts >= 1, "{:?}", base.stats);
        assert!(base.stats.rows_scanned >= 5, "full scan under the sort");
    }

    #[test]
    fn explain_marks_early_stop_and_absorbs_the_sort() {
        let mut s = Session::sample().unwrap();
        s.run_script("CREATE INDEX IDX_S_BUDGET ON SUPPLIER (BUDGET);")
            .unwrap();
        let sql = "SELECT S.SNO, S.BUDGET FROM SUPPLIER S ORDER BY S.BUDGET LIMIT 2";
        let on = s.explain(sql).unwrap();
        assert!(on.contains("Limit 2 early-stop(IDX_S_BUDGET)"), "{on}");
        assert!(!on.contains("Sort ["), "the index serves the order: {on}");
        let off = s.clone().with_agg_elision(false);
        let plain = off.explain(sql).unwrap();
        assert!(plain.contains("Limit 2\n"), "{plain}");
        assert!(plain.contains("Sort [BUDGET]"), "{plain}");
        assert!(!plain.contains("early-stop"), "{plain}");
    }

    #[test]
    fn elided_and_unelided_sessions_do_not_share_plans() {
        let s = Session::sample().unwrap();
        let oracle = s.clone().with_agg_elision(false); // shares the cache
        let sql = "SELECT S.SNO, COUNT(*) AS N FROM SUPPLIER S GROUP BY S.SNO";
        assert!(!s.query(sql).unwrap().cache_hit);
        assert!(
            !oracle.query(sql).unwrap().cache_hit,
            "an elided plan must never serve the oracle session"
        );
        assert!(s.query(sql).unwrap().cache_hit, "each keeps its own entry");
        assert!(oracle.query(sql).unwrap().cache_hit);
    }

    #[test]
    fn cost_based_explain_annotates_output_operators() {
        let s = Session::sample().unwrap().with_cost_based();
        let sql = "SELECT S.SCITY, COUNT(*) AS N FROM SUPPLIER S \
                   GROUP BY S.SCITY ORDER BY N DESC LIMIT 2";
        let out = s.explain(sql).unwrap();
        let section = out
            .split("Cost-based plan (est/act rows):")
            .nth(1)
            .expect("cost section present");
        for needle in ["Aggregate [SCITY, COUNT(*)]", "Sort [N DESC]", "Limit 2"] {
            let line = section
                .lines()
                .find(|l| l.contains(needle))
                .unwrap_or_else(|| panic!("missing {needle} in {section}"));
            assert!(line.contains("est="), "{line}");
            assert!(line.contains("act="), "{line}");
        }
    }

    #[test]
    fn columnar_aggregates_match_the_row_path() {
        let s = Session::sample().unwrap();
        let c = s.clone().with_columnar();
        for sql in [
            "SELECT S.SCITY, COUNT(*) AS N, MAX(S.BUDGET) AS M \
             FROM SUPPLIER S GROUP BY S.SCITY",
            "SELECT P.COLOR, COUNT(DISTINCT P.PNAME) AS N \
             FROM PARTS P GROUP BY P.COLOR",
            "SELECT AVG(S.BUDGET) AS A, MIN(S.SNO) AS LO FROM SUPPLIER S",
        ] {
            let row = s.query(sql).unwrap();
            let col = c.query(sql).unwrap();
            assert_eq!(multiset(&row.rows), multiset(&col.rows), "{sql}");
        }
    }
}
