//! Multi-client serving: sessions over MVCC snapshots with one shared
//! plan cache.
//!
//! [`Session`](crate::Session) owns its [`Database`] — good for a
//! single-threaded driver, useless for a daemon where writers and
//! readers interleave. [`SharedEngine`] replaces the owned database
//! with a [`SnapshotStore`]:
//!
//! * every query pins the head snapshot **once** at query start and
//!   executes against that `Arc<Database>` — a consistent catalog +
//!   rows + indexes + statistics view, with no lock held while the
//!   query runs;
//! * DDL/DML goes through [`SharedEngine::execute`], which publishes a
//!   new snapshot copy-on-write (see [`uniq_catalog::snapshot`]);
//! * all connections share one process-wide sharded [`PlanCache`]. The
//!   fingerprint already covers the catalog version and the options
//!   tag, so a plan compiled by one connection serves every other —
//!   and `CREATE TABLE` / `CREATE INDEX` invalidate lazily exactly as
//!   in the single-session engine. Plain `INSERT` leaves the catalog
//!   version alone, so cached plans keep serving across snapshots; the
//!   executor re-verifies index freshness against the pinned snapshot
//!   on every run.
//!
//! [`SharedSession`] is the per-connection view: it borrows the engine
//! and adds a per-connection query counter, which the server's `Stats`
//! frame reports.

use crate::exec::{ExecOptions, Executor};
use crate::ivm::{self, MaintainOutcome, MaintenanceMode, MaterializedView, ViewDelta};
use crate::plancache::{CacheStats, CachedPlan, PlanCache};
use crate::session::QueryOutput;
use crate::stats::{ExecStats, StageTimings};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use uniq_catalog::{Database, Row, SnapshotStore};
use uniq_core::optimize_output;
use uniq_core::pipeline::{Optimizer, OptimizerOptions};
use uniq_cost::{plan_output, PhysicalPlan, PlannerOptions, Statistics};
use uniq_plan::{bind_output, BoundOutput, HostVars};
use uniq_proof::ProofStatus;
use uniq_sql::{parse_statement, Statement};
use uniq_types::{fnv64, ColumnName, Error, Result};

/// Statistics state: collected from one snapshot, stamped with an epoch
/// that is mixed into plan fingerprints (re-`ANALYZE` recompiles plans).
#[derive(Debug, Default)]
struct StatsState {
    stats: Option<Arc<Statistics>>,
    epoch: u64,
}

/// The callback a subscriber registers: called with the subscription id
/// and each non-empty [`ViewDelta`] after a publish. Returning `false`
/// drops the subscription (a slow or vanished consumer must never stall
/// maintenance for everyone else).
pub type SubscriptionSink = Box<dyn Fn(u64, &ViewDelta) -> bool + Send + Sync>;

/// What [`SharedEngine::subscribe`] hands back: the subscription id,
/// the view's header + initial contents, and the tier/license the
/// maintenance engine granted.
pub struct Subscription {
    /// Registry id (pass to [`SharedEngine::unsubscribe`]).
    pub id: u64,
    /// Output column names.
    pub columns: Vec<ColumnName>,
    /// The view's initial contents, canonically sorted.
    pub rows: Vec<Row>,
    /// The maintenance tier in force.
    pub mode: MaintenanceMode,
    /// The proof that granted (or refused) the refcount-free tier.
    pub license: ProofStatus,
}

struct SubEntry {
    id: u64,
    view: MaterializedView,
    sink: SubscriptionSink,
    /// Set by [`SharedEngine::analyze`] (and on maintenance errors):
    /// the view is rebuilt from scratch on the next round, exactly as
    /// the plan cache lazily recompiles on an epoch bump.
    stale: bool,
}

#[derive(Default)]
struct SubState {
    entries: Vec<SubEntry>,
    next_id: u64,
    deltas_pushed: u64,
    delta_rows: u64,
    view_updates: u64,
    rows_saved: u64,
    dropped: u64,
}

/// Subscription counters for the stats report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscriptionStats {
    /// Currently registered subscriptions.
    pub active: u64,
    /// Non-empty deltas pushed to sinks.
    pub deltas_pushed: u64,
    /// Base-table delta rows consumed by maintenance.
    pub delta_rows: u64,
    /// View rows changed (insertions + deletions) across all rounds.
    pub view_updates: u64,
    /// Cumulative base rows a per-publish full recompute would have
    /// scanned minus what delta maintenance actually touched.
    pub rows_saved: u64,
    /// Subscriptions dropped because their sink refused a delta.
    pub dropped: u64,
}

/// A process-wide engine: MVCC snapshot chain + shared plan cache +
/// one fixed optimizer/executor configuration for every connection.
#[derive(Debug)]
pub struct SharedEngine {
    store: SnapshotStore,
    cache: Arc<PlanCache>,
    /// Rewrite configuration (identical for all connections, so plans
    /// are shareable by construction).
    pub optimizer: OptimizerOptions,
    /// Static executor strategies.
    pub exec: ExecOptions,
    /// Cost-based planner configuration; physical planning activates
    /// once [`SharedEngine::analyze`] has collected statistics.
    pub planner: PlannerOptions,
    stats: RwLock<StatsState>,
    queries: AtomicU64,
    subs: Mutex<SubState>,
}

impl std::fmt::Debug for SubState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubState")
            .field("entries", &self.entries.len())
            .field("next_id", &self.next_id)
            .finish()
    }
}

/// One counter row of a [`SharedEngine`] stats report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Plan-cache counters, process-wide.
    pub cache: CacheStats,
    /// Snapshots published since the engine started (chain depth).
    pub snapshot_depth: u64,
    /// Queries served across all connections.
    pub queries_total: u64,
    /// Statistics epoch (0 = never analyzed).
    pub stats_epoch: u64,
    /// Subscription / incremental-view-maintenance counters.
    pub subs: SubscriptionStats,
}

impl SharedEngine {
    /// An engine seeded with `db`, default relational optimization and a
    /// default-capacity shared plan cache.
    pub fn new(db: Database) -> SharedEngine {
        SharedEngine {
            store: SnapshotStore::new(db),
            cache: Arc::new(PlanCache::default()),
            optimizer: OptimizerOptions::relational(),
            exec: ExecOptions::default(),
            planner: PlannerOptions::default(),
            stats: RwLock::new(StatsState::default()),
            queries: AtomicU64::new(0),
            subs: Mutex::new(SubState::default()),
        }
    }

    /// Engine over the paper's populated Figure 1 database.
    pub fn sample() -> Result<SharedEngine> {
        Ok(SharedEngine::new(uniq_catalog::sample::supplier_database()?))
    }

    /// The snapshot store (for tests and admission logic).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Pin the current head snapshot.
    pub fn snapshot(&self) -> Arc<Database> {
        self.store.snapshot()
    }

    /// Apply a DDL/DML script copy-on-write and publish one new
    /// snapshot (atomic: a failure publishes nothing), then run one
    /// incremental maintenance round so every subscription sees the
    /// write. Returns the number of statements applied.
    pub fn execute(&self, sql: &str) -> Result<usize> {
        let applied = self.store.run_script(sql)?;
        self.maintain_subscriptions();
        Ok(applied)
    }

    /// Collect statistics from the current head snapshot and bump the
    /// statistics epoch. Cost-based physical planning is active from
    /// the next query on; plans compiled under older statistics are
    /// recompiled lazily (the epoch is part of the fingerprint).
    /// Subscriptions are invalidated the same lazy way: every view is
    /// marked stale and rebuilt (re-bound, re-licensed) on its next
    /// maintenance round.
    pub fn analyze(&self) {
        let snap = self.snapshot();
        let collected = Arc::new(Statistics::collect(&snap));
        {
            let mut state = self.stats.write().expect("stats lock poisoned");
            state.stats = Some(collected);
            state.epoch += 1;
        }
        let mut subs = self.subs.lock().expect("subs lock poisoned");
        for entry in &mut subs.entries {
            entry.stale = true;
        }
    }

    /// Counter snapshot for the `Stats` frame.
    pub fn stats(&self) -> EngineStats {
        let subs = {
            let s = self.subs.lock().expect("subs lock poisoned");
            SubscriptionStats {
                active: s.entries.len() as u64,
                deltas_pushed: s.deltas_pushed,
                delta_rows: s.delta_rows,
                view_updates: s.view_updates,
                rows_saved: s.rows_saved,
                dropped: s.dropped,
            }
        };
        EngineStats {
            cache: self.cache.stats(),
            snapshot_depth: self.store.depth(),
            queries_total: self.queries.load(Ordering::Relaxed),
            stats_epoch: self.stats.read().expect("stats lock poisoned").epoch,
            subs,
        }
    }

    /// The fingerprint tag: optimizer + executor + planner knobs and the
    /// statistics epoch, exactly like
    /// [`Session`](crate::Session)'s — differently configured engines
    /// (or epochs) never share plans.
    fn options_tag(&self, epoch: u64) -> u64 {
        fnv64(
            format!(
                "{:?}|{:?}|{:?}|{}",
                self.optimizer, self.exec, self.planner, epoch
            )
            .as_bytes(),
        )
    }

    fn stats_state(&self) -> (Option<Arc<Statistics>>, u64) {
        let state = self.stats.read().expect("stats lock poisoned");
        (state.stats.clone(), state.epoch)
    }

    fn plan_physical(
        &self,
        query: &BoundOutput,
        stats: Option<&Arc<Statistics>>,
    ) -> Option<Arc<PhysicalPlan>> {
        let stats = stats?;
        let mut planner = self.planner;
        planner.cost_based = true;
        Some(Arc::new(plan_output(query, stats, planner)))
    }

    /// Bind, optimize, license and materialize `sql` as a view over the
    /// current head snapshot.
    fn build_view(&self, sql: &str) -> Result<MaterializedView> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal("SUBSCRIBE applies to queries only"));
        };
        let canonical = ast.to_string();
        let snap = self.snapshot();
        let bound = bind_output(snap.catalog(), &ast)?;
        let (query, _trace) = optimize_output(&Optimizer::new(self.optimizer), &bound);
        let columns = query.output_names();
        MaterializedView::new(canonical, query, columns, snap, self.exec)
    }

    /// Register `sql` as a live subscription: the query is optimized,
    /// licensed (set tier only with Algorithm 1 + proof-checker
    /// certificates), materialized against the head snapshot, and from
    /// then on maintained incrementally after every publish. `sink`
    /// receives each non-empty delta; returning `false` unsubscribes.
    pub fn subscribe(&self, sql: &str, sink: SubscriptionSink) -> Result<Subscription> {
        let view = self.build_view(sql)?;
        let mut subs = self.subs.lock().expect("subs lock poisoned");
        subs.next_id += 1;
        let id = subs.next_id;
        let reply = Subscription {
            id,
            columns: view.columns().to_vec(),
            rows: view.rows(),
            mode: view.mode(),
            license: view.license().clone(),
        };
        subs.entries.push(SubEntry {
            id,
            view,
            sink,
            stale: false,
        });
        Ok(reply)
    }

    /// Remove a subscription. Returns whether the id was registered.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut subs = self.subs.lock().expect("subs lock poisoned");
        let before = subs.entries.len();
        subs.entries.retain(|e| e.id != id);
        subs.entries.len() != before
    }

    /// A registered view's current contents (tests and tooling).
    pub fn subscription_rows(&self, id: u64) -> Option<Vec<Row>> {
        let subs = self.subs.lock().expect("subs lock poisoned");
        subs.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.view.rows())
    }

    /// A registered view's cumulative maintenance work.
    pub fn subscription_work(&self, id: u64) -> Option<ExecStats> {
        let subs = self.subs.lock().expect("subs lock poisoned");
        subs.entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.view.work())
    }

    /// One maintenance round: advance every registered view from its
    /// base snapshot to the current head and push non-empty deltas.
    /// Views the catalog moved under (DDL) or that were marked stale by
    /// `ANALYZE` are rebuilt — re-bound and re-licensed against the
    /// live catalog — and the reconciliation delta is pushed. A sink
    /// that refuses a delta drops its subscription on the spot.
    fn maintain_subscriptions(&self) {
        let head = self.snapshot();
        let mut subs = self.subs.lock().expect("subs lock poisoned");
        let state = &mut *subs;
        let mut dropped: Vec<u64> = Vec::new();
        for entry in &mut state.entries {
            let outcome = if entry.stale {
                MaintainOutcome::NeedsRebuild
            } else {
                match entry.view.maintain(&head) {
                    Ok(outcome) => outcome,
                    // A maintenance error (e.g. a snapshot pair that is
                    // not insert-only) is never fatal: rebuild.
                    Err(_) => MaintainOutcome::NeedsRebuild,
                }
            };
            let delta = match outcome {
                MaintainOutcome::Unchanged => continue,
                MaintainOutcome::Delta { delta, work } => {
                    state.delta_rows += work.delta_rows;
                    state.view_updates += work.view_updates;
                    // What a per-publish full recompute would have
                    // scanned, minus what delta maintenance touched.
                    let naive: u64 = entry
                        .view
                        .tables()
                        .iter()
                        .map(|t| head.row_count(t).unwrap_or(0) as u64)
                        .sum();
                    let touched = work.rows_scanned + work.delta_rows + work.probe_steps;
                    state.rows_saved += naive.saturating_sub(touched);
                    delta
                }
                MaintainOutcome::NeedsRebuild => {
                    let before = entry.view.rows();
                    match self.build_view(entry.view.sql()) {
                        Ok(rebuilt) => {
                            entry.view = rebuilt;
                            entry.stale = false;
                            let after = entry.view.rows();
                            let delta = ivm::diff_rows(before, after);
                            state.view_updates += delta.len() as u64;
                            delta
                        }
                        Err(_) => {
                            // The view's SQL no longer binds (table
                            // dropped by a future DDL form): drop it.
                            dropped.push(entry.id);
                            continue;
                        }
                    }
                }
            };
            if delta.is_empty() {
                continue;
            }
            state.deltas_pushed += 1;
            if !(entry.sink)(entry.id, &delta) {
                dropped.push(entry.id);
            }
        }
        if !dropped.is_empty() {
            state.dropped += dropped.len() as u64;
            state.entries.retain(|e| !dropped.contains(&e.id));
        }
    }

    /// Parse, plan (through the shared cache) and execute `sql` against
    /// a snapshot pinned at entry. The serving path mirrors
    /// [`Session::query_with`](crate::Session::query_with); the only
    /// difference is *which* database the plan runs on — always the
    /// snapshot pinned here, never a moving head.
    pub fn query_with(&self, sql: &str, hostvars: &HostVars) -> Result<QueryOutput> {
        let mut timings = StageTimings::new();

        let t = Instant::now();
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal(
                "SharedEngine::query executes queries; use execute for DDL/DML",
            ));
        };
        let canonical = ast.to_string();
        timings.parse_ns = t.elapsed().as_nanos() as u64;

        // Pin the snapshot ONCE; everything below — cache validity,
        // binding, physical planning, execution — sees this version.
        let snap = self.snapshot();
        let (stats, epoch) = self.stats_state();
        self.queries.fetch_add(1, Ordering::Relaxed);

        let sql_hash = PlanCache::sql_hash(&canonical);
        let fingerprint = PlanCache::fingerprint_with(sql_hash, self.options_tag(epoch));
        let version = snap.version();
        if let Some(plan) = self.cache.get(fingerprint, &canonical, version) {
            let t = Instant::now();
            let mut executor = Executor::new(&snap, hostvars, self.exec);
            let rows = executor.run_output(&plan.query, plan.physical.as_deref())?;
            timings.execute_ns = t.elapsed().as_nanos() as u64;
            let cards = plan
                .physical
                .as_deref()
                .map(|p| p.card_report(executor.actuals()));
            return Ok(QueryOutput {
                columns: plan.columns.clone(),
                rows,
                trace: plan.trace.clone(),
                stats: executor.stats,
                timings,
                cache_hit: true,
                cards,
            });
        }

        let t = Instant::now();
        let bound = bind_output(snap.catalog(), &ast)?;
        timings.bind_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let (query, trace) = optimize_output(&Optimizer::new(self.optimizer), &bound);
        let physical = self.plan_physical(&query, stats.as_ref());
        timings.optimize_ns = t.elapsed().as_nanos() as u64;

        let columns = query.output_names();
        self.cache.insert(
            fingerprint,
            &canonical,
            version,
            CachedPlan {
                query: query.clone(),
                trace: trace.clone(),
                columns: columns.clone(),
                physical: physical.clone(),
            },
        );

        let t = Instant::now();
        let mut executor = Executor::new(&snap, hostvars, self.exec);
        let rows = executor.run_output(&query, physical.as_deref())?;
        timings.execute_ns = t.elapsed().as_nanos() as u64;
        let cards = physical
            .as_deref()
            .map(|p| p.card_report(executor.actuals()));
        Ok(QueryOutput {
            columns,
            rows,
            trace,
            stats: executor.stats,
            timings,
            cache_hit: false,
            cards,
        })
    }

    /// [`SharedEngine::query_with`] with no host variables.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.query_with(sql, &HostVars::new())
    }

    /// `EXPLAIN` against a pinned snapshot, through the shared cache —
    /// same trace sections as [`Session::explain`](crate::Session::explain).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal("EXPLAIN applies to queries only"));
        };
        let canonical = ast.to_string();
        let snap = self.snapshot();
        let (stats, epoch) = self.stats_state();
        let fingerprint = PlanCache::fingerprint(&canonical, self.options_tag(epoch));
        let version = snap.version();
        let note = self.subscription_note(&canonical);
        if let Some(plan) = self.cache.get(fingerprint, &canonical, version) {
            let body = crate::explain::explain_with_trace(&plan.trace, &plan.query, &self.exec);
            return Ok(format!("Plan: cached\n{body}{note}"));
        }
        let bound = bind_output(snap.catalog(), &ast)?;
        let (query, trace) = optimize_output(&Optimizer::new(self.optimizer), &bound);
        let physical = self.plan_physical(&query, stats.as_ref());
        let columns = query.output_names();
        self.cache.insert(
            fingerprint,
            &canonical,
            version,
            CachedPlan {
                query: query.clone(),
                trace: trace.clone(),
                columns,
                physical: physical.clone(),
            },
        );
        let body = crate::explain::explain_with_trace(&trace, &query, &self.exec);
        Ok(format!("Plan: compiled\n{body}{note}"))
    }

    /// A trailing `EXPLAIN` section when the query text is also a live
    /// subscription: tier, license marker, and the view's cumulative
    /// `delta_rows` / `view_updates` counters.
    fn subscription_note(&self, canonical: &str) -> String {
        let subs = self.subs.lock().expect("subs lock poisoned");
        subs.entries
            .iter()
            .find(|e| e.view.sql() == canonical)
            .map(|e| {
                let work = e.view.work();
                format!(
                    "\nSubscription: id={} mode={} proof={} delta_rows={} view_updates={}",
                    e.id,
                    e.view.mode().tag(),
                    e.view.license().marker(),
                    work.delta_rows,
                    work.view_updates,
                )
            })
            .unwrap_or_default()
    }
}

/// A per-connection handle on a [`SharedEngine`]: same serving path,
/// plus a private query counter for the `Stats` frame.
#[derive(Debug)]
pub struct SharedSession {
    engine: Arc<SharedEngine>,
    queries: AtomicU64,
}

impl SharedSession {
    /// A new connection-scoped session on `engine`.
    pub fn new(engine: Arc<SharedEngine>) -> SharedSession {
        SharedSession {
            engine,
            queries: AtomicU64::new(0),
        }
    }

    /// The engine this session serves from.
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.engine
    }

    /// Queries this connection has served.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Query against a snapshot pinned at entry (shared plan cache).
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.engine.query(sql)
    }

    /// Query with host variables.
    pub fn query_with(&self, sql: &str, hostvars: &HostVars) -> Result<QueryOutput> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.engine.query_with(sql, hostvars)
    }

    /// Apply DDL/DML, publishing a new snapshot.
    pub fn execute(&self, sql: &str) -> Result<usize> {
        self.engine.execute(sql)
    }

    /// `EXPLAIN` through the shared cache.
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.engine.explain(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_types::Value;

    #[test]
    fn queries_run_against_a_pinned_snapshot() {
        let engine = SharedEngine::sample().unwrap();
        let before = engine.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
        engine
            .execute("INSERT INTO SUPPLIER VALUES (9, 'Carver', 'Toronto', 100, 'Active');")
            .unwrap();
        let after = engine.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
        assert_eq!(after.rows.len(), before.rows.len() + 1);
        assert!(after.cache_hit, "INSERT must not invalidate the plan");
    }

    #[test]
    fn two_sessions_share_one_plan_cache() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        let a = SharedSession::new(Arc::clone(&engine));
        let b = SharedSession::new(Arc::clone(&engine));
        let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        assert!(!a.query(sql).unwrap().cache_hit);
        assert!(
            b.query(sql).unwrap().cache_hit,
            "plan compiled by one connection serves the other"
        );
        let stats = engine.stats();
        assert_eq!((stats.cache.hits, stats.cache.misses), (1, 1));
        assert!(stats.cache.hit_rate() > 0.0);
        assert_eq!((a.queries_served(), b.queries_served()), (1, 1));
        assert_eq!(stats.queries_total, 2);
    }

    #[test]
    fn ddl_invalidates_shared_plans_for_everyone() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        let reader = SharedSession::new(Arc::clone(&engine));
        let writer = SharedSession::new(Arc::clone(&engine));
        let sql = "SELECT S.SNO FROM SUPPLIER S";
        reader.query(sql).unwrap();
        assert!(reader.query(sql).unwrap().cache_hit);
        writer
            .execute("CREATE TABLE Z (A INTEGER, PRIMARY KEY (A));")
            .unwrap();
        assert!(
            !reader.query(sql).unwrap().cache_hit,
            "schema change invalidates across connections"
        );
    }

    #[test]
    fn analyze_activates_cost_based_planning() {
        let engine = SharedEngine::sample().unwrap();
        let sql = "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
        assert!(engine.query(sql).unwrap().cards.is_none());
        engine.analyze();
        let out = engine.query(sql).unwrap();
        assert!(!out.cache_hit, "epoch bump recompiles the plan");
        assert!(out.cards.is_some(), "physical planning is active");
        assert_eq!(engine.stats().stats_epoch, 1);
    }

    #[test]
    fn failed_writes_leave_the_head_serving() {
        let engine = SharedEngine::sample().unwrap();
        let err = engine
            .execute("INSERT INTO SUPPLIER VALUES (1, 'Dup', 'Toronto', 1, 'Active');")
            .unwrap_err();
        assert!(err.to_string().contains("key violation"), "{err}");
        assert_eq!(
            engine
                .query("SELECT S.SNO FROM SUPPLIER S")
                .unwrap()
                .rows
                .len(),
            5,
            "head unchanged after the failed insert"
        );
    }

    #[test]
    fn concurrent_readers_and_writer_agree() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        std::thread::scope(|scope| {
            let w = Arc::clone(&engine);
            let writer = scope.spawn(move || {
                for i in 0..30i64 {
                    w.execute(&format!(
                        "INSERT INTO SUPPLIER VALUES ({}, 'W{}', 'Toronto', 1, 'Active');",
                        100 + i,
                        i
                    ))
                    .unwrap();
                }
            });
            for _ in 0..4 {
                let r = Arc::clone(&engine);
                scope.spawn(move || {
                    let session = SharedSession::new(r);
                    for _ in 0..50 {
                        let out = session
                            .query("SELECT S.SNO, S.SNAME FROM SUPPLIER S")
                            .unwrap();
                        assert!(out.rows.len() >= 5 && out.rows.len() <= 35);
                        // Within one query, the snapshot is consistent:
                        // every row has both columns bound.
                        assert!(out.rows.iter().all(|r| r.len() == 2));
                    }
                });
            }
            writer.join().unwrap();
        });
        let fin = engine.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
        assert_eq!(fin.rows.len(), 35);
        assert_eq!(engine.stats().snapshot_depth, 30);
    }

    #[test]
    fn explain_over_shared_engine_shows_proofs() {
        let engine = SharedEngine::sample().unwrap();
        let out = engine
            .explain(
                "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                 WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            )
            .unwrap();
        assert!(out.starts_with("Plan: compiled"), "{out}");
        assert!(out.contains("distinct-removal"), "{out}");
        assert!(out.contains("proof=✓"), "{out}");
    }

    fn collecting_sink() -> (SubscriptionSink, Arc<Mutex<Vec<ViewDelta>>>) {
        let log: Arc<Mutex<Vec<ViewDelta>>> = Arc::new(Mutex::new(Vec::new()));
        let writer = Arc::clone(&log);
        let sink: SubscriptionSink = Box::new(move |_, delta| {
            writer.lock().unwrap().push(delta.clone());
            true
        });
        (sink, log)
    }

    #[test]
    fn subscriptions_receive_deltas_after_writes() {
        let engine = SharedEngine::sample().unwrap();
        let (sink, log) = collecting_sink();
        let sub = engine
            .subscribe(
                "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
                sink,
            )
            .unwrap();
        assert_eq!(sub.mode, MaintenanceMode::Set);
        assert!(sub.license.is_proved());
        assert_eq!(
            sub.columns,
            vec!["SNO".into(), "PNO".into()] as Vec<ColumnName>
        );
        let initial = sub.rows.len();
        engine
            .execute("INSERT INTO PARTS VALUES (2, 77, 'gasket', 150, 'RED');")
            .unwrap();
        let deltas = log.lock().unwrap().clone();
        assert_eq!(deltas.len(), 1, "one publish, one push");
        assert_eq!(
            deltas[0].inserted,
            vec![vec![Value::Int(2), Value::Int(77)]]
        );
        assert_eq!(engine.subscription_rows(sub.id).unwrap().len(), initial + 1);
        let stats = engine.stats().subs;
        assert_eq!(stats.active, 1);
        assert_eq!(stats.deltas_pushed, 1);
        assert!(stats.delta_rows >= 1);
        assert!(stats.view_updates >= 1);
        assert!(engine.unsubscribe(sub.id));
        assert!(!engine.unsubscribe(sub.id), "already gone");
        assert_eq!(engine.stats().subs.active, 0);
    }

    #[test]
    fn aggregate_subscriptions_recompute_and_diff() {
        let engine = SharedEngine::sample().unwrap();
        let (sink, log) = collecting_sink();
        let sub = engine
            .subscribe(
                "SELECT S.SCITY, COUNT(*) AS N FROM SUPPLIER S GROUP BY S.SCITY",
                sink,
            )
            .unwrap();
        assert_eq!(sub.mode, MaintenanceMode::Recompute);
        assert!(
            !sub.license.is_proved(),
            "the obstruction is honest, not a proof"
        );
        assert_eq!(sub.rows.len(), 3, "three cities in the seed data");
        engine
            .execute("INSERT INTO SUPPLIER VALUES (9, 'Niner', 'Toronto', 50, 'Active');")
            .unwrap();
        // The insert *replaces* Toronto's count row — one delete plus
        // one insert, the shape insert-only delta plans cannot express.
        let deltas = log.lock().unwrap().clone();
        assert_eq!(deltas.len(), 1, "one publish, one push");
        assert_eq!(
            deltas[0].deleted,
            vec![vec![Value::str("Toronto"), Value::Int(2)]]
        );
        assert_eq!(
            deltas[0].inserted,
            vec![vec![Value::str("Toronto"), Value::Int(3)]]
        );
        let rows = engine.subscription_rows(sub.id).unwrap();
        assert!(rows.contains(&vec![Value::str("Toronto"), Value::Int(3)]));
    }

    #[test]
    fn ddl_rebuilds_views_and_analyze_marks_them_stale() {
        let engine = SharedEngine::sample().unwrap();
        let (sink, log) = collecting_sink();
        let sub = engine
            .subscribe("SELECT DISTINCT S.SNO FROM SUPPLIER S", sink)
            .unwrap();
        // DDL bumps the catalog version: the view must be rebuilt, and
        // a rebuild with unchanged contents pushes nothing.
        engine
            .execute("CREATE TABLE Z (A INTEGER, PRIMARY KEY (A));")
            .unwrap();
        assert!(log.lock().unwrap().is_empty(), "no spurious delta");
        // The rebuilt view still maintains incrementally.
        engine
            .execute("INSERT INTO SUPPLIER VALUES (9, 'Nine', 'Toronto', 1, 'Active');")
            .unwrap();
        assert_eq!(log.lock().unwrap().len(), 1);
        engine.analyze();
        engine
            .execute("INSERT INTO SUPPLIER VALUES (10, 'Ten', 'Chicago', 1, 'Active');")
            .unwrap();
        assert_eq!(log.lock().unwrap().len(), 2, "stale view still serves");
        assert_eq!(
            engine.subscription_rows(sub.id).unwrap().len(),
            7,
            "5 seed + 2 inserted suppliers"
        );
    }

    #[test]
    fn refusing_sink_drops_the_subscription() {
        let engine = SharedEngine::sample().unwrap();
        let sink: SubscriptionSink = Box::new(|_, _| false);
        engine
            .subscribe("SELECT DISTINCT S.SNO FROM SUPPLIER S", sink)
            .unwrap();
        assert_eq!(engine.stats().subs.active, 1);
        engine
            .execute("INSERT INTO SUPPLIER VALUES (9, 'Nine', 'Toronto', 1, 'Active');")
            .unwrap();
        let stats = engine.stats().subs;
        assert_eq!(stats.active, 0, "refused delta unsubscribes");
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn explain_surfaces_the_subscription_license() {
        let engine = SharedEngine::sample().unwrap();
        let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
        let sink: SubscriptionSink = Box::new(|_, _| true);
        engine.subscribe(sql, sink).unwrap();
        engine
            .execute("INSERT INTO PARTS VALUES (3, 88, 'pin', 151, 'BLUE');")
            .unwrap();
        let text = engine.explain(sql).unwrap();
        assert!(
            text.contains("Subscription: id=1 mode=set proof=✓"),
            "{text}"
        );
        assert!(text.contains("delta_rows=1"), "{text}");
        assert!(text.contains("view_updates=1"), "{text}");
    }

    #[test]
    fn maintenance_work_scales_with_delta_not_table() {
        let engine = SharedEngine::sample().unwrap();
        let (sink, _log) = collecting_sink();
        let sub = engine
            .subscribe(
                "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
                sink,
            )
            .unwrap();
        let after_init = engine.subscription_work(sub.id).unwrap();
        engine
            .execute("INSERT INTO PARTS VALUES (4, 60, 'rod', 152, 'RED');")
            .unwrap();
        let after_round = engine.subscription_work(sub.id).unwrap();
        assert_eq!(after_round.delta_rows - after_init.delta_rows, 1);
        assert_eq!(
            after_round.rows_scanned, after_init.rows_scanned,
            "key-probe round scans no table"
        );
        assert!(engine.stats().subs.rows_saved > 0);
    }

    #[test]
    fn hostvars_bind_per_execution_on_the_shared_path() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        let s = SharedSession::new(engine);
        let sql = "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = :CITY";
        let a = s
            .query_with(sql, &HostVars::new().with("CITY", "Toronto"))
            .unwrap();
        let b = s
            .query_with(sql, &HostVars::new().with("CITY", "Chicago"))
            .unwrap();
        assert!(!a.cache_hit && b.cache_hit);
        assert_ne!(a.rows, b.rows);
        assert!(a.rows.contains(&vec![Value::Int(1)]));
    }
}
