//! Multi-client serving: sessions over MVCC snapshots with one shared
//! plan cache.
//!
//! [`Session`](crate::Session) owns its [`Database`] — good for a
//! single-threaded driver, useless for a daemon where writers and
//! readers interleave. [`SharedEngine`] replaces the owned database
//! with a [`SnapshotStore`]:
//!
//! * every query pins the head snapshot **once** at query start and
//!   executes against that `Arc<Database>` — a consistent catalog +
//!   rows + indexes + statistics view, with no lock held while the
//!   query runs;
//! * DDL/DML goes through [`SharedEngine::execute`], which publishes a
//!   new snapshot copy-on-write (see [`uniq_catalog::snapshot`]);
//! * all connections share one process-wide sharded [`PlanCache`]. The
//!   fingerprint already covers the catalog version and the options
//!   tag, so a plan compiled by one connection serves every other —
//!   and `CREATE TABLE` / `CREATE INDEX` invalidate lazily exactly as
//!   in the single-session engine. Plain `INSERT` leaves the catalog
//!   version alone, so cached plans keep serving across snapshots; the
//!   executor re-verifies index freshness against the pinned snapshot
//!   on every run.
//!
//! [`SharedSession`] is the per-connection view: it borrows the engine
//! and adds a per-connection query counter, which the server's `Stats`
//! frame reports.

use crate::exec::{ExecOptions, Executor};
use crate::plancache::{CacheStats, CachedPlan, PlanCache};
use crate::session::QueryOutput;
use crate::stats::StageTimings;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use uniq_catalog::{Database, SnapshotStore};
use uniq_core::pipeline::{Optimizer, OptimizerOptions};
use uniq_cost::{plan_query, PhysicalPlan, PlannerOptions, Statistics};
use uniq_plan::{bind_query, BoundQuery, HostVars};
use uniq_sql::{parse_statement, Statement};
use uniq_types::{fnv64, Error, Result};

/// Statistics state: collected from one snapshot, stamped with an epoch
/// that is mixed into plan fingerprints (re-`ANALYZE` recompiles plans).
#[derive(Debug, Default)]
struct StatsState {
    stats: Option<Arc<Statistics>>,
    epoch: u64,
}

/// A process-wide engine: MVCC snapshot chain + shared plan cache +
/// one fixed optimizer/executor configuration for every connection.
#[derive(Debug)]
pub struct SharedEngine {
    store: SnapshotStore,
    cache: Arc<PlanCache>,
    /// Rewrite configuration (identical for all connections, so plans
    /// are shareable by construction).
    pub optimizer: OptimizerOptions,
    /// Static executor strategies.
    pub exec: ExecOptions,
    /// Cost-based planner configuration; physical planning activates
    /// once [`SharedEngine::analyze`] has collected statistics.
    pub planner: PlannerOptions,
    stats: RwLock<StatsState>,
    queries: AtomicU64,
}

/// One counter row of a [`SharedEngine`] stats report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Plan-cache counters, process-wide.
    pub cache: CacheStats,
    /// Snapshots published since the engine started (chain depth).
    pub snapshot_depth: u64,
    /// Queries served across all connections.
    pub queries_total: u64,
    /// Statistics epoch (0 = never analyzed).
    pub stats_epoch: u64,
}

impl SharedEngine {
    /// An engine seeded with `db`, default relational optimization and a
    /// default-capacity shared plan cache.
    pub fn new(db: Database) -> SharedEngine {
        SharedEngine {
            store: SnapshotStore::new(db),
            cache: Arc::new(PlanCache::default()),
            optimizer: OptimizerOptions::relational(),
            exec: ExecOptions::default(),
            planner: PlannerOptions::default(),
            stats: RwLock::new(StatsState::default()),
            queries: AtomicU64::new(0),
        }
    }

    /// Engine over the paper's populated Figure 1 database.
    pub fn sample() -> Result<SharedEngine> {
        Ok(SharedEngine::new(uniq_catalog::sample::supplier_database()?))
    }

    /// The snapshot store (for tests and admission logic).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Pin the current head snapshot.
    pub fn snapshot(&self) -> Arc<Database> {
        self.store.snapshot()
    }

    /// Apply a DDL/DML script copy-on-write and publish one new
    /// snapshot (atomic: a failure publishes nothing). Returns the
    /// number of statements applied.
    pub fn execute(&self, sql: &str) -> Result<usize> {
        self.store.run_script(sql)
    }

    /// Collect statistics from the current head snapshot and bump the
    /// statistics epoch. Cost-based physical planning is active from
    /// the next query on; plans compiled under older statistics are
    /// recompiled lazily (the epoch is part of the fingerprint).
    pub fn analyze(&self) {
        let snap = self.snapshot();
        let collected = Arc::new(Statistics::collect(&snap));
        let mut state = self.stats.write().expect("stats lock poisoned");
        state.stats = Some(collected);
        state.epoch += 1;
    }

    /// Counter snapshot for the `Stats` frame.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.stats(),
            snapshot_depth: self.store.depth(),
            queries_total: self.queries.load(Ordering::Relaxed),
            stats_epoch: self.stats.read().expect("stats lock poisoned").epoch,
        }
    }

    /// The fingerprint tag: optimizer + executor + planner knobs and the
    /// statistics epoch, exactly like
    /// [`Session`](crate::Session)'s — differently configured engines
    /// (or epochs) never share plans.
    fn options_tag(&self, epoch: u64) -> u64 {
        fnv64(
            format!(
                "{:?}|{:?}|{:?}|{}",
                self.optimizer, self.exec, self.planner, epoch
            )
            .as_bytes(),
        )
    }

    fn stats_state(&self) -> (Option<Arc<Statistics>>, u64) {
        let state = self.stats.read().expect("stats lock poisoned");
        (state.stats.clone(), state.epoch)
    }

    fn plan_physical(
        &self,
        query: &BoundQuery,
        stats: Option<&Arc<Statistics>>,
    ) -> Option<Arc<PhysicalPlan>> {
        let stats = stats?;
        let mut planner = self.planner;
        planner.cost_based = true;
        Some(Arc::new(plan_query(query, stats, planner)))
    }

    /// Parse, plan (through the shared cache) and execute `sql` against
    /// a snapshot pinned at entry. The serving path mirrors
    /// [`Session::query_with`](crate::Session::query_with); the only
    /// difference is *which* database the plan runs on — always the
    /// snapshot pinned here, never a moving head.
    pub fn query_with(&self, sql: &str, hostvars: &HostVars) -> Result<QueryOutput> {
        let mut timings = StageTimings::new();

        let t = Instant::now();
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal(
                "SharedEngine::query executes queries; use execute for DDL/DML",
            ));
        };
        let canonical = ast.to_string();
        timings.parse_ns = t.elapsed().as_nanos() as u64;

        // Pin the snapshot ONCE; everything below — cache validity,
        // binding, physical planning, execution — sees this version.
        let snap = self.snapshot();
        let (stats, epoch) = self.stats_state();
        self.queries.fetch_add(1, Ordering::Relaxed);

        let sql_hash = PlanCache::sql_hash(&canonical);
        let fingerprint = PlanCache::fingerprint_with(sql_hash, self.options_tag(epoch));
        let version = snap.version();
        if let Some(plan) = self.cache.get(fingerprint, &canonical, version) {
            let t = Instant::now();
            let mut executor = Executor::new(&snap, hostvars, self.exec);
            let rows = executor.run_with_plan(&plan.query, plan.physical.as_deref())?;
            timings.execute_ns = t.elapsed().as_nanos() as u64;
            let cards = plan
                .physical
                .as_deref()
                .map(|p| p.card_report(executor.actuals()));
            return Ok(QueryOutput {
                columns: plan.columns.clone(),
                rows,
                trace: plan.trace.clone(),
                stats: executor.stats,
                timings,
                cache_hit: true,
                cards,
            });
        }

        let t = Instant::now();
        let bound = bind_query(snap.catalog(), &ast)?;
        timings.bind_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let outcome = Optimizer::new(self.optimizer).optimize(&bound);
        let physical = self.plan_physical(&outcome.query, stats.as_ref());
        timings.optimize_ns = t.elapsed().as_nanos() as u64;

        let columns = outcome.query.output_names();
        self.cache.insert(
            fingerprint,
            &canonical,
            version,
            CachedPlan {
                query: outcome.query.clone(),
                trace: outcome.trace.clone(),
                columns: columns.clone(),
                physical: physical.clone(),
            },
        );

        let t = Instant::now();
        let mut executor = Executor::new(&snap, hostvars, self.exec);
        let rows = executor.run_with_plan(&outcome.query, physical.as_deref())?;
        timings.execute_ns = t.elapsed().as_nanos() as u64;
        let cards = physical
            .as_deref()
            .map(|p| p.card_report(executor.actuals()));
        Ok(QueryOutput {
            columns,
            rows,
            trace: outcome.trace,
            stats: executor.stats,
            timings,
            cache_hit: false,
            cards,
        })
    }

    /// [`SharedEngine::query_with`] with no host variables.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.query_with(sql, &HostVars::new())
    }

    /// `EXPLAIN` against a pinned snapshot, through the shared cache —
    /// same trace sections as [`Session::explain`](crate::Session::explain).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(ast) = stmt else {
            return Err(Error::internal("EXPLAIN applies to queries only"));
        };
        let canonical = ast.to_string();
        let snap = self.snapshot();
        let (stats, epoch) = self.stats_state();
        let fingerprint = PlanCache::fingerprint(&canonical, self.options_tag(epoch));
        let version = snap.version();
        if let Some(plan) = self.cache.get(fingerprint, &canonical, version) {
            let body = crate::explain::explain_with_trace(&plan.trace, &plan.query, &self.exec);
            return Ok(format!("Plan: cached\n{body}"));
        }
        let bound = bind_query(snap.catalog(), &ast)?;
        let outcome = Optimizer::new(self.optimizer).optimize(&bound);
        let physical = self.plan_physical(&outcome.query, stats.as_ref());
        let columns = outcome.query.output_names();
        self.cache.insert(
            fingerprint,
            &canonical,
            version,
            CachedPlan {
                query: outcome.query.clone(),
                trace: outcome.trace.clone(),
                columns,
                physical: physical.clone(),
            },
        );
        let body = crate::explain::explain_with_trace(&outcome.trace, &outcome.query, &self.exec);
        Ok(format!("Plan: compiled\n{body}"))
    }
}

/// A per-connection handle on a [`SharedEngine`]: same serving path,
/// plus a private query counter for the `Stats` frame.
#[derive(Debug)]
pub struct SharedSession {
    engine: Arc<SharedEngine>,
    queries: AtomicU64,
}

impl SharedSession {
    /// A new connection-scoped session on `engine`.
    pub fn new(engine: Arc<SharedEngine>) -> SharedSession {
        SharedSession {
            engine,
            queries: AtomicU64::new(0),
        }
    }

    /// The engine this session serves from.
    pub fn engine(&self) -> &Arc<SharedEngine> {
        &self.engine
    }

    /// Queries this connection has served.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Query against a snapshot pinned at entry (shared plan cache).
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.engine.query(sql)
    }

    /// Query with host variables.
    pub fn query_with(&self, sql: &str, hostvars: &HostVars) -> Result<QueryOutput> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.engine.query_with(sql, hostvars)
    }

    /// Apply DDL/DML, publishing a new snapshot.
    pub fn execute(&self, sql: &str) -> Result<usize> {
        self.engine.execute(sql)
    }

    /// `EXPLAIN` through the shared cache.
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.engine.explain(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_types::Value;

    #[test]
    fn queries_run_against_a_pinned_snapshot() {
        let engine = SharedEngine::sample().unwrap();
        let before = engine.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
        engine
            .execute("INSERT INTO SUPPLIER VALUES (9, 'Carver', 'Toronto', 100, 'Active');")
            .unwrap();
        let after = engine.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
        assert_eq!(after.rows.len(), before.rows.len() + 1);
        assert!(after.cache_hit, "INSERT must not invalidate the plan");
    }

    #[test]
    fn two_sessions_share_one_plan_cache() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        let a = SharedSession::new(Arc::clone(&engine));
        let b = SharedSession::new(Arc::clone(&engine));
        let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
                   WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
        assert!(!a.query(sql).unwrap().cache_hit);
        assert!(
            b.query(sql).unwrap().cache_hit,
            "plan compiled by one connection serves the other"
        );
        let stats = engine.stats();
        assert_eq!((stats.cache.hits, stats.cache.misses), (1, 1));
        assert!(stats.cache.hit_rate() > 0.0);
        assert_eq!((a.queries_served(), b.queries_served()), (1, 1));
        assert_eq!(stats.queries_total, 2);
    }

    #[test]
    fn ddl_invalidates_shared_plans_for_everyone() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        let reader = SharedSession::new(Arc::clone(&engine));
        let writer = SharedSession::new(Arc::clone(&engine));
        let sql = "SELECT S.SNO FROM SUPPLIER S";
        reader.query(sql).unwrap();
        assert!(reader.query(sql).unwrap().cache_hit);
        writer
            .execute("CREATE TABLE Z (A INTEGER, PRIMARY KEY (A));")
            .unwrap();
        assert!(
            !reader.query(sql).unwrap().cache_hit,
            "schema change invalidates across connections"
        );
    }

    #[test]
    fn analyze_activates_cost_based_planning() {
        let engine = SharedEngine::sample().unwrap();
        let sql = "SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
        assert!(engine.query(sql).unwrap().cards.is_none());
        engine.analyze();
        let out = engine.query(sql).unwrap();
        assert!(!out.cache_hit, "epoch bump recompiles the plan");
        assert!(out.cards.is_some(), "physical planning is active");
        assert_eq!(engine.stats().stats_epoch, 1);
    }

    #[test]
    fn failed_writes_leave_the_head_serving() {
        let engine = SharedEngine::sample().unwrap();
        let err = engine
            .execute("INSERT INTO SUPPLIER VALUES (1, 'Dup', 'Toronto', 1, 'Active');")
            .unwrap_err();
        assert!(err.to_string().contains("key violation"), "{err}");
        assert_eq!(
            engine
                .query("SELECT S.SNO FROM SUPPLIER S")
                .unwrap()
                .rows
                .len(),
            5,
            "head unchanged after the failed insert"
        );
    }

    #[test]
    fn concurrent_readers_and_writer_agree() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        std::thread::scope(|scope| {
            let w = Arc::clone(&engine);
            let writer = scope.spawn(move || {
                for i in 0..30i64 {
                    w.execute(&format!(
                        "INSERT INTO SUPPLIER VALUES ({}, 'W{}', 'Toronto', 1, 'Active');",
                        100 + i,
                        i
                    ))
                    .unwrap();
                }
            });
            for _ in 0..4 {
                let r = Arc::clone(&engine);
                scope.spawn(move || {
                    let session = SharedSession::new(r);
                    for _ in 0..50 {
                        let out = session
                            .query("SELECT S.SNO, S.SNAME FROM SUPPLIER S")
                            .unwrap();
                        assert!(out.rows.len() >= 5 && out.rows.len() <= 35);
                        // Within one query, the snapshot is consistent:
                        // every row has both columns bound.
                        assert!(out.rows.iter().all(|r| r.len() == 2));
                    }
                });
            }
            writer.join().unwrap();
        });
        let fin = engine.query("SELECT S.SNO FROM SUPPLIER S").unwrap();
        assert_eq!(fin.rows.len(), 35);
        assert_eq!(engine.stats().snapshot_depth, 30);
    }

    #[test]
    fn explain_over_shared_engine_shows_proofs() {
        let engine = SharedEngine::sample().unwrap();
        let out = engine
            .explain(
                "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
                 WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            )
            .unwrap();
        assert!(out.starts_with("Plan: compiled"), "{out}");
        assert!(out.contains("distinct-removal"), "{out}");
        assert!(out.contains("proof=✓"), "{out}");
    }

    #[test]
    fn hostvars_bind_per_execution_on_the_shared_path() {
        let engine = Arc::new(SharedEngine::sample().unwrap());
        let s = SharedSession::new(engine);
        let sql = "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = :CITY";
        let a = s
            .query_with(sql, &HostVars::new().with("CITY", "Toronto"))
            .unwrap();
        let b = s
            .query_with(sql, &HostVars::new().with("CITY", "Chicago"))
            .unwrap();
        assert!(!a.cache_hit && b.cache_hit);
        assert_ne!(a.rows, b.rows);
        assert!(a.rows.contains(&vec![Value::Int(1)]));
    }
}
