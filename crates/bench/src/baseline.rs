//! The pre-refactor optimizer driver, preserved for E15.
//!
//! Before the one-pass fixpoint driver landed, the optimizer restarted
//! its traversal from the root after *every* rule firing: find the
//! first rule that fires anywhere in the tree, apply it, and start
//! over. That is quadratic in the number of independent firing sites —
//! N firings cost N full traversals — where the current driver brings
//! every node to local quiescence in one bottom-up pass.
//!
//! This module reimplements that root-restart strategy on top of the
//! public rule registry so E15 can measure what the driver refactor
//! bought. Both drivers share [`RuleContext`], so uniqueness-test
//! memoization is identical and the comparison isolates traversal
//! strategy alone.

use uniqueness::core::pipeline::{OptimizerOptions, RewriteStep};
use uniqueness::core::rules::{ProofStatus, RewriteRule, RuleContext, RuleStats};
use uniqueness::core::unbind::unbind_query;
use uniqueness::plan::BoundQuery;

/// What the root-restart driver produced: the rewritten query plus the
/// counters needed to compare it against the one-pass driver.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The rewritten query (must equal the one-pass driver's output).
    pub query: BoundQuery,
    /// The applied steps, rendered exactly like the trace's (the old
    /// driver produced these too, so the comparison stays fair).
    pub steps: Vec<RewriteStep>,
    /// Full root-to-leaf traversals performed (one per firing, plus the
    /// final all-quiet traversal that certifies the fixpoint).
    pub traversals: u64,
    /// Per-rule attempt/fire/timing counters, same shape as the trace's.
    pub rule_stats: Vec<RuleStats>,
}

impl BaselineOutcome {
    /// Rule firings applied.
    pub fn firings(&self) -> u64 {
        self.steps.len() as u64
    }
}

/// Run the registry selected by `options` with the old root-restart
/// strategy: apply the first firing rule found in a pre-order walk,
/// then restart the walk from the root.
pub fn optimize_root_restart(options: &OptimizerOptions, query: &BoundQuery) -> BaselineOutcome {
    let rules = options.registry();
    let mut cx = RuleContext::new(options.test);
    for rule in &rules {
        cx.register(rule.name());
    }
    let mut current = query.clone();
    let mut steps: Vec<RewriteStep> = Vec::new();
    let mut traversals: u64 = 0;
    while steps.len() < options.max_steps {
        traversals += 1;
        match apply_first(&rules, &current, &mut cx) {
            Some((next, rule, theorem, why)) => {
                steps.push(RewriteStep {
                    rule,
                    theorem,
                    why,
                    proof: ProofStatus::default(),
                    sql_before: render(&current),
                    sql_after: render(&next),
                    before: current.clone(),
                    after: next.clone(),
                });
                current = next;
            }
            None => break,
        }
    }
    BaselineOutcome {
        query: current,
        steps,
        traversals,
        rule_stats: cx.into_stats(),
    }
}

/// Pre-order search for the first firing rule: offer every rule at this
/// node, then recurse into set-operation operands, returning as soon as
/// anything fires.
fn apply_first(
    rules: &[Box<dyn RewriteRule>],
    node: &BoundQuery,
    cx: &mut RuleContext,
) -> Option<(BoundQuery, &'static str, &'static str, String)> {
    for rule in rules {
        if let Some((next, j)) = cx.try_rule(rule.as_ref(), node) {
            return Some((next, rule.name(), j.theorem(), j.detail()));
        }
    }
    if let BoundQuery::SetOp {
        op,
        all,
        left,
        right,
    } = node
    {
        if let Some((new_left, rule, theorem, why)) = apply_first(rules, left, cx) {
            let rebuilt = BoundQuery::SetOp {
                op: *op,
                all: *all,
                left: Box::new(new_left),
                right: right.clone(),
            };
            return Some((rebuilt, rule, theorem, why));
        }
        if let Some((new_right, rule, theorem, why)) = apply_first(rules, right, cx) {
            let rebuilt = BoundQuery::SetOp {
                op: *op,
                all: *all,
                left: left.clone(),
                right: Box::new(new_right),
            };
            return Some((rebuilt, rule, theorem, why));
        }
    }
    None
}

fn render(q: &BoundQuery) -> String {
    unbind_query(q)
        .map(|ast| ast.to_string())
        .unwrap_or_else(|e| format!("<unprintable: {e}>"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniqueness::core::pipeline::Optimizer;
    use uniqueness::plan::bind_query;
    use uniqueness::sql::parse_query;

    fn bound(sql: &str) -> BoundQuery {
        let db = uniqueness::catalog::sample::supplier_schema().unwrap();
        bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn baseline_agrees_with_one_pass_driver() {
        let options = OptimizerOptions::relational();
        let optimizer = Optimizer::new(options);
        for sql in [
            crate::e15_union_chain(6),
            crate::e15_exists_chain(4),
            crate::E6_QUERY.to_string(),
        ] {
            let q = bound(&sql);
            let old = optimize_root_restart(&options, &q);
            let new = optimizer.optimize(&q);
            assert_eq!(old.query, new.query, "{sql}");
            assert_eq!(old.firings(), new.trace.steps.len() as u64, "{sql}");
        }
    }

    #[test]
    fn baseline_traversals_grow_with_firings() {
        // N independent sites ⇒ N firings ⇒ N+1 root restarts, while the
        // one-pass driver needs two passes regardless of N.
        let options = OptimizerOptions::relational();
        let q = bound(&crate::e15_union_chain(8));
        let old = optimize_root_restart(&options, &q);
        assert_eq!(old.firings(), 8);
        assert_eq!(old.traversals, 9);
        let new = Optimizer::new(options).optimize(&q);
        assert_eq!(new.trace.steps.len(), 8);
        assert_eq!(new.trace.passes, 2);
    }
}
