//! Regenerate every experiment table of `EXPERIMENTS.md`.
//!
//! Usage:
//! ```text
//! cargo run -p uniq-bench --bin report --release            # all experiments
//! cargo run -p uniq-bench --bin report --release -- e2 e7   # a subset
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use uniq_bench::baseline::optimize_root_restart;
use uniq_bench::{
    e15_exists_chain, e15_union_chain, e16_contenders, e16_corpus, e17_corpus, e18_contenders,
    e18_corpus, e18_work, e19_contenders, e19_corpus, e19_point_lookups, e19_work, e20_corpus,
    fmt_duration, median_time, scaled_session, total_work, E17_UNIQUE_JOIN, E18_JOIN_DISTINCT,
    E18_UNIQUE_PROBE, E19_INDEX_JOIN, E20_PUSHDOWN_BLOCKED, E20_PUSHDOWN_OK, E20_UNION_BOUND,
    E2_QUERY, E4_QUERY, E5_QUERY,
};
use uniqueness::core::algorithm1::{algorithm1, Algorithm1Options};
use uniqueness::core::analysis::unique_projection;
use uniqueness::core::pipeline::{Optimizer, OptimizerOptions};
use uniqueness::engine::{
    DistinctMethod, ExecStats, MaintenanceMode, Session, SharedEngine, SharedSession, StageTimings,
};
use uniqueness::ims;
use uniqueness::oodb;
use uniqueness::plan::{bind_query, HostVars};
use uniqueness::server::{Client, Server, ServerConfig};
use uniqueness::sql::parse_query;
use uniqueness::types::{TableName, Value};
use uniqueness::workload::{
    generate_corpus, run_batch, run_client_batch, scaled_database, BatchOptions, CorpusStats,
    ScaleConfig,
};

/// Machine-readable metric rows collected while the experiments print
/// their tables: `(experiment, metric, value, asserted)`. `asserted`
/// marks values a hard in-binary assertion guards (a regression aborts
/// the report), as opposed to informational measurements.
#[derive(Default)]
struct Metrics {
    rows: Vec<(String, String, f64, bool)>,
}

impl Metrics {
    fn push(&mut self, experiment: &str, metric: &str, value: f64, asserted: bool) {
        self.rows
            .push((experiment.into(), metric.into(), value, asserted));
    }

    /// Serialize the rows as a JSON array. Hand-rolled: the only string
    /// fields are identifiers this binary controls, so escaping is
    /// limited to the characters JSON forbids raw.
    fn to_json(&self) -> String {
        let esc = |s: &str| {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c => vec![c],
                })
                .collect::<String>()
        };
        let body: Vec<String> = self
            .rows
            .iter()
            .map(|(e, m, v, a)| {
                format!(
                    "  {{\"experiment\": \"{}\", \"metric\": \"{}\", \"value\": {}, \"asserted\": {}}}",
                    esc(e),
                    esc(m),
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        format!("{}", *v as i64)
                    } else {
                        format!("{v:.4}")
                    },
                    a
                )
            })
            .collect();
        format!("[\n{}\n]\n", body.join(",\n"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let runs = 5;
    let mut metrics = Metrics::default();

    if want("e1") {
        e1_paper_examples();
    }
    if want("e2") {
        e2_distinct_removal(runs);
    }
    if want("e3") {
        e3_corpus();
    }
    if want("e4") {
        e4_subquery_to_join(runs);
    }
    if want("e5") {
        e5_corollary_1(runs);
    }
    if want("e6") {
        e6_intersect(runs);
    }
    if want("e7") {
        e7_ims_key();
    }
    if want("e8") {
        e8_ims_nonkey();
    }
    if want("e9") {
        e9_oodb();
    }
    if want("e10") {
        e10_analysis_cost();
    }
    if want("e11") {
        e11_setop_semantics();
    }
    if want("e12") {
        e12_distinct_methods(runs);
    }
    if want("e13") {
        e13_join_elimination(runs);
    }
    if want("e14") {
        e14_plan_cache(&mut metrics);
    }
    if want("e15") {
        e15_optimizer_driver(runs, &mut metrics);
    }
    if want("e16") {
        e16_cost_based_planning(&mut metrics);
    }
    if want("e17") {
        e17_parallel_executor(runs, &mut metrics);
    }
    if want("e18") {
        e18_columnar_execution(&mut metrics);
    }
    if want("e19") {
        e19_index_access(&mut metrics);
    }
    if want("e20") {
        e20_proof_checker(&mut metrics);
    }
    if want("e21") {
        e21_server(&mut metrics);
    }
    if want("e22") {
        e22_subscriptions(&mut metrics);
    }
    if want("e23") {
        e23_agg_topk(&mut metrics);
    }

    if !metrics.rows.is_empty() {
        let path = "BENCH_E23.json";
        // The metric file is cumulative across experiments; the
        // previous artifact name is retired with it.
        let _ = std::fs::remove_file("BENCH_E22.json");
        std::fs::write(path, metrics.to_json()).expect("write metric rows");
        println!("\nwrote {} metric row(s) to {path}", metrics.rows.len());
    }
}

/// E23 — uniqueness-elided aggregation & Top-K: the three proof-gated
/// fast paths against the un-elided oracle (the same session with
/// `with_agg_elision(false)`, which also disables the early-stopping
/// index walk) over a 2,000-supplier instance:
///
/// 1. **key-covered `GROUP BY`** — grouping by the `SUPPLIER` key makes
///    every row its own group, so the elided one-pass books *zero* hash
///    operations where hash grouping pays one probe per row;
/// 2. **`COUNT(DISTINCT key)`** — the checker proves the argument
///    duplicate-free, degrading to plain `COUNT`: no distinct-set
///    insert per row;
/// 3. **`ORDER BY key-prefix LIMIT k`** — an ordered index on the
///    `ORDER BY` columns licenses a walk that stops after k rows,
///    against a full scan-sort-cut.
///
/// Asserts each elision does >= 5x fewer work units, that the two
/// rewrites carry their proof step in the trace, that EXPLAIN renders
/// the early-stop marker, and that every answer is multiset-identical
/// to the oracle's.
fn e23_agg_topk(m: &mut Metrics) {
    header("E23", "uniqueness-elided aggregation & Top-K");
    let cfg = ScaleConfig {
        suppliers: 2_000,
        parts_per_supplier: 2,
        agents_per_supplier: 1,
        ..Default::default()
    };
    let db = scaled_database(&cfg).expect("scaled database");
    let index = "CREATE INDEX IDX_S_BUDGET_SNO ON SUPPLIER (BUDGET, SNO);";
    let mut fast = Session::new(db.clone());
    fast.run_script(index).expect("index");
    let mut naive = Session::new(db).with_agg_elision(false);
    naive.run_script(index).expect("index");

    let sorted = |s: &Session, sql: &str| {
        let out = s.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut rows = out.rows;
        rows.sort_by(|a, b| uniqueness::types::value::tuple_null_cmp(a, b).unwrap());
        (rows, out.stats, out.trace)
    };
    let row = |label: &str, naive_work: u64, fast_work: u64| -> f64 {
        let ratio = naive_work as f64 / fast_work.max(1) as f64;
        println!("{label:<30} {naive_work:>11} {fast_work:>12} {ratio:>7.1}x");
        ratio
    };
    println!(
        "instance: 2,000 suppliers; oracle = with_agg_elision(false), \
         same answers, every elision off\n"
    );
    println!(
        "{:<30} {:>11} {:>12} {:>8}",
        "elision", "naive work", "elided work", "ratio"
    );

    // 1. Key-covered GROUP BY -> no-op grouping. Work unit: hash ops.
    let group_sql =
        "SELECT S.SNO, COUNT(*) AS N, SUM(S.BUDGET) AS B FROM SUPPLIER S GROUP BY S.SNO";
    let (want, ns, _) = sorted(&naive, group_sql);
    let (got, fs, trace) = sorted(&fast, group_sql);
    assert_eq!(got, want, "group-elided multiset differs");
    assert_eq!(got.len(), 2_000, "one group per supplier key");
    assert!(
        trace.steps.iter().any(|s| s.rule == "group-by-key-elision"),
        "group elision must carry its proof step in the trace"
    );
    assert_eq!(fs.hash_probes, 0, "elided grouping books zero hash ops");
    let group_ratio = row("GROUP BY key (hash ops)", ns.hash_probes, fs.hash_probes);
    m.push("E23", "group_naive_hash_ops", ns.hash_probes as f64, false);
    m.push("E23", "group_elided_hash_ops", fs.hash_probes as f64, true);
    m.push("E23", "group_work_ratio", group_ratio, true);
    assert!(
        ns.hash_probes >= 5 * fs.hash_probes.max(1),
        "group elision under 5x: {} vs {}",
        ns.hash_probes,
        fs.hash_probes
    );

    // 2. COUNT(DISTINCT key) -> COUNT. Work unit: hash ops (the naive
    // plan's only hash work here is the per-row distinct-set insert).
    let cd_sql = "SELECT COUNT(DISTINCT S.SNO) AS N FROM SUPPLIER S";
    let (want, ns, _) = sorted(&naive, cd_sql);
    let (got, fs, trace) = sorted(&fast, cd_sql);
    assert_eq!(got, want, "count-distinct multiset differs");
    assert_eq!(got, vec![vec![Value::Int(2_000)]]);
    assert!(
        trace
            .steps
            .iter()
            .any(|s| s.rule == "count-distinct-elision"),
        "count-distinct elision must carry its proof step in the trace"
    );
    let cd_ratio = row(
        "COUNT(DISTINCT key) (hash ops)",
        ns.hash_probes,
        fs.hash_probes,
    );
    m.push(
        "E23",
        "count_distinct_naive_hash_ops",
        ns.hash_probes as f64,
        false,
    );
    m.push(
        "E23",
        "count_distinct_elided_hash_ops",
        fs.hash_probes as f64,
        true,
    );
    m.push("E23", "count_distinct_work_ratio", cd_ratio, true);
    assert!(
        ns.hash_probes >= 5 * fs.hash_probes.max(1),
        "count-distinct elision under 5x: {} vs {}",
        ns.hash_probes,
        fs.hash_probes
    );

    // 3. ORDER BY key-prefix LIMIT k -> early-stopping index walk.
    // Work unit: rows examined. The ORDER BY covers (BUDGET, SNO) — a
    // total order — so even the row *sequence* must agree exactly.
    let topk_sql = "SELECT S.SNO, S.BUDGET FROM SUPPLIER S ORDER BY S.BUDGET, S.SNO LIMIT 10";
    let base = naive.query(topk_sql).expect("naive top-k");
    let out = fast.query(topk_sql).expect("elided top-k");
    assert_eq!(out.rows, base.rows, "top-k rows differ");
    assert_eq!(out.rows.len(), 10);
    assert_eq!(out.stats.early_stops, 1, "{:?}", out.stats);
    assert_eq!(out.stats.sorts, 0, "the index serves the order");
    assert_eq!(out.stats.topk_rows_examined, 10, "stopped after k rows");
    assert!(base.stats.rows_scanned >= 2_000, "oracle scans everything");
    assert!(base.stats.sorts >= 1, "oracle sorts everything");
    let topk_ratio = row(
        "ORDER BY+LIMIT (rows examined)",
        base.stats.rows_scanned,
        out.stats.topk_rows_examined,
    );
    m.push(
        "E23",
        "topk_naive_rows_examined",
        base.stats.rows_scanned as f64,
        false,
    );
    m.push(
        "E23",
        "topk_rows_examined",
        out.stats.topk_rows_examined as f64,
        true,
    );
    m.push("E23", "topk_work_ratio", topk_ratio, true);
    assert!(
        base.stats.rows_scanned >= 5 * out.stats.topk_rows_examined.max(1),
        "early stop under 5x: {} vs {}",
        base.stats.rows_scanned,
        out.stats.topk_rows_examined
    );

    let explain = fast.explain(topk_sql).expect("explain");
    let limit_line = explain
        .lines()
        .find(|l| l.contains("Limit"))
        .expect("limit line");
    assert!(
        limit_line.contains("early-stop(IDX_S_BUDGET_SNO)"),
        "{explain}"
    );
    println!("\nEXPLAIN top-k:\n  {}", limit_line.trim());
    m.push("E23", "corpus_multiset_identical", 3.0, true);
    println!(
        "\nall three elisions >= 5x fewer work units (bars asserted \
         in-binary), answers multiset-identical to the oracle"
    );
}

/// E21 — the multi-client daemon end to end: sustained QPS at
/// N ∈ {1, 2, 4, 8} concurrent TCP clients against an in-process
/// `uniqd` vs the serial in-process batch driver, the process-wide
/// shared plan cache observed over the wire, and the MVCC snapshot
/// chain (a pinned reader never observes a concurrent `INSERT` or
/// `CREATE INDEX` that a fresh snapshot does). Asserts (1) N=4
/// multi-client QPS ≥ the serial driver's on a ≥4-core host, (2) a
/// second connection hits on a plan the first compiled, and (3) the
/// pinned snapshot's row count and catalog version are untouched by
/// concurrent writes while untouched tables share storage.
fn e21_server(m: &mut Metrics) {
    header(
        "E21",
        "uniq-server: multi-client QPS, shared cache, snapshots",
    );
    let cfg = ScaleConfig {
        suppliers: 240,
        parts_per_supplier: 5,
        ..Default::default()
    };
    let db = scaled_database(&cfg).expect("scaled database");
    // Join-heavy shapes, repeated: per-statement execution dominates
    // the loopback round trip (so concurrency measures the engine, not
    // the wire), and the repeats give both contenders' plan caches the
    // same thing to amortize.
    let shapes = e17_corpus();
    let reps = 40;
    let corpus: Vec<String> = (0..reps).flat_map(|_| shapes.iter().cloned()).collect();
    println!(
        "workload: {} statements ({} shapes × {reps}), {} suppliers × {} parts\n",
        corpus.len(),
        shapes.len(),
        cfg.suppliers,
        cfg.parts_per_supplier
    );

    // The serial baseline: the in-process driver, one thread, no TCP.
    let serial = run_batch(
        &Session::new(db.clone()),
        &corpus,
        BatchOptions {
            threads: 1,
            degree: None,
        },
    );
    assert_eq!(serial.errors, 0, "serial driver: {:?}", serial.first_error);

    let engine = Arc::new(SharedEngine::new(db));
    let server =
        Server::start(engine, ("127.0.0.1", 0), ServerConfig::default()).expect("start server");
    let addr = server.local_addr().to_string();

    println!(
        "{:<22} {:>9} {:>10} {:>9}",
        "driver", "stmts/s", "hit rate", "elapsed"
    );
    println!(
        "{:<22} {:>9.0} {:>9.1}% {:>9}",
        "serial in-process",
        serial.throughput(),
        100.0 * serial.hit_rate(),
        fmt_duration(serial.elapsed)
    );
    m.push("E21", "qps_serial", serial.throughput(), false);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut qps4 = 0.0;
    for clients in [1usize, 2, 4, 8] {
        let report = run_client_batch(&addr, &corpus, clients);
        assert_eq!(
            report.errors, 0,
            "{clients} client(s): {:?}",
            report.first_error
        );
        assert!(
            report.hit_rate() > 0.0,
            "shared cache never hit at {clients} client(s)"
        );
        println!(
            "{:<22} {:>9.0} {:>9.1}% {:>9}",
            format!("{clients} client(s) over TCP"),
            report.throughput(),
            100.0 * report.hit_rate(),
            fmt_duration(report.elapsed)
        );
        m.push(
            "E21",
            &format!("qps_clients_{clients}"),
            report.throughput(),
            clients == 4 && cores >= 4,
        );
        if clients == 4 {
            qps4 = report.throughput();
        }
    }
    let ratio = qps4 / serial.throughput();
    println!("\n4-client QPS / serial QPS: {ratio:.2}× on {cores} core(s)");
    if cores >= 4 {
        assert!(
            qps4 >= serial.throughput(),
            "4 clients ({qps4:.0}/s) fell below the serial driver ({:.0}/s)",
            serial.throughput()
        );
    } else {
        println!("(host exposes {cores} core(s); the ≥-serial assertion needs 4 and was skipped)");
    }
    m.push("E21", "qps4_vs_serial", ratio, cores >= 4);

    // The shared plan cache across *distinct* connections, observed
    // end to end: a statement no driver connection has sent compiles
    // once on the first connection and hits on the second.
    let fresh_sql = "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.BUDGET > 0";
    let mut first = Client::connect(addr.as_str()).expect("connect");
    let mut second = Client::connect(addr.as_str()).expect("connect");
    assert!(!first.query(fresh_sql).expect("query").cache_hit);
    assert!(
        second.query(fresh_sql).expect("query").cache_hit,
        "second connection must hit the plan the first compiled"
    );
    let stats = second.stats().expect("stats");
    let stat = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    println!(
        "shared cache: {} hits / {} misses ({:.1}% hit rate) across {} served connections",
        stat("cache.hits"),
        stat("cache.misses"),
        stat("cache.hit_rate_bp") as f64 / 100.0,
        stat("connections.served")
    );
    assert!(stat("cache.hits") > 0 && stat("cache.hit_rate_bp") > 0);
    m.push(
        "E21",
        "shared_cache_hit_rate_bp",
        stat("cache.hit_rate_bp") as f64,
        true,
    );

    // Snapshot isolation: pin a snapshot, then land an INSERT and a
    // CREATE INDEX through a writer connection. The pinned snapshot's
    // row count and catalog version are untouched; a fresh snapshot
    // sees both; the untouched PARTS table shares storage across the
    // chain instead of being copied.
    let engine = server.engine();
    let supplier = TableName::new("SUPPLIER");
    let parts = TableName::new("PARTS");
    let pinned = engine.snapshot();
    let rows_before = pinned.row_count(&supplier).expect("row count");
    let version_before = pinned.version();
    first
        .exec("INSERT INTO SUPPLIER VALUES (9001, 'Latecomer', 'Toronto', 10, 'Active');")
        .expect("writer INSERT");
    first
        .exec("CREATE INDEX IDX_E21_SCITY ON SUPPLIER (SCITY);")
        .expect("writer CREATE INDEX");
    let fresh = engine.snapshot();
    assert_eq!(
        pinned.row_count(&supplier).expect("row count"),
        rows_before,
        "pinned snapshot must not observe the concurrent INSERT"
    );
    assert_eq!(
        pinned.version(),
        version_before,
        "pinned snapshot must not observe the concurrent CREATE INDEX"
    );
    assert_eq!(
        fresh.row_count(&supplier).expect("row count"),
        rows_before + 1,
        "fresh snapshot sees the INSERT"
    );
    assert!(
        fresh.version() > version_before,
        "fresh snapshot sees the CREATE INDEX"
    );
    assert!(
        pinned.shares_storage(&fresh, &parts),
        "untouched PARTS storage must be shared across the chain, not copied"
    );
    let depth = engine.stats().snapshot_depth;
    println!(
        "snapshot isolation: pinned snapshot holds {rows_before} rows @ catalog v{version_before}; \
         fresh sees {} rows @ v{} (chain depth {depth}); PARTS storage shared",
        rows_before + 1,
        fresh.version()
    );
    assert!(depth >= 2, "two writes published two snapshots");
    m.push("E21", "snapshot_isolation", 1.0, true);
    m.push("E21", "snapshot_chain_depth", depth as f64, false);
}

/// The E22 set-tier view: `DISTINCT` over a key-covering join, so
/// Algorithm 1 proves the block duplicate-free and the proof checker
/// certifies the `DISTINCT` elision — licensing refcount-free
/// (`HashSet`) maintenance.
const E22_SET_VIEW: &str =
    "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";

/// The E22 counting-tier view: neither projected column covers a key,
/// so view rows fold many base rows and maintenance must keep signed
/// multiplicities.
const E22_COUNTING_VIEW: &str =
    "SELECT DISTINCT P.COLOR, S.SCITY FROM PARTS P, SUPPLIER S WHERE P.SNO = S.SNO";

/// The E22 recompute-tier view: the `NOT EXISTS` subquery makes delta
/// evaluation non-monotone (an insert can *delete* view rows), so the
/// registry falls back to recompute-and-diff.
const E22_RECOMPUTE_VIEW: &str = "SELECT S.SNO FROM SUPPLIER S WHERE NOT EXISTS \
     (SELECT P.PNO FROM PARTS P WHERE P.SNO = S.SNO)";

/// The E22 work metric: every counter either side of the comparison is
/// charged in — base rows scanned, delta rows consumed, probe steps,
/// hash probes and sort comparisons. Incremental maintenance and full
/// recompute pay in the same currencies, so neither can hide work.
fn e22_work(stats: &ExecStats) -> u64 {
    stats.rows_scanned
        + stats.delta_rows
        + stats.probe_steps
        + stats.hash_probes
        + stats.sort_comparisons
}

/// E22 — O(Δ) subscription maintenance vs full recompute. Three views
/// are subscribed, one per maintenance tier, and a battery of
/// single-statement INSERTs is driven through the engine at two table
/// sizes. Asserts (1) the set tier is licensed by a *checked* proof
/// (license-not-promise), (2) after **every** insert each view's
/// incremental contents equal a full recompute over the head snapshot
/// — unconditionally, on all tiers, (3) per-insert maintenance work is
/// ≥10× under per-insert full-recompute work at the 2,000-row scale,
/// and (4) doubling the base tables leaves per-insert maintenance work
/// flat (it scales with |Δ|) while recompute work grows with table
/// size.
fn e22_subscriptions(m: &mut Metrics) {
    header("E22", "O(Δ) subscriptions: delta maintenance vs recompute");
    let cfg = ScaleConfig {
        suppliers: 500,
        parts_per_supplier: 4,
        ..Default::default()
    };
    let engine = Arc::new(SharedEngine::new(
        scaled_database(&cfg).expect("scaled database"),
    ));
    let oracle = SharedSession::new(Arc::clone(&engine));
    let parts_rows = engine
        .snapshot()
        .row_count(&TableName::from("PARTS"))
        .expect("row count");
    assert!(
        parts_rows >= 2_000,
        "the work claim is stated at ≥2,000 rows"
    );

    let views = [
        ("set", E22_SET_VIEW),
        ("counting", E22_COUNTING_VIEW),
        ("recompute", E22_RECOMPUTE_VIEW),
    ];
    let mut subs: Vec<(u64, &str, &str)> = Vec::new();
    for (tier, sql) in views {
        let sub = engine
            .subscribe(sql, Box::new(|_, _| true))
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert_eq!(sub.mode.tag(), tier, "{sql} landed on the wrong tier");
        // License-not-promise: the refcount-free tier is only ever
        // granted with an Algorithm 1 + proof-checker certificate
        // attached, re-checked against the live catalog.
        if sub.mode == MaintenanceMode::Set {
            assert!(sub.license.is_proved(), "unproved set tier for {sql}");
        }
        println!(
            "subscribed [{}] proof {}  {}",
            sub.mode.tag(),
            sub.license.marker(),
            sql
        );
        subs.push((sub.id, tier, sql));
    }
    m.push("E22", "set_tier_license_proved", 1.0, true);

    // The unconditional oracle: incremental state == full recompute,
    // after every statement, on every tier. Also accumulates each
    // view's recompute cost, the baseline maintenance competes with.
    let mut oracle_rounds = 0u64;
    let check_all = |rec_work: &mut [u64], oracle_rounds: &mut u64, label: &str| {
        for (i, (id, _, sql)) in subs.iter().enumerate() {
            let view = engine.subscription_rows(*id).expect("subscription lives");
            let out = oracle.query(sql).expect("recompute");
            rec_work[i] += e22_work(&out.stats);
            let mut want = out.rows;
            want.sort();
            assert_eq!(
                view, want,
                "{label}: view diverged from recompute for {sql}"
            );
            *oracle_rounds += 1;
        }
    };
    let per_view_work = |subs: &[(u64, &str, &str)]| -> Vec<u64> {
        subs.iter()
            .map(|(id, _, _)| e22_work(&engine.subscription_work(*id).expect("live")))
            .collect()
    };

    // Phase 1 — interleaving battery: fresh suppliers, some with parts,
    // exercising every tier's update path (the `NOT EXISTS` view both
    // gains and loses rows under insert-only bases). Oracle-checked
    // after every single statement.
    let mut next_sno = 1_000_000i64;
    let mut next_oem = 5_000_000i64;
    let mut mixed_rec = vec![0u64; subs.len()];
    for round in 0..12usize {
        next_sno += 1;
        engine
            .execute(&format!(
                "INSERT INTO SUPPLIER VALUES ({next_sno}, 'Late', 'Toronto', 7, 'Active')"
            ))
            .expect("insert supplier");
        check_all(&mut mixed_rec, &mut oracle_rounds, "mixed");
        if round % 2 == 0 {
            for p in 1..=2 {
                next_oem += 1;
                engine
                    .execute(&format!(
                        "INSERT INTO PARTS VALUES ({next_sno}, {p}, 'part{p}', {next_oem}, 'RED')"
                    ))
                    .expect("insert part");
                check_all(&mut mixed_rec, &mut oracle_rounds, "mixed");
            }
        }
    }

    // Phase 2 — the O(Δ) work measurement: single-row PARTS inserts
    // against an existing supplier. The set-tier delta join probes
    // SUPPLIER through its candidate key, so licensed maintenance work
    // per insert is independent of table size; full recompute re-scans
    // both base tables every time.
    let rounds = 16usize;
    let mut next_pno = 10_000i64;
    let run_battery = |label: &str,
                       next_pno: &mut i64,
                       next_oem: &mut i64,
                       oracle_rounds: &mut u64|
     -> (Vec<u64>, Vec<u64>) {
        let baseline = per_view_work(&subs);
        let mut rec = vec![0u64; subs.len()];
        for _ in 0..rounds {
            *next_pno += 1;
            *next_oem += 1;
            engine
                .execute(&format!(
                    "INSERT INTO PARTS VALUES (1, {next_pno}, 'delta', {next_oem}, 'RED')"
                ))
                .expect("insert part");
            check_all(&mut rec, oracle_rounds, label);
        }
        let incr = per_view_work(&subs)
            .iter()
            .zip(&baseline)
            .map(|(after, before)| after - before)
            .collect();
        (incr, rec)
    };

    let (incr_base, rec_base) =
        run_battery("base", &mut next_pno, &mut next_oem, &mut oracle_rounds);
    // Double the base tables, then re-run the same battery: |Δ| per
    // insert is unchanged, the table size is not.
    let mut grow = String::new();
    for _ in 0..cfg.suppliers {
        next_sno += 1;
        grow.push_str(&format!(
            "INSERT INTO SUPPLIER VALUES ({next_sno}, 'Bulk', 'Chicago', 3, 'Active');"
        ));
        for p in 1..=cfg.parts_per_supplier as i64 {
            next_oem += 1;
            grow.push_str(&format!(
                "INSERT INTO PARTS VALUES ({next_sno}, {p}, 'part{p}', {next_oem}, 'GREEN');"
            ));
        }
    }
    engine.execute(&grow).expect("bulk growth");
    let (incr_grown, rec_grown) =
        run_battery("grown", &mut next_pno, &mut next_oem, &mut oracle_rounds);

    let per = |w: u64| w as f64 / rounds as f64;
    println!(
        "\n{:>10}  {:>10}  {:>15}  {:>15}  {:>9}",
        "tier", "base rows", "maint work/ins", "recompute/ins", "ratio"
    );
    for (i, (_, tier, _)) in subs.iter().enumerate() {
        for (label, size, incr, rec) in [
            ("", parts_rows, &incr_base, &rec_base),
            ("(2x)", 2 * parts_rows, &incr_grown, &rec_grown),
        ] {
            println!(
                "{:>10}  {:>10}  {:>15.1}  {:>15.1}  {:>8.1}x",
                format!("{tier}{label}"),
                size,
                per(incr[i]),
                per(rec[i]),
                rec[i] as f64 / incr[i].max(1) as f64
            );
        }
    }

    // (3) The headline claim: at ≥2,000 rows, per-insert maintenance of
    // the proof-licensed set-tier view is ≥10× cheaper than per-insert
    // full recompute, in shared work units.
    assert!(
        rec_base[0] >= 10 * incr_base[0],
        "set-tier maintenance work {} not 10x under recompute work {}",
        incr_base[0],
        rec_base[0]
    );
    // (4) Licensed maintenance scales with |Δ|, not table size:
    // doubling the base leaves per-insert maintenance work flat
    // (deterministic counters; 2x headroom), while recompute work
    // clearly grows.
    assert!(
        incr_grown[0] <= 2 * incr_base[0],
        "per-insert maintenance work grew with table size: {} -> {}",
        incr_base[0],
        incr_grown[0]
    );
    assert!(
        2 * rec_grown[0] >= 3 * rec_base[0],
        "recompute work should track table size: {} -> {}",
        rec_base[0],
        rec_grown[0]
    );

    let stats = engine.stats().subs;
    println!(
        "\nregistry: {} active, {} deltas pushed, {} delta rows, {} view updates, {} base rows saved",
        stats.active, stats.deltas_pushed, stats.delta_rows, stats.view_updates, stats.rows_saved
    );
    assert_eq!(stats.active, 3);
    assert!(stats.deltas_pushed > 0 && stats.rows_saved > 0);
    // 24 mixed statements + two 16-insert batteries, 3 views each.
    assert_eq!(oracle_rounds, ((24 + 2 * rounds) * subs.len()) as u64);

    m.push("E22", "oracle_rounds", oracle_rounds as f64, true);
    m.push("E22", "maint_work_per_insert", per(incr_base[0]), false);
    m.push("E22", "recompute_work_per_insert", per(rec_base[0]), false);
    m.push(
        "E22",
        "work_ratio_at_2000_rows",
        rec_base[0] as f64 / incr_base[0].max(1) as f64,
        true,
    );
    m.push(
        "E22",
        "maint_work_growth_on_2x_base",
        incr_grown[0] as f64 / incr_base[0].max(1) as f64,
        true,
    );
    m.push(
        "E22",
        "recompute_work_growth_on_2x_base",
        rec_grown[0] as f64 / rec_base[0].max(1) as f64,
        true,
    );
    m.push("E22", "rows_saved", stats.rows_saved as f64, false);
    m.push("E22", "deltas_pushed", stats.deltas_pushed as f64, false);
}

/// E20 — the U-semiring proof checker over the standard rewrite corpus:
/// per-rule proved/unknown counts and checker time under both optimizer
/// profiles. Asserts (1) at least 80% of fired steps carry a symbolic
/// proof, (2) the proof-gated DISTINCT pushdown fires exactly when its
/// FD precondition holds, and (3) the Chen–Schneider UNION bound caps a
/// distinct UNION plan strictly below the additive operand estimate.
fn e20_proof_checker(m: &mut Metrics) {
    header(
        "E20",
        "proof-carrying rewrites: checker coverage + UNION bounds",
    );
    let db = uniqueness::catalog::sample::supplier_database().expect("sample database");
    let corpus = e20_corpus();
    println!(
        "corpus: {} statements, both optimizer profiles\n",
        corpus.len()
    );

    // Per-rule accumulation across every optimize() call.
    let mut per_rule: HashMap<String, (u64, u64, u64)> = HashMap::new();
    for options in [
        OptimizerOptions::relational(),
        OptimizerOptions::navigational(),
    ] {
        let optimizer = Optimizer::new(options);
        for sql in &corpus {
            let bound = bind_query(db.catalog(), &parse_query(sql).expect("parse")).expect("bind");
            let outcome = optimizer.optimize(&bound);
            for rs in &outcome.trace.rule_stats {
                let slot = per_rule.entry(rs.rule.clone()).or_default();
                slot.0 += rs.fires;
                slot.1 += rs.proved;
                slot.2 += rs.proof_nanos;
            }
        }
    }

    println!(
        "{:<22} {:>7} {:>7} {:>8} {:>12}",
        "rule", "fired", "proved", "unknown", "checker time"
    );
    let (mut fired, mut proved, mut checker_ns) = (0u64, 0u64, 0u64);
    let mut rules: Vec<_> = per_rule.iter().filter(|(_, v)| v.0 > 0).collect();
    rules.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    for (rule, (f, p, ns)) in rules {
        println!(
            "{:<22} {:>7} {:>7} {:>8} {:>12}",
            rule,
            f,
            p,
            f - p,
            fmt_duration(Duration::from_nanos(*ns))
        );
        m.push("E20", &format!("fired_{rule}"), *f as f64, false);
        m.push("E20", &format!("proved_{rule}"), *p as f64, false);
        fired += f;
        proved += p;
        checker_ns += ns;
    }
    let pct = 100.0 * proved as f64 / fired as f64;
    println!(
        "\ntotal: {proved}/{fired} fired steps proved ({pct:.1}%), checker time {}",
        fmt_duration(Duration::from_nanos(checker_ns))
    );
    assert!(
        proved * 5 >= fired * 4,
        "proved fraction below the 80% bar: {proved}/{fired}"
    );
    m.push("E20", "steps_fired", fired as f64, false);
    m.push("E20", "steps_proved", proved as f64, true);
    m.push("E20", "proved_pct", pct, true);
    m.push("E20", "checker_ns", checker_ns as f64, false);

    // Proof-gated DISTINCT pushdown: fires exactly under the FD
    // precondition, and only with a Proved justification.
    let optimizer = Optimizer::new(OptimizerOptions::navigational());
    let fires = |sql: &str| {
        let bound = bind_query(db.catalog(), &parse_query(sql).expect("parse")).expect("bind");
        let outcome = optimizer.optimize(&bound);
        outcome
            .trace
            .steps
            .iter()
            .find(|s| s.rule == "distinct-pushdown")
            .map(|s| s.proof.is_proved())
    };
    assert_eq!(
        fires(E20_PUSHDOWN_OK),
        Some(true),
        "pushdown must fire (proved) when the projection covers the kept key"
    );
    assert_eq!(
        fires(E20_PUSHDOWN_BLOCKED),
        None,
        "pushdown must refuse a non-key projection"
    );
    println!("DISTINCT pushdown: fires proved on the key-covered shape, refused otherwise");
    m.push("E20", "pushdown_gated", 1.0, true);

    // UNION-aware hard bound: the distinct UNION estimate is capped by
    // the merged domains, strictly below the additive operand sum.
    let stats = uniqueness::cost::Statistics::collect(&db);
    let bound =
        bind_query(db.catalog(), &parse_query(E20_UNION_BOUND).expect("parse")).expect("bind");
    let plan = uniqueness::cost::plan_query(
        &bound,
        &stats,
        uniqueness::cost::PlannerOptions {
            cost_based: true,
            ..Default::default()
        },
    );
    let uniqueness::cost::PhysNode::SetOp {
        id, left, right, ..
    } = &plan.root
    else {
        panic!("expected a set-operation root");
    };
    let node_est = |n: &uniqueness::cost::PhysNode| match n {
        uniqueness::cost::PhysNode::Block(b) => plan.ops[b.project].est,
        uniqueness::cost::PhysNode::SetOp { id, .. } => plan.ops[*id].est,
    };
    let additive = node_est(left) + node_est(right);
    let capped = plan.ops[*id].est;
    println!(
        "UNION bound: operands sum to {additive}, distinct UNION capped at {capped} \
         (merged city domains)"
    );
    assert!(
        capped < additive,
        "UNION cap {capped} not strictly tighter than additive {additive}"
    );
    m.push("E20", "union_additive_est", additive as f64, false);
    m.push("E20", "union_capped_est", capped as f64, true);
}

/// E19 — persistent secondary indexes: the same cost-based row executor
/// over the same 2,400-supplier data, with and without the benchmark
/// index set. Asserts multiset identity on every query, a ≥10× summed
/// work-unit saving for the indexed plans, and that every unique-index
/// point lookup records exactly one probe step (the guaranteed one-row
/// lookup a declared-unique index licenses).
fn e19_index_access(m: &mut Metrics) {
    header("E19", "secondary indexes: sargable scans + unique probes");
    let contenders = e19_contenders();
    let full = &contenders[0].1;
    let ix = &contenders[1].1;

    let sorted = |session: &Session, sql: &str| {
        let out = session.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut rows = out.rows;
        rows.sort_by(|a, b| uniqueness::types::value::tuple_null_cmp(a, b).unwrap());
        (rows, out.stats)
    };

    let corpus = e19_corpus();
    println!(
        "corpus: {} point lookups + 1 index join over a 2,400-supplier \
         database; indexed multisets identical to the full-scan plans on \
         every one",
        corpus.len() - 1
    );
    println!(
        "\n{:<44} {:>10} {:>10} {:>7}",
        "query", "full work", "ix work", "ratio"
    );
    let (mut full_work, mut ix_work) = (0u64, 0u64);
    for sql in &corpus {
        let (want, f) = sorted(full, sql);
        let (got, i) = sorted(ix, sql);
        assert_eq!(got, want, "indexed multiset differs for {sql}");
        let (fw, iw) = (e19_work(&f), e19_work(&i));
        full_work += fw;
        ix_work += iw;
        let head: String = sql.chars().take(44).collect();
        println!(
            "{:<44} {:>10} {:>10} {:>6.1}x",
            head,
            fw,
            iw,
            fw as f64 / iw.max(1) as f64
        );
    }
    m.push(
        "E19",
        "corpus_multiset_identical",
        corpus.len() as f64,
        true,
    );
    let ratio = full_work as f64 / ix_work.max(1) as f64;
    m.push("E19", "full_scan_work", full_work as f64, false);
    m.push("E19", "indexed_work", ix_work as f64, false);
    m.push("E19", "work_ratio", ratio, true);
    assert!(
        10 * ix_work <= full_work,
        "indexed work {ix_work} not 10x under full-scan work {full_work}"
    );
    println!("\nindexed plans do {ratio:.1}x fewer work units (bar: >= 10x)");

    // Unique probes: one probe_steps unit each, by construction.
    let lookups = e19_point_lookups();
    for sql in &lookups {
        let (_, stats) = sorted(ix, sql);
        assert_eq!(
            stats.probe_steps, 1,
            "{sql}: unique probe must cost exactly one step, got {stats:?}"
        );
        assert_eq!(stats.ix_probes, 1, "{sql}: {stats:?}");
    }
    m.push("E19", "unique_probe_steps_each", 1.0, true);
    println!(
        "every one of the {} unique-index point lookups cost exactly one \
         probe step (guaranteed one-row lookup)",
        lookups.len()
    );

    let explain = ix.explain(E19_INDEX_JOIN).expect("explain");
    let scan = explain
        .lines()
        .find(|l| l.contains("ixscan("))
        .expect("ixscan line");
    let join = explain
        .lines()
        .find(|l| l.contains("ixjoin("))
        .expect("ixjoin line");
    println!(
        "\nEXPLAIN access paths:\n  {}\n  {}",
        scan.trim(),
        join.trim()
    );
    assert!(join.contains("unique=yes"), "{explain}");
}

/// E18 — columnar storage + vectorized, uniqueness-aware kernels: work
/// units vs the cost-based row session on a dictionary-friendly
/// join+DISTINCT workload, the zero-hash direct-index probe, and
/// multiset identity with the row oracle over the whole corpus.
fn e18_columnar_execution(m: &mut Metrics) {
    header(
        "E18",
        "columnar storage + vectorized uniqueness-aware kernels",
    );
    let cfg = uniqueness::workload::ScaleConfig {
        suppliers: 2_000,
        parts_per_supplier: 4,
        ..Default::default()
    };
    let db = uniqueness::workload::scaled_database(&cfg).expect("scaled database");
    let contenders = e18_contenders(db);
    let row = &contenders[0].1;
    let col = &contenders[1].1;

    let sorted = |session: &Session, sql: &str| {
        let out = session.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut rows = out.rows;
        rows.sort_by(|a, b| uniqueness::types::value::tuple_null_cmp(a, b).unwrap());
        (rows, out.stats)
    };

    let corpus = e18_corpus();
    for sql in &corpus {
        let (want, _) = sorted(row, sql);
        let (got, _) = sorted(col, sql);
        assert_eq!(got, want, "columnar multiset differs for {sql}");
    }
    println!(
        "corpus: {} statements over a {}-supplier database; columnar \
         multisets identical to the row oracle on every one",
        corpus.len(),
        cfg.suppliers
    );
    m.push(
        "E18",
        "corpus_multiset_identical",
        corpus.len() as f64,
        true,
    );

    println!("\nwork units on the join+DISTINCT workload:\n  {E18_JOIN_DISTINCT}");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "session", "scans", "probes", "steps", "sortcmp", "vecops", "mat", "work"
    );
    let mut works = Vec::new();
    for (name, session) in &contenders {
        let (_, stats) = sorted(session, E18_JOIN_DISTINCT);
        let work = e18_work(&stats);
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            name,
            stats.rows_scanned,
            stats.hash_probes,
            stats.probe_steps,
            stats.sort_comparisons,
            stats.vector_ops,
            stats.materialized_rows,
            work
        );
        works.push(work);
    }
    let (row_work, col_work) = (works[0], works[1]);
    let ratio = row_work as f64 / col_work.max(1) as f64;
    m.push("E18", "row_work", row_work as f64, false);
    m.push("E18", "columnar_work", col_work as f64, false);
    m.push("E18", "work_ratio", ratio, true);
    assert!(
        2 * col_work <= row_work,
        "columnar work {col_work} not 2x under row work {row_work}"
    );
    println!("columnar does {ratio:.1}x fewer work units (bar: >= 2x)");

    let (_, probe) = sorted(col, E18_UNIQUE_PROBE);
    let hash_ops = probe.hash_probes + probe.hash_joins;
    println!(
        "\ndirect-index unique probe:\n  {E18_UNIQUE_PROBE}\n\
         hash ops {hash_ops} (probe steps {}, one array load each)",
        probe.probe_steps
    );
    m.push("E18", "unique_probe_hash_ops", hash_ops as f64, true);
    assert_eq!(hash_ops, 0, "direct-index probe must not hash");

    let explain = col.explain(E18_JOIN_DISTINCT).expect("explain");
    let marker = explain
        .lines()
        .find(|l| l.contains("exec=columnar"))
        .expect("columnar scan line");
    println!("\nEXPLAIN scan line: {}", marker.trim());
    assert!(marker.contains("enc=dict"), "{explain}");
}

/// E17 — morsel-driven intra-query parallelism: serial vs parallel
/// sessions over the large-join corpus, multiset-identical results at
/// every degree, and the unique-key join kernel's probe-step saving.
fn e17_parallel_executor(runs: usize, m: &mut Metrics) {
    header(
        "E17",
        "morsel-driven parallel execution + unique-key join kernels",
    );
    let serial = scaled_session(400, 8);
    let corpus = e17_corpus();
    println!(
        "corpus: {} large-join statements over a 400-supplier database",
        corpus.len()
    );

    let sorted = |session: &Session, sql: &str| -> Vec<Vec<Value>> {
        let mut rows = session
            .query(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
            .rows;
        rows.sort_by(|a, b| uniqueness::types::value::tuple_null_cmp(a, b).unwrap());
        rows
    };

    // Correctness before speed: every degree must return the serial
    // multiset for every statement.
    let sessions: Vec<(String, Session)> = [1usize, 2, 4]
        .into_iter()
        .map(|deg| {
            let s = if deg == 1 {
                serial.clone()
            } else {
                serial.clone().with_degree(deg)
            };
            (format!("degree {deg}"), s)
        })
        .collect();
    for sql in &corpus {
        let want = sorted(&sessions[0].1, sql);
        for (name, session) in &sessions[1..] {
            assert_eq!(
                sorted(session, sql),
                want,
                "{name} multiset differs for {sql}"
            );
        }
    }
    println!("multisets: identical at every degree for every statement\n");

    let batch_time = |session: &Session| {
        median_time(runs, || {
            for sql in &corpus {
                session.query(sql).expect("e17 statement");
            }
        })
    };
    let base = batch_time(&sessions[0].1);
    println!("{:>10} {:>12} {:>9}", "session", "batch", "speedup");
    let mut speedup4 = 1.0f64;
    for (name, session) in &sessions {
        let t = batch_time(session);
        let speedup = base.as_secs_f64() / t.as_secs_f64().max(f64::EPSILON);
        if name == "degree 4" {
            speedup4 = speedup;
        }
        println!("{:>10} {:>12} {:>8.2}x", name, fmt_duration(t), speedup);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    m.push("E17", "speedup_deg4", speedup4, cores >= 4);
    if cores >= 4 {
        assert!(
            speedup4 >= 2.0,
            "4-worker speedup {speedup4:.2}x below the 2x bar on a {cores}-core host"
        );
        println!("4-worker speedup {speedup4:.2}x meets the 2x bar ({cores} cores)");
    } else {
        println!(
            "(host exposes {cores} core(s); the 2x-at-4-workers bar needs >= 4 \
             and is skipped — correctness asserts above still ran)"
        );
    }

    // The unique-key kernel: SUPPLIER's PK covers the join key, so every
    // probe costs exactly one step; the chained table pays one step per
    // bucket entry plus the end-of-chain check.
    let unique = serial.clone().with_degree(4);
    let mut chained = serial.clone().with_degree(4);
    chained.exec.unique_kernels = false;
    let u = unique.query(E17_UNIQUE_JOIN).expect("unique kernel run");
    let c = chained.query(E17_UNIQUE_JOIN).expect("chained kernel run");
    assert_eq!(
        u.rows.len(),
        c.rows.len(),
        "kernel choice changed the result"
    );
    println!(
        "\nunique-key kernel on `{E17_UNIQUE_JOIN}`:\n\
         {:>10} {:>12}\n{:>10} {:>12}\n{:>10} {:>12}",
        "kernel", "probe steps", "unique", u.stats.probe_steps, "chained", c.stats.probe_steps
    );
    m.push(
        "E17",
        "unique_probe_steps",
        u.stats.probe_steps as f64,
        true,
    );
    m.push(
        "E17",
        "chained_probe_steps",
        c.stats.probe_steps as f64,
        false,
    );
    assert!(
        u.stats.probe_steps < c.stats.probe_steps,
        "unique kernel took {} probe steps, chained took {}",
        u.stats.probe_steps,
        c.stats.probe_steps
    );
    println!("unique kernel probes strictly fewer steps than the chained table");
}

/// E16 — cost-based per-node physical planning vs every static
/// `ExecOptions` configuration, over the workload corpus.
fn e16_cost_based_planning(m: &mut Metrics) {
    header(
        "E16",
        "cost-based physical planning vs static executor options",
    );
    let cfg = uniqueness::workload::ScaleConfig {
        suppliers: 60,
        parts_per_supplier: 5,
        ..Default::default()
    };
    let db = uniqueness::workload::scaled_database(&cfg).expect("scaled database");
    let corpus = e16_corpus(17, 48);
    println!(
        "corpus: {} statements over a {}-supplier database\n",
        corpus.len(),
        cfg.suppliers
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "session", "scans", "sort cmp", "probes", "work", "mean q", "max q"
    );
    let mut works: Vec<(&str, u64)> = Vec::new();
    for (name, session) in e16_contenders(db) {
        let report = run_batch(&session, &corpus, BatchOptions::default());
        assert_eq!(report.errors, 0, "{name}: {:?}", report.first_error);
        let work = total_work(&report.exec);
        let (mean_q, max_q) = if report.qerror.ops == 0 {
            ("-".to_string(), "-".to_string())
        } else {
            (
                format!("{:.2}", report.qerror.mean()),
                format!("{:.2}", report.qerror.max),
            )
        };
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
            name,
            report.exec.rows_scanned,
            report.exec.sort_comparisons,
            report.exec.hash_probes,
            work,
            mean_q,
            max_q
        );
        works.push((name, work));
    }
    let cost = works
        .iter()
        .find(|(n, _)| *n == "cost-based")
        .expect("cost-based contender present")
        .1;
    for (name, work) in &works {
        assert!(
            cost <= *work,
            "cost-based work {cost} exceeds {name} work {work}"
        );
    }
    m.push("E16", "cost_based_work", cost as f64, true);
    let best_static = works
        .iter()
        .filter(|(n, _)| *n != "cost-based")
        .map(|(_, w)| *w)
        .min()
        .unwrap_or(0);
    m.push("E16", "best_static_work", best_static as f64, false);
    println!("\ncost-based total work is within every static configuration");

    // One worked EXPLAIN showing est vs act per operator.
    let session =
        Session::new(uniqueness::catalog::sample::supplier_database().expect("sample database"))
            .with_cost_based();
    let sql = "SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
               WHERE S.SNO = P.SNO AND P.COLOR = 'RED'";
    let explain = session.explain(sql).expect("explain");
    let section = explain
        .split("Cost-based plan (est/act rows):")
        .nth(1)
        .expect("cost section present");
    println!("\nEXPLAIN (Figure 1 database): {sql}");
    println!("Cost-based plan (est/act rows):{section}");
}

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// E1 — the paper's worked examples through both analyses.
fn e1_paper_examples() {
    header(
        "E1",
        "paper examples 1/2/4-6 through Algorithm 1 and the FD test",
    );
    let db = uniqueness::catalog::sample::supplier_schema().unwrap();
    let cases: &[(&str, &str, bool)] = &[
        (
            "Ex.1",
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            true,
        ),
        (
            "Ex.2",
            "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            false,
        ),
        (
            "Ex.4/5",
            "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P \
             WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO",
            true,
        ),
        (
            "Ex.6",
            "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, PARTS P \
             WHERE S.SNAME = :SUPPLIER-NAME AND S.SNO = P.SNO",
            true,
        ),
    ];
    println!(
        "{:<8} {:>6} {:>8} {:>8} {:>8}",
        "example", "paper", "Alg.1", "FD", "agree"
    );
    for (name, sql, paper_unique) in cases {
        let bound = bind_query(db.catalog(), &parse_query(sql).unwrap()).unwrap();
        let spec = bound.as_spec().unwrap();
        let a1 = algorithm1(spec, &Algorithm1Options::default()).unique;
        let fd = unique_projection(spec).unique;
        println!(
            "{:<8} {:>6} {:>8} {:>8} {:>8}",
            name,
            if *paper_unique { "YES" } else { "NO" },
            if a1 { "YES" } else { "NO" },
            if fd { "YES" } else { "NO" },
            if fd == *paper_unique { "✓" } else { "✗" }
        );
    }
    println!("(paper column = the verdict the paper derives for the example)");
}

/// E2 — cost of a redundant DISTINCT across result sizes.
fn e2_distinct_removal(runs: usize) {
    header(
        "E2",
        "redundant DISTINCT removal: skip the result sort (Theorem 1)",
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>9} {:>14}",
        "suppliers", "result", "with sort", "rewritten", "speedup", "comparisons"
    );
    for suppliers in [1_000usize, 5_000, 20_000, 60_000] {
        let session = scaled_session(suppliers, 5);
        let hv = HostVars::new();
        let base = session.query_unoptimized(E2_QUERY, &hv).unwrap();
        let t_base = median_time(runs, || session.query_unoptimized(E2_QUERY, &hv).unwrap());
        let t_opt = median_time(runs, || session.query(E2_QUERY).unwrap());
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>8.2}x {:>14}",
            suppliers,
            base.rows.len(),
            fmt_duration(t_base),
            fmt_duration(t_opt),
            t_base.as_secs_f64() / t_opt.as_secs_f64(),
            base.stats.sort_comparisons
        );
    }
}

/// E3 — corpus audit: how many CASE-tool DISTINCTs are provably redundant.
fn e3_corpus() {
    header("E3", "corpus audit: redundant DISTINCT detection (§5.1)");
    let corpus = generate_corpus(2024, 500, 6).unwrap();
    let stats = CorpusStats::of(&corpus);
    println!("queries                         : {}", stats.total);
    println!("provably unique (FD closure)    : {}", stats.fd_yes);
    println!("provably unique (Algorithm 1)   : {}", stats.alg1_yes);
    println!(
        "observed duplicating            : {}",
        stats.with_duplicates
    );
    println!("soundness violations            : {}", stats.unsound);
    // Detection cost.
    let db = uniqueness::catalog::sample::supplier_schema().unwrap();
    let bound: Vec<_> = corpus
        .iter()
        .map(|q| bind_query(db.catalog(), &parse_query(&q.sql).unwrap()).unwrap())
        .collect();
    let t_alg1 = median_time(3, || {
        bound
            .iter()
            .filter(|b| algorithm1(b.as_spec().unwrap(), &Algorithm1Options::default()).unique)
            .count()
    });
    let t_fd = median_time(3, || {
        bound
            .iter()
            .filter(|b| unique_projection(b.as_spec().unwrap()).unique)
            .count()
    });
    println!(
        "analysis cost for all {} queries: Algorithm 1 {}, FD test {}",
        stats.total,
        fmt_duration(t_alg1),
        fmt_duration(t_fd)
    );
}

/// E4 — Theorem 2: EXISTS → join beats the nested-loop subquery.
fn e4_subquery_to_join(runs: usize) {
    header(
        "E4",
        "subquery → join (Theorem 2): nested-loop EXISTS vs hash join",
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>9}",
        "suppliers", "parts/sup", "nested", "rewritten", "speedup"
    );
    for (suppliers, parts) in [(500usize, 4usize), (2_000, 4), (2_000, 16), (8_000, 8)] {
        let session = scaled_session(suppliers, parts);
        let hv = HostVars::new();
        let base = session.query_unoptimized(E4_QUERY, &hv).unwrap();
        let opt = session.query(E4_QUERY).unwrap();
        assert_eq!(base.rows.len(), opt.rows.len());
        let t_base = median_time(runs, || session.query_unoptimized(E4_QUERY, &hv).unwrap());
        let t_opt = median_time(runs, || session.query(E4_QUERY).unwrap());
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>8.2}x",
            suppliers,
            parts,
            fmt_duration(t_base),
            fmt_duration(t_opt),
            t_base.as_secs_f64() / t_opt.as_secs_f64()
        );
    }
}

/// E5 — Corollary 1: ALL → DISTINCT-join rewrite, red-selectivity sweep.
fn e5_corollary_1(runs: usize) {
    header(
        "E5",
        "subquery → DISTINCT join (Corollary 1), red-fraction sweep",
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>9}",
        "red %", "result", "nested", "rewritten", "speedup"
    );
    for red in [0.05f64, 0.3, 0.8] {
        let cfg = uniqueness::workload::ScaleConfig {
            suppliers: 4_000,
            parts_per_supplier: 8,
            red_fraction: red,
            ..Default::default()
        };
        let db = uniqueness::workload::scaled_database(&cfg).unwrap();
        let session = Session::new(db);
        let hv = HostVars::new();
        let base = session.query_unoptimized(E5_QUERY, &hv).unwrap();
        let opt = session.query(E5_QUERY).unwrap();
        assert_eq!(base.rows.len(), opt.rows.len());
        let t_base = median_time(runs, || session.query_unoptimized(E5_QUERY, &hv).unwrap());
        let t_opt = median_time(runs, || session.query(E5_QUERY).unwrap());
        println!(
            "{:>8.0} {:>10} {:>12} {:>12} {:>8.2}x",
            red * 100.0,
            base.rows.len(),
            fmt_duration(t_base),
            fmt_duration(t_opt),
            t_base.as_secs_f64() / t_opt.as_secs_f64()
        );
    }
}

/// E6 — Theorem 3: INTERSECT → EXISTS avoids sorting both operands; plus
/// the null-semantics counter-example for the naive (Starburst Rule 8)
/// rewrite.
fn e6_intersect(runs: usize) {
    header("E6", "INTERSECT → EXISTS (Theorem 3 / Corollary 2)");
    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "suppliers", "sort-merge", "rewritten", "speedup", "sorted (base)", "sorted (rw)"
    );
    for suppliers in [1_000usize, 10_000, 40_000] {
        let session = scaled_session(suppliers, 2);
        let hv = HostVars::new();
        let base = session
            .query_unoptimized(uniq_bench::E6_QUERY, &hv)
            .unwrap();
        let opt = session.query(uniq_bench::E6_QUERY).unwrap();
        assert_eq!(base.rows.len(), opt.rows.len());
        let t_base = median_time(runs, || {
            session
                .query_unoptimized(uniq_bench::E6_QUERY, &hv)
                .unwrap()
        });
        let t_opt = median_time(runs, || session.query(uniq_bench::E6_QUERY).unwrap());
        println!(
            "{:>10} {:>12} {:>12} {:>8.2}x {:>14} {:>14}",
            suppliers,
            fmt_duration(t_base),
            fmt_duration(t_opt),
            t_base.as_secs_f64() / t_opt.as_secs_f64(),
            base.stats.rows_sorted,
            opt.stats.rows_sorted
        );
    }
    println!(
        "(the claim is about avoided sorting of both operands: the rewritten plan \
         sorts only its final — much smaller — result; wall-clock parity here is \
         the in-memory hash join materialization offsetting the sort savings)"
    );

    // The null pitfall (paper: Starburst Rule 8 is wrong without it).
    let mut s = Session::new(uniqueness::catalog::Database::new());
    s.run_script(
        "CREATE TABLE L (K INTEGER NOT NULL, X INTEGER, PRIMARY KEY (K));
         CREATE TABLE R2 (K INTEGER NOT NULL, X INTEGER, PRIMARY KEY (K));
         INSERT INTO L VALUES (1, NULL);
         INSERT INTO R2 VALUES (9, NULL);",
    )
    .unwrap();
    let correct = s
        .query("SELECT ALL L.X FROM L INTERSECT SELECT ALL R2.X FROM R2")
        .unwrap();
    // The naive rewrite with a plain equi-predicate loses the NULL match.
    let naive = s
        .query_unoptimized(
            "SELECT ALL L.X FROM L WHERE EXISTS (SELECT * FROM R2 WHERE R2.X = L.X)",
            &HostVars::new(),
        )
        .unwrap();
    println!(
        "\nnull-semantics check: INTERSECT finds {} row(s) [{}], naive equi-EXISTS \
         rewrite finds {} — the =̇ correlation predicate is required.",
        correct.rows.len(),
        correct
            .rows
            .first()
            .map(|r| r[0].to_string())
            .unwrap_or_default(),
        naive.rows.len()
    );
    assert_eq!(correct.rows, vec![vec![Value::Null]]);
    assert!(naive.rows.is_empty());
}

/// E7 — Example 10, key-qualified: DL/I calls halved.
fn e7_ims_key() {
    header(
        "E7",
        "IMS Example 10: DL/I calls, join vs nested strategy (key probe)",
    );
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>8}",
        "suppliers", "parts/sup", "join calls", "nested calls", "ratio"
    );
    for (suppliers, parts) in [(100usize, 8usize), (1_000, 8), (10_000, 8), (1_000, 64)] {
        let db = ims::sample::synthetic(suppliers, parts, 500, parts / 2).unwrap();
        let join = ims::gateway::join_strategy(&db, "PNO", 500i64).unwrap();
        let nested = ims::gateway::exists_strategy(&db, "PNO", 500i64).unwrap();
        assert_eq!(join.rows, nested.rows);
        let j = join.stats.calls_to("PARTS");
        let n = nested.stats.calls_to("PARTS");
        println!(
            "{:>10} {:>12} {:>14} {:>14} {:>7.2}x",
            suppliers,
            parts,
            j,
            n,
            j as f64 / n as f64
        );
    }
    println!("(paper's claim: the nested form issues half the PARTS calls — ratio 2.00x)");
}

/// E8 — Example 10 variant, non-key (OEM-PNO) qualification.
fn e8_ims_nonkey() {
    header(
        "E8",
        "IMS §6.1 OEM-PNO variant: twin-chain inspections, non-key probe",
    );
    println!(
        "{:>12} {:>16} {:>16} {:>8}",
        "parts/sup", "join inspected", "nested inspected", "ratio"
    );
    for parts in [4usize, 16, 64, 256] {
        let db = ims::sample::synthetic(1_000, parts, 500, 0).unwrap();
        let probe = ims::sample::SHARED_OEM_PNO;
        let join = ims::gateway::join_strategy(&db, "OEM-PNO", probe).unwrap();
        let nested = ims::gateway::exists_strategy(&db, "OEM-PNO", probe).unwrap();
        assert_eq!(join.rows, nested.rows);
        let ji = join.stats.inspected_of("PARTS");
        let ni = nested.stats.inspected_of("PARTS");
        println!(
            "{:>12} {:>16} {:>16} {:>7.2}x",
            parts,
            ji,
            ni,
            ji as f64 / ni as f64
        );
    }
    println!("(the join form must scan whole chains; reduction grows with chain length)");
}

/// E9 — Example 11: OODB strategies across parent-range selectivity.
fn e9_oodb() {
    header(
        "E9",
        "OODB Example 11: object fetches vs parent-range selectivity",
    );
    let suppliers = 10_000usize;
    let (store, classes) = oodb::sample::synthetic(suppliers, 4, 500).unwrap();
    println!(
        "{:>12} {:>10} {:>16} {:>16} {:>9}",
        "selectivity", "matches", "pointer fetches", "nested fetches", "winner"
    );
    for pct in [0.1f64, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0] {
        let hi = ((suppliers as f64) * pct / 100.0).round().max(1.0) as i64;
        let ptr = oodb::pointer_strategy(&store, &classes, 500, 1, hi).unwrap();
        let nst = oodb::nested_strategy(&store, &classes, 500, 1, hi).unwrap();
        assert_eq!(ptr.rows.len(), nst.rows.len());
        println!(
            "{:>11}% {:>10} {:>16} {:>16} {:>9}",
            pct,
            ptr.rows.len(),
            ptr.stats.objects_fetched,
            nst.stats.objects_fetched,
            if nst.stats.objects_fetched < ptr.stats.objects_fetched {
                "nested"
            } else {
                "pointer"
            }
        );
    }
}

/// E10 — analysis cost as the predicate grows.
fn e10_analysis_cost() {
    header("E10", "analysis cost: Algorithm 1 (CNF/DNF) vs FD closure");
    let db = uniqueness::catalog::sample::supplier_schema().unwrap();
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "conjuncts", "Algorithm 1", "FD closure", "verdicts"
    );
    for n in [2usize, 6, 12, 24, 48] {
        let cols = ["SNO", "SNAME", "SCITY", "BUDGET", "STATUS"];
        let pred: Vec<String> = (0..n)
            .map(|i| format!("S.{} = :H{}", cols[i % cols.len()], i))
            .collect();
        let sql = format!(
            "SELECT DISTINCT S.SCITY FROM SUPPLIER S WHERE {}",
            pred.join(" AND ")
        );
        let bound = bind_query(db.catalog(), &parse_query(&sql).unwrap()).unwrap();
        let spec = bound.as_spec().unwrap().clone();
        let t_a1 = median_time(7, || {
            algorithm1(&spec, &Algorithm1Options::default()).unique
        });
        let t_fd = median_time(7, || unique_projection(&spec).unique);
        let v1 = algorithm1(&spec, &Algorithm1Options::default()).unique;
        let v2 = unique_projection(&spec).unique;
        println!(
            "{:>10} {:>14} {:>14} {:>7}/{:<4}",
            n,
            fmt_duration(t_a1),
            fmt_duration(t_fd),
            if v1 { "YES" } else { "NO" },
            if v2 { "YES" } else { "NO" }
        );
    }
}

/// E11 — set-operation semantics validation on adversarial instances.
fn e11_setop_semantics() {
    header(
        "E11",
        "INTERSECT/EXCEPT ALL min/max-count and =̇ null handling",
    );
    let mut s = Session::new(uniqueness::catalog::Database::new());
    s.run_script(
        "CREATE TABLE L (V INTEGER); CREATE TABLE R2 (V INTEGER);
         INSERT INTO L VALUES (1), (1), (1), (2), (NULL), (NULL);
         INSERT INTO R2 VALUES (1), (2), (2), (NULL);",
    )
    .unwrap();
    let cases = [
        (
            "INTERSECT",
            "SELECT ALL L.V FROM L INTERSECT SELECT ALL R2.V FROM R2",
            3usize,
        ),
        (
            "INTERSECT ALL",
            "SELECT ALL L.V FROM L INTERSECT ALL SELECT ALL R2.V FROM R2",
            3,
        ),
        (
            "EXCEPT",
            "SELECT ALL L.V FROM L EXCEPT SELECT ALL R2.V FROM R2",
            0,
        ),
        (
            "EXCEPT ALL",
            "SELECT ALL L.V FROM L EXCEPT ALL SELECT ALL R2.V FROM R2",
            3,
        ),
    ];
    println!(
        "L = {{1,1,1,2,NULL,NULL}}, R = {{1,2,2,NULL}}\n{:>15} {:>8} {:>8}",
        "operator", "rows", "expect"
    );
    for (name, sql, expect) in cases {
        let out = s.query_unoptimized(sql, &HostVars::new()).unwrap();
        println!(
            "{:>15} {:>8} {:>8} {}",
            name,
            out.rows.len(),
            expect,
            if out.rows.len() == expect {
                "✓"
            } else {
                "✗"
            }
        );
        assert_eq!(out.rows.len(), expect, "{name}");
    }
    println!("(INTERSECT ALL: min(3,1)+min(1,2)+min(2,1) = 3; EXCEPT ALL: 2+0+1 = 3)");
}

/// E13 — the §7 future-work extension: join elimination via foreign keys.
fn e13_join_elimination(runs: usize) {
    header(
        "E13",
        "join elimination via inclusion dependencies (§7 future work)",
    );
    let sql = "SELECT ALL P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>14}",
        "suppliers", "with join", "eliminated", "speedup", "rows scanned"
    );
    for suppliers in [1_000usize, 10_000, 40_000] {
        let session = scaled_session(suppliers, 5);
        let hv = HostVars::new();
        let base = session.query_unoptimized(sql, &hv).unwrap();
        let opt = session.query(sql).unwrap();
        assert_eq!(base.rows.len(), opt.rows.len());
        assert!(opt.trace.steps.iter().any(|s| s.rule == "join-elimination"));
        let t_base = median_time(runs, || session.query_unoptimized(sql, &hv).unwrap());
        let t_opt = median_time(runs, || session.query(sql).unwrap());
        println!(
            "{:>10} {:>12} {:>12} {:>8.2}x {:>6} → {:<6}",
            suppliers,
            fmt_duration(t_base),
            fmt_duration(t_opt),
            t_base.as_secs_f64() / t_opt.as_secs_f64(),
            base.stats.rows_scanned,
            opt.stats.rows_scanned
        );
    }
}

/// One optimize-heavy statement for E14: a DISTINCT block guarded by a
/// chain of EXISTS subqueries, each of which pins the inner table's full
/// key. Every subquery licenses a Theorem 2 rewrite, so the optimizer
/// walks a long chain of steps — each one re-running the uniqueness
/// analyses on the rewritten query and re-rendering its SQL — which makes
/// compilation dwarf execution on a small instance. `salt` varies the
/// probed part numbers so statements are textually (and fingerprint-)
/// distinct.
fn e14_query(subqueries: usize, salt: usize) -> String {
    let pred: Vec<String> = (0..subqueries)
        .map(|i| {
            format!(
                "EXISTS (SELECT * FROM PARTS P{i} \
                 WHERE P{i}.SNO = S.SNO AND P{i}.PNO = {})",
                salt + i
            )
        })
        .collect();
    format!(
        "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE {}",
        pred.join(" AND ")
    )
}

/// E14 — serving path: sharded plan cache under a repeated-query batch,
/// cached vs uncached, plus worker-pool scaling over a shared session.
fn e14_plan_cache(m: &mut Metrics) {
    header(
        "E14",
        "plan cache + batch serving: repeated queries, cached vs uncached",
    );
    let (reps, distinct, subqueries) = (40usize, 6usize, 8usize);
    let corpus: Vec<String> = (0..reps)
        .flat_map(|_| (0..distinct).map(|q| e14_query(subqueries, q * 100)))
        .collect();
    println!(
        "workload: {} statements ({} distinct × {} repetitions), {} EXISTS each",
        corpus.len(),
        distinct,
        reps,
        subqueries
    );

    let cached = scaled_session(50, 2);
    let uncached = cached.clone().with_cache_capacity(0);
    let cold = run_batch(
        &uncached,
        &corpus,
        BatchOptions {
            threads: 1,
            degree: None,
        },
    );
    let hot = run_batch(
        &cached,
        &corpus,
        BatchOptions {
            threads: 1,
            degree: None,
        },
    );
    assert_eq!(cold.errors, 0, "{:?}", cold.first_error);
    assert_eq!(hot.errors, 0, "{:?}", hot.first_error);
    assert_eq!(
        cold.rows, hot.rows,
        "cached plans must produce identical results"
    );

    let stage = |t: &StageTimings| {
        [
            t.parse_ns,
            t.bind_ns,
            t.optimize_ns,
            t.execute_ns,
            t.total_ns(),
        ]
    };
    let (c, h) = (stage(&cold.timings), stage(&hot.timings));
    println!("\nper-stage time, summed over the batch (single worker):");
    println!("{:>10} {:>12} {:>12}", "stage", "uncached", "cached");
    for (name, i) in [
        ("parse", 0),
        ("bind", 1),
        ("optimize", 2),
        ("execute", 3),
        ("total", 4),
    ] {
        println!(
            "{:>10} {:>12} {:>12}",
            name,
            fmt_duration(std::time::Duration::from_nanos(c[i])),
            fmt_duration(std::time::Duration::from_nanos(h[i]))
        );
    }
    let speedup = cold.elapsed.as_secs_f64() / hot.elapsed.as_secs_f64();
    println!(
        "\nwall clock: uncached {} | cached {} | speedup {:.2}x",
        fmt_duration(cold.elapsed),
        fmt_duration(hot.elapsed),
        speedup
    );
    println!(
        "cache: hit rate {:.1}% ({} hits / {} probes), {} insertions, {} evictions",
        hot.hit_rate() * 100.0,
        hot.cache.hits,
        hot.cache.hits + hot.cache.misses,
        hot.cache.insertions,
        hot.cache.evictions
    );
    let stage_speedup = c[4] as f64 / h[4] as f64;
    m.push("E14", "cache_speedup_wall", speedup, true);
    m.push("E14", "cache_speedup_stages", stage_speedup, true);
    m.push("E14", "cache_hit_rate", hot.hit_rate(), false);
    // The stage sum isolates the pipeline work the cache saves; wall
    // clock also carries driver overhead that scales with the host, so
    // it only gets a floor (~4.3x on the current 1-core container).
    assert!(
        stage_speedup >= 5.0,
        "plan cache stage-summed speedup {stage_speedup:.2}x below the 5x bar"
    );
    assert!(
        speedup >= 3.0,
        "plan cache wall-clock speedup {speedup:.2}x below the 3x floor"
    );

    println!("\nworker-pool scaling, shared session and cache:");
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "threads", "elapsed", "stmts/sec", "hit rate"
    );
    for threads in [1usize, 2, 4, 8] {
        let session = cached.clone().with_cache_capacity(1024);
        let r = run_batch(
            &session,
            &corpus,
            BatchOptions {
                threads,
                degree: None,
            },
        );
        assert_eq!(r.errors, 0, "{:?}", r.first_error);
        println!(
            "{:>8} {:>12} {:>14.0} {:>9.1}%",
            r.threads,
            fmt_duration(r.elapsed),
            r.throughput(),
            r.hit_rate() * 100.0
        );
    }
    println!(
        "(first touch of each distinct statement compiles; every other probe hits. \
         Throughput scales with physical cores — on a single-core host the table \
         shows the locking overhead of sharing one cache, which should be ~none.)"
    );
}

/// E12 — ablation: sort-based vs hash-based duplicate elimination.
fn e12_distinct_methods(runs: usize) {
    header("E12", "ablation: sort vs hash duplicate elimination");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "suppliers", "sort", "hash", "comparisons", "hash probes"
    );
    let sql = "SELECT DISTINCT S.SNAME, P.COLOR FROM SUPPLIER S, PARTS P \
               WHERE S.SNO = P.SNO";
    for suppliers in [1_000usize, 5_000, 20_000] {
        let mut session = scaled_session(suppliers, 5);
        session.optimizer = OptimizerOptions::disabled();
        let hv = HostVars::new();
        session.exec.distinct = DistinctMethod::Sort;
        let sort_out = session.query_unoptimized(sql, &hv).unwrap();
        let t_sort = median_time(runs, || session.query_unoptimized(sql, &hv).unwrap());
        session.exec.distinct = DistinctMethod::Hash;
        let hash_out = session.query_unoptimized(sql, &hv).unwrap();
        let t_hash = median_time(runs, || session.query_unoptimized(sql, &hv).unwrap());
        let a: HashMap<_, usize> = sort_out.rows.iter().fold(HashMap::new(), |mut m, r| {
            *m.entry(r.clone()).or_insert(0) += 1;
            m
        });
        let b: HashMap<_, usize> = hash_out.rows.iter().fold(HashMap::new(), |mut m, r| {
            *m.entry(r.clone()).or_insert(0) += 1;
            m
        });
        assert_eq!(a, b);
        println!(
            "{:>10} {:>12} {:>12} {:>14} {:>12}",
            suppliers,
            fmt_duration(t_sort),
            fmt_duration(t_hash),
            sort_out.stats.sort_comparisons,
            hash_out.stats.hash_probes
        );
    }
}

/// E15 — driver ablation: the one-pass bottom-up fixpoint driver vs the
/// pre-refactor root-restart strategy, over the same rule registry and
/// uniqueness-test memo. Workloads are chosen so traversal strategy is
/// what varies: `UNION ALL` chains have N independent firing sites (the
/// root-restart driver pays one full traversal per firing), and EXISTS
/// chains cascade many firings at a single node (both drivers should be
/// close). Ends with a no-regression assertion on the new driver.
fn e15_optimizer_driver(runs: usize, m: &mut Metrics) {
    header(
        "E15",
        "optimizer driver: one-pass fixpoint vs root-restart baseline",
    );
    let db = uniqueness::catalog::sample::supplier_schema().unwrap();
    let options = OptimizerOptions::relational();
    let optimizer = Optimizer::new(options);

    println!(
        "{:<18} {:>8} {:>7} {:>9} {:>12} {:>14} {:>8}",
        "workload", "firings", "passes", "restarts", "one-pass", "root-restart", "ratio"
    );
    let mut total_new = Duration::ZERO;
    let mut total_old = Duration::ZERO;
    let mut breakdown = None;
    for (name, sql) in [
        ("union chain x8", e15_union_chain(8)),
        ("union chain x16", e15_union_chain(16)),
        ("union chain x24", e15_union_chain(24)),
        ("exists chain x8", e15_exists_chain(8)),
    ] {
        let bound = bind_query(db.catalog(), &parse_query(&sql).unwrap()).unwrap();
        let outcome = optimizer.optimize(&bound);
        let base = optimize_root_restart(&options, &bound);
        assert_eq!(
            outcome.query, base.query,
            "drivers must agree on the rewritten query for {name}"
        );
        assert_eq!(outcome.trace.steps.len() as u64, base.firings(), "{name}");
        let t_new = median_time(runs, || optimizer.optimize(&bound));
        let t_old = median_time(runs, || optimize_root_restart(&options, &bound));
        total_new += t_new;
        total_old += t_old;
        println!(
            "{:<18} {:>8} {:>7} {:>9} {:>12} {:>14} {:>7.2}x",
            name,
            outcome.trace.steps.len(),
            outcome.trace.passes,
            base.traversals,
            fmt_duration(t_new),
            fmt_duration(t_old),
            t_old.as_secs_f64() / t_new.as_secs_f64()
        );
        if name == "union chain x24" {
            breakdown = Some((outcome, base));
        }
    }

    let (outcome, base) = breakdown.expect("union chain x24 measured");
    println!("\nper-rule breakdown, union chain x24 (attempts / fires / time):");
    println!("{:<22} {:>18} {:>18}", "rule", "one-pass", "root-restart");
    let old_stats: HashMap<&str, _> = base
        .rule_stats
        .iter()
        .map(|s| (s.rule.as_str(), s))
        .collect();
    for s in &outcome.trace.rule_stats {
        if s.attempts == 0 {
            continue;
        }
        let old = old_stats.get(s.rule.as_str()).expect("same registry");
        let cell = |attempts: u64, fires: u64, nanos: u64| {
            format!(
                "{attempts}/{fires}/{}",
                fmt_duration(Duration::from_nanos(nanos))
            )
        };
        println!(
            "{:<22} {:>18} {:>18}",
            s.rule,
            cell(s.attempts, s.fires, s.nanos),
            cell(old.attempts, old.fires, old.nanos)
        );
    }
    println!(
        "uniqueness tests: one-pass {} computed + {} memoized",
        outcome.trace.uniqueness_tests_computed, outcome.trace.uniqueness_tests_memoized
    );
    println!(
        "\ntotal optimize time: one-pass {} | root-restart {}",
        fmt_duration(total_new),
        fmt_duration(total_old)
    );
    m.push(
        "E15",
        "driver_speedup",
        total_old.as_secs_f64() / total_new.as_secs_f64().max(f64::EPSILON),
        true,
    );
    assert!(
        total_new <= total_old.mul_f64(1.25),
        "one-pass driver regressed: {total_new:?} vs baseline {total_old:?}"
    );
}
