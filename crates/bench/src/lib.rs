//! Shared infrastructure for the experiment suite: timing helpers,
//! workload construction and the queries each experiment drives.
//!
//! The `report` binary (`cargo run -p uniq-bench --bin report --release`)
//! prints every experiment table from `EXPERIMENTS.md`; the Criterion
//! benches under `benches/` provide statistically robust wall-clock
//! measurements for the subset of experiments where time (rather than a
//! work counter) is the claim.

use std::time::{Duration, Instant};
use uniqueness::engine::Session;
use uniqueness::workload::{scaled_database, ScaleConfig};

pub mod baseline;

/// Median wall-clock time of `runs` executions of `f`.
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// A session over a scaled supplier database with the relational
/// optimizer profile.
pub fn scaled_session(suppliers: usize, parts_per_supplier: usize) -> Session {
    let cfg = ScaleConfig {
        suppliers,
        parts_per_supplier,
        ..Default::default()
    };
    let db = scaled_database(&cfg).expect("scaled database");
    Session::new(db)
}

/// The E2 query: a single-table `SELECT DISTINCT` whose projection
/// contains the key. Scan and projection are cheap, so the baseline's
/// cost is dominated by the result sort — the situation §1 describes —
/// while the rewritten form skips it entirely. The projection leads with
/// the randomly-distributed SNAME so the sort cannot exploit insertion
/// order. (The Example 1 join shape is measured separately in E4/E13,
/// where join strategy dominates.)
pub const E2_QUERY: &str = "SELECT DISTINCT S.SNAME, S.SCITY, S.SNO FROM SUPPLIER S";

/// The Example 7 shape: EXISTS subquery that pins the inner key.
pub const E4_QUERY: &str = "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
     WHERE EXISTS (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 1)";

/// The Example 8 shape: EXISTS subquery with unbounded matches.
pub const E5_QUERY: &str = "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
     WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')";

/// The Example 9 shape at scale: INTERSECT over key-projecting blocks.
pub const E6_QUERY: &str = "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
     INTERSECT \
     SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'";

/// The E15 shape with many independent firing sites: a `UNION ALL`
/// chain whose every operand carries a redundant `DISTINCT` (the block
/// projects the `SUPPLIER` key). The one-pass driver fires all sites in
/// a single bottom-up traversal; a root-restart driver pays one full
/// traversal per firing.
pub fn e15_union_chain(sites: usize) -> String {
    (0..sites.max(1))
        .map(|i| format!("SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.BUDGET = {i}"))
        .collect::<Vec<_>>()
        .join(" UNION ALL ")
}

/// The E15 cascade shape: a `DISTINCT` outer block over a chain of
/// `EXISTS` subqueries. Every subquery merge re-offers the whole
/// registry, so the same node fires repeatedly before quiescing.
pub fn e15_exists_chain(subqueries: usize) -> String {
    let pred: Vec<String> = (0..subqueries.max(1))
        .map(|i| {
            format!(
                "EXISTS (SELECT * FROM PARTS P{i} \
                 WHERE P{i}.SNO = S.SNO AND P{i}.PNO = {i})"
            )
        })
        .collect();
    format!(
        "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE {}",
        pred.join(" AND ")
    )
}

/// Format a `Duration` compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_session_executes_e2() {
        let s = scaled_session(100, 5);
        let out = s.query(E2_QUERY).unwrap();
        assert!(out
            .trace
            .steps
            .iter()
            .any(|st| st.rule == "distinct-removal"));
        assert_eq!(out.stats.sorts, 0);
    }

    #[test]
    fn median_time_is_monotone_in_work() {
        let fast = median_time(3, || (0..100u64).sum::<u64>());
        let slow = median_time(3, || (0..1_000_000u64).sum::<u64>());
        assert!(slow >= fast);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_duration(Duration::from_micros(1_500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
