//! Shared infrastructure for the experiment suite: timing helpers,
//! workload construction and the queries each experiment drives.
//!
//! The `report` binary (`cargo run -p uniq-bench --bin report --release`)
//! prints every experiment table from `EXPERIMENTS.md`; the Criterion
//! benches under `benches/` provide statistically robust wall-clock
//! measurements for the subset of experiments where time (rather than a
//! work counter) is the claim.

use std::time::{Duration, Instant};
use uniqueness::catalog::Database;
use uniqueness::engine::{DistinctMethod, ExecOptions, ExecStats, JoinMethod, Session};
use uniqueness::workload::{generate_corpus, indexed_database, scaled_database, ScaleConfig};

pub mod baseline;

/// Median wall-clock time of `runs` executions of `f`.
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// A session over a scaled supplier database with the relational
/// optimizer profile.
pub fn scaled_session(suppliers: usize, parts_per_supplier: usize) -> Session {
    let cfg = ScaleConfig {
        suppliers,
        parts_per_supplier,
        ..Default::default()
    };
    let db = scaled_database(&cfg).expect("scaled database");
    Session::new(db)
}

/// The E2 query: a single-table `SELECT DISTINCT` whose projection
/// contains the key. Scan and projection are cheap, so the baseline's
/// cost is dominated by the result sort — the situation §1 describes —
/// while the rewritten form skips it entirely. The projection leads with
/// the randomly-distributed SNAME so the sort cannot exploit insertion
/// order. (The Example 1 join shape is measured separately in E4/E13,
/// where join strategy dominates.)
pub const E2_QUERY: &str = "SELECT DISTINCT S.SNAME, S.SCITY, S.SNO FROM SUPPLIER S";

/// The Example 7 shape: EXISTS subquery that pins the inner key.
pub const E4_QUERY: &str = "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
     WHERE EXISTS (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 1)";

/// The Example 8 shape: EXISTS subquery with unbounded matches.
pub const E5_QUERY: &str = "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S \
     WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')";

/// The Example 9 shape at scale: INTERSECT over key-projecting blocks.
pub const E6_QUERY: &str = "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
     INTERSECT \
     SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'";

/// The E15 shape with many independent firing sites: a `UNION ALL`
/// chain whose every operand carries a redundant `DISTINCT` (the block
/// projects the `SUPPLIER` key). The one-pass driver fires all sites in
/// a single bottom-up traversal; a root-restart driver pays one full
/// traversal per firing.
pub fn e15_union_chain(sites: usize) -> String {
    (0..sites.max(1))
        .map(|i| format!("SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.BUDGET = {i}"))
        .collect::<Vec<_>>()
        .join(" UNION ALL ")
}

/// The E15 cascade shape: a `DISTINCT` outer block over a chain of
/// `EXISTS` subqueries. Every subquery merge re-offers the whole
/// registry, so the same node fires repeatedly before quiescing.
pub fn e15_exists_chain(subqueries: usize) -> String {
    let pred: Vec<String> = (0..subqueries.max(1))
        .map(|i| {
            format!(
                "EXISTS (SELECT * FROM PARTS P{i} \
                 WHERE P{i}.SNO = S.SNO AND P{i}.PNO = {i})"
            )
        })
        .collect();
    format!(
        "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE {}",
        pred.join(" AND ")
    )
}

/// The E16 work metric: the executor counters the physical choices
/// trade against each other — base-table scans (join order and join
/// method), sort comparisons (sort-based duplicate elimination and
/// sort-merge set operations) and hash probes (hash joins and hash
/// duplicate elimination).
pub fn total_work(stats: &ExecStats) -> u64 {
    stats.rows_scanned + stats.sort_comparisons + stats.hash_probes
}

/// The E16 corpus: `generated` statements from the labelled SPJ corpus
/// generator, plus multi-join, Cartesian and set-operation shapes the
/// generator never emits. None of them use host variables, so every
/// operator's actual cardinality is measurable.
pub fn e16_corpus(seed: u64, generated: usize) -> Vec<String> {
    let mut corpus: Vec<String> = generate_corpus(seed, generated, 1)
        .expect("corpus generation")
        .into_iter()
        .map(|q| q.sql)
        .collect();
    corpus.extend(
        [
            "SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P \
             WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
            "SELECT DISTINCT P.COLOR FROM PARTS P, SUPPLIER S, AGENTS A \
             WHERE S.SNO = P.SNO AND S.SNO = A.SNO",
            "SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A",
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT SELECT ALL A.SNO FROM AGENTS A",
            "SELECT DISTINCT S.SNO FROM SUPPLIER S \
             UNION SELECT A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
        ]
        .into_iter()
        .map(String::from),
    );
    corpus
}

/// The E16 contenders: one session per static `ExecOptions` combination
/// plus a cost-based session, all over clones of the same database.
pub fn e16_contenders(db: Database) -> Vec<(&'static str, Session)> {
    let mut out: Vec<(&'static str, Session)> = Vec::new();
    for (name, distinct, join) in [
        ("static sort/hash", DistinctMethod::Sort, JoinMethod::Hash),
        (
            "static sort/nl",
            DistinctMethod::Sort,
            JoinMethod::NestedLoop,
        ),
        ("static hash/hash", DistinctMethod::Hash, JoinMethod::Hash),
        (
            "static hash/nl",
            DistinctMethod::Hash,
            JoinMethod::NestedLoop,
        ),
    ] {
        let mut s = Session::new(db.clone());
        s.exec = ExecOptions {
            distinct,
            join,
            ..Default::default()
        };
        out.push((name, s));
    }
    out.push(("cost-based", Session::new(db).with_cost_based()));
    out
}

/// The E17 corpus: the large-join subset of the E16 shapes — multi-table
/// equi-joins, joins under `DISTINCT`, and set operations over join
/// blocks — where a scan-heavy pipeline gives the morsel-parallel
/// executor actual work to split. Single-table probes are deliberately
/// excluded: per-morsel overhead dominates them and E17 is about the
/// join kernels.
pub fn e17_corpus() -> Vec<String> {
    [
        "SELECT P.PNO, S.SNAME FROM PARTS P, SUPPLIER S WHERE S.SNO = P.SNO",
        "SELECT DISTINCT S.SCITY, P.COLOR FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        "SELECT S.SNO, P.PNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A \
         WHERE S.SNO = P.SNO AND S.SNO = A.SNO",
        "SELECT DISTINCT P.COLOR FROM PARTS P, SUPPLIER S, AGENTS A \
         WHERE S.SNO = P.SNO AND S.SNO = A.SNO",
        "SELECT ALL S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.COLOR = 'RED' \
         INTERSECT SELECT ALL A.SNO FROM AGENTS A, SUPPLIER S WHERE A.SNO = S.SNO",
        "SELECT ALL P.SNO FROM PARTS P WHERE P.COLOR = 'RED' \
         EXCEPT ALL SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
        "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

/// The E17 key-covered join: `SUPPLIER` is the build side and the join
/// key `SNO` is its primary key, so the unique-key kernel applies.
pub const E17_UNIQUE_JOIN: &str =
    "SELECT P.PNO, S.SNAME FROM PARTS P, SUPPLIER S WHERE S.SNO = P.SNO";

/// The E18 join+`DISTINCT` workload: dictionary-friendly (`COLOR` and
/// `SCITY` are low-cardinality strings), selective on `PARTS` (so the
/// greedy order scans `PARTS` first and `SUPPLIER` joins in through its
/// primary key — the direct-index kernel), and the `DISTINCT` is not
/// removable (neither projected column is a key).
pub const E18_JOIN_DISTINCT: &str = "SELECT DISTINCT P.COLOR, S.SCITY FROM PARTS P, SUPPLIER S \
     WHERE P.SNO = S.SNO AND P.PNO = 1 AND P.COLOR = 'RED'";

/// The E18 direct-index probe: `SUPPLIER` joins in by its dense integer
/// primary key, so the columnar path answers every probe with one array
/// load — zero hash operations end to end (no `DISTINCT`, which would
/// add its own).
pub const E18_UNIQUE_PROBE: &str = "SELECT P.OEM-PNO, S.SCITY FROM PARTS P, SUPPLIER S \
     WHERE P.SNO = S.SNO AND P.PNO = 1 AND P.COLOR = 'RED'";

/// The E18 corpus: covered shapes for every columnar kernel (filter on
/// int and string codes, keyed joins unique and non-unique, `DISTINCT`,
/// set operations over columnar blocks) plus uncovered shapes that must
/// take the row fallback — the columnar session answers all of them,
/// and E18 asserts multiset identity with the row oracle on each.
pub fn e18_corpus() -> Vec<String> {
    let mut corpus: Vec<String> = vec![E18_JOIN_DISTINCT.into(), E18_UNIQUE_PROBE.into()];
    corpus.extend(
        [
            // Non-unique hash step: SNO alone covers no AGENTS key.
            "SELECT DISTINCT P.COLOR, A.ACITY FROM PARTS P, SUPPLIER S, AGENTS A \
             WHERE P.SNO = S.SNO AND S.SNO = A.SNO AND P.PNO = 1",
            // String comparisons compile to dictionary code ranges.
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY > 'Chicago'",
            "SELECT P.PNO FROM PARTS P WHERE P.COLOR <> 'GREEN' AND P.SNO = 3",
            // Set operation over columnar blocks.
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
             INTERSECT SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
            // Uncovered shapes: the row fallback must serve these.
            "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = 1 OR S.SNO = 2",
            "SELECT S.SNO FROM SUPPLIER S WHERE EXISTS \
             (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
            "SELECT P.PNO FROM PARTS P WHERE P.PNO BETWEEN 1 AND 2",
        ]
        .into_iter()
        .map(String::from),
    );
    corpus
}

/// The E18 work metric: every per-item counter either executor charges.
/// The row path pays `rows_scanned` per stored row it touches plus
/// probes; the columnar path pays per-chunk `vector_ops`, per-probe
/// `probe_steps` and per-output-row `materialized_rows` instead. Summing
/// both sides' currencies keeps the comparison honest — a path cannot
/// look cheap by doing its work under a counter the metric ignores.
pub fn e18_work(stats: &ExecStats) -> u64 {
    stats.rows_scanned
        + stats.sort_comparisons
        + stats.hash_probes
        + stats.probe_steps
        + stats.vector_ops
        + stats.materialized_rows
}

/// The E18 contenders: the cost-based row session (the oracle) and the
/// columnar session, over clones of the same database.
pub fn e18_contenders(db: Database) -> Vec<(&'static str, Session)> {
    vec![
        ("row cost-based", Session::new(db.clone()).with_cost_based()),
        ("columnar", Session::new(db).with_columnar()),
    ]
}

/// The E19 scale: 2,400 suppliers — above the 2,000-row floor the
/// experiment's work claim is stated at — with four parts each. Red
/// parts are rare (5%) so the sargable color scan is genuinely
/// selective rather than a disguised full scan.
pub fn e19_scale() -> ScaleConfig {
    ScaleConfig {
        suppliers: 2_400,
        parts_per_supplier: 4,
        red_fraction: 0.05,
        ..Default::default()
    }
}

/// The E19 point lookups: unique-key equality selections spread across
/// the supplier domain. With `IDX_S_SNO` each is a guaranteed one-row
/// probe (exactly one `probe_steps` unit); without it each pays a full
/// 2,400-row scan.
pub fn e19_point_lookups() -> Vec<String> {
    (0..8)
        .map(|i| {
            format!(
                "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = {}",
                101 + 97 * i
            )
        })
        .collect()
}

/// The E19 index join: the sargable color scan feeds an index
/// nested-loop join that probes `SUPPLIER` through its unique key index
/// — no build side at all. The full-scan plan hashes `SUPPLIER` and
/// scans `PARTS` end to end.
pub const E19_INDEX_JOIN: &str = "SELECT P.PNO, S.SNAME FROM PARTS P, SUPPLIER S \
     WHERE S.SNO = P.SNO AND P.PNO = 1 AND P.COLOR = 'RED'";

/// The E19 corpus: the point-lookup battery plus the index join.
pub fn e19_corpus() -> Vec<String> {
    let mut corpus = e19_point_lookups();
    corpus.push(E19_INDEX_JOIN.into());
    corpus
}

/// The E19 contenders: the same cost-based row executor over the same
/// data, without and with the benchmark secondary indexes — the only
/// variable is the access path.
pub fn e19_contenders() -> Vec<(&'static str, Session)> {
    let cfg = e19_scale();
    let plain = scaled_database(&cfg).expect("scaled database");
    let indexed = indexed_database(&cfg).expect("indexed database");
    vec![
        ("full-scan", Session::new(plain).with_cost_based()),
        ("indexed", Session::new(indexed).with_cost_based()),
    ]
}

/// The E19 work metric: the same all-currencies sum as E18, so index
/// probes (`probe_steps`) are charged in the same unit as the scans they
/// replace.
pub fn e19_work(stats: &ExecStats) -> u64 {
    e18_work(stats)
}

/// The E20 standard rewrite corpus: hand-written shapes that fire all
/// seven rules under the two optimizer profiles, plus a slice of the
/// generated corpus — the population over which the proof checker's
/// proved fraction is measured.
pub fn e20_corpus() -> Vec<String> {
    let mut corpus: Vec<String> = [
        // Theorem 1: DISTINCT over a key-projecting join.
        "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
         WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
        // Theorem 2 / Corollary 1: EXISTS merges.
        "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 2)",
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')",
        // Theorem 3 / Corollary 2: set-operation lowerings.
        "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' INTERSECT \
         SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'",
        "SELECT ALL S.SNO FROM SUPPLIER S EXCEPT \
         SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa'",
        // §7: join elimination via the FK inclusion dependency.
        "SELECT ALL P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO",
        // §6: join → subquery (navigational profile).
        "SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS \
         FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.PNO = 2",
        // Proof-gated DISTINCT pushdown (navigational profile).
        E20_PUSHDOWN_OK,
        // Cascades and multi-site firings.
        "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS \
         (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = 1) AND EXISTS \
         (SELECT * FROM AGENTS A WHERE A.SNO = S.SNO AND A.ANO = 2)",
        "SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' \
         UNION ALL SELECT DISTINCT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Ottawa'",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    for seed in [5u64, 23, 41] {
        corpus.extend(
            generate_corpus(seed, 6, 0)
                .expect("corpus generation")
                .into_iter()
                .map(|q| q.sql),
        );
    }
    corpus
}

/// The E20 DISTINCT-pushdown pair: the first satisfies the rule's FD
/// precondition (the remaining projection covers the `SUPPLIER` key,
/// so eliding the `DISTINCT` is provable), the second projects a
/// non-key column and must be refused — the checker, not the rule,
/// makes that call.
pub const E20_PUSHDOWN_OK: &str =
    "SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";
/// See [`E20_PUSHDOWN_OK`].
pub const E20_PUSHDOWN_BLOCKED: &str =
    "SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO";

/// The E20 UNION bound demo: neither operand block is duplicate-free,
/// yet the distinct `UNION` is hard-bounded by its merged city domains
/// — strictly tighter than the additive operand estimate.
pub const E20_UNION_BOUND: &str =
    "SELECT S.SCITY FROM SUPPLIER S UNION SELECT A.ACITY FROM AGENTS A";

/// Format a `Duration` compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.2}ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_session_executes_e2() {
        let s = scaled_session(100, 5);
        let out = s.query(E2_QUERY).unwrap();
        assert!(out
            .trace
            .steps
            .iter()
            .any(|st| st.rule == "distinct-removal"));
        assert_eq!(out.stats.sorts, 0);
    }

    #[test]
    fn median_time_is_monotone_in_work() {
        let fast = median_time(3, || (0..100u64).sum::<u64>());
        let slow = median_time(3, || (0..1_000_000u64).sum::<u64>());
        assert!(slow >= fast);
    }

    #[test]
    fn e16_cost_based_work_within_every_static_configuration() {
        use uniqueness::workload::{run_batch, BatchOptions};
        let cfg = ScaleConfig {
            suppliers: 40,
            parts_per_supplier: 4,
            ..Default::default()
        };
        let db = scaled_database(&cfg).unwrap();
        let corpus = e16_corpus(7, 24);
        let mut works: Vec<(&str, u64)> = Vec::new();
        for (name, session) in e16_contenders(db) {
            let report = run_batch(
                &session,
                &corpus,
                BatchOptions {
                    threads: 2,
                    degree: None,
                },
            );
            assert_eq!(report.errors, 0, "{name}: {:?}", report.first_error);
            if name == "cost-based" {
                assert!(report.qerror.ops > 0, "cost-based runs measure q-error");
            }
            works.push((name, total_work(&report.exec)));
        }
        let cost = works
            .iter()
            .find(|(n, _)| *n == "cost-based")
            .expect("cost-based contender present")
            .1;
        for (name, work) in &works {
            assert!(
                cost <= *work,
                "cost-based work {cost} exceeds {name} work {work}"
            );
        }
    }

    #[test]
    fn e16_explain_annotates_every_operator_with_est_and_act() {
        let cfg = ScaleConfig {
            suppliers: 10,
            parts_per_supplier: 3,
            ..Default::default()
        };
        let session = Session::new(scaled_database(&cfg).unwrap()).with_cost_based();
        for sql in e16_corpus(11, 8) {
            let out = session.explain(&sql).unwrap();
            let section = out
                .split("Cost-based plan (est/act rows):")
                .nth(1)
                .unwrap_or_else(|| panic!("no cost section for {sql}: {out}"));
            let lines: Vec<&str> = section.lines().filter(|l| !l.trim().is_empty()).collect();
            assert!(!lines.is_empty(), "{sql}");
            for line in &lines {
                assert!(
                    line.contains("est=") && line.contains("act="),
                    "{sql}: {line}"
                );
                assert!(
                    !line.contains("act=?"),
                    "actuals measured for {sql}: {line}"
                );
            }
        }
    }

    fn sorted_rows(
        session: &Session,
        sql: &str,
    ) -> (Vec<Vec<uniqueness::types::Value>>, ExecStats) {
        let out = session.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut rows = out.rows;
        rows.sort_by(|a, b| uniqueness::types::value::tuple_null_cmp(a, b).unwrap());
        (rows, out.stats)
    }

    #[test]
    fn e17_parallel_agrees_with_serial_and_unique_kernel_probes_fewer() {
        let serial = scaled_session(120, 6);
        let parallel = serial.clone().with_degree(4);
        for sql in e17_corpus() {
            let (want, _) = sorted_rows(&serial, &sql);
            let (got, stats) = sorted_rows(&parallel, &sql);
            assert_eq!(got, want, "parallel multiset differs for {sql}");
            assert!(stats.morsels > 0, "no morsel dispatch for {sql}");
        }

        // The unique-key kernel: SUPPLIER's PK covers the join key, so
        // every probe costs exactly one step instead of chain-walk + 1.
        let mut chained = serial.clone().with_degree(4);
        chained.exec.unique_kernels = false;
        let (want, unique_stats) = sorted_rows(&parallel, E17_UNIQUE_JOIN);
        let (got, chained_stats) = sorted_rows(&chained, E17_UNIQUE_JOIN);
        assert_eq!(got, want, "kernel choice changed the result multiset");
        assert!(
            unique_stats.probe_steps < chained_stats.probe_steps,
            "unique kernel took {} probe steps, chained took {}",
            unique_stats.probe_steps,
            chained_stats.probe_steps
        );
    }

    #[test]
    fn e18_columnar_agrees_and_beats_row_work_by_two_x() {
        let cfg = ScaleConfig {
            suppliers: 2_000,
            parts_per_supplier: 4,
            ..Default::default()
        };
        let db = scaled_database(&cfg).unwrap();
        let contenders = e18_contenders(db);
        let row = &contenders[0].1;
        let col = &contenders[1].1;
        // Multiset identity with the row oracle on every E18 query.
        for sql in e18_corpus() {
            let (want, _) = sorted_rows(row, &sql);
            let (got, _) = sorted_rows(col, &sql);
            assert_eq!(got, want, "columnar multiset differs for {sql}");
        }
        // ≥2× fewer work units on the dictionary-friendly workload.
        let (_, row_stats) = sorted_rows(row, E18_JOIN_DISTINCT);
        let (_, col_stats) = sorted_rows(col, E18_JOIN_DISTINCT);
        assert!(col_stats.vector_ops > 0, "{col_stats:?}");
        assert_eq!(col_stats.rows_scanned, 0, "{col_stats:?}");
        let (row_work, col_work) = (e18_work(&row_stats), e18_work(&col_stats));
        assert!(
            2 * col_work <= row_work,
            "columnar work {col_work} not 2x under row work {row_work}"
        );
        // The direct-index unique probe performs zero hash operations.
        let (_, probe_stats) = sorted_rows(col, E18_UNIQUE_PROBE);
        assert_eq!(probe_stats.hash_probes, 0, "{probe_stats:?}");
        assert_eq!(probe_stats.hash_joins, 0, "{probe_stats:?}");
        assert!(probe_stats.probe_steps > 0, "{probe_stats:?}");
    }

    #[test]
    fn e19_index_plans_agree_and_cut_work_ten_x() {
        let contenders = e19_contenders();
        let full = &contenders[0].1;
        let ix = &contenders[1].1;
        let (mut full_work, mut ix_work) = (0u64, 0u64);
        for sql in e19_corpus() {
            let (want, f) = sorted_rows(full, &sql);
            let (got, i) = sorted_rows(ix, &sql);
            assert_eq!(got, want, "indexed multiset differs for {sql}");
            full_work += e19_work(&f);
            ix_work += e19_work(&i);
        }
        assert!(
            10 * ix_work <= full_work,
            "indexed work {ix_work} not 10x under full-scan work {full_work}"
        );
        // Every unique-index point lookup is a guaranteed one-row probe.
        for sql in e19_point_lookups() {
            let (_, stats) = sorted_rows(ix, &sql);
            assert_eq!(stats.ix_probes, 1, "{sql}: {stats:?}");
            assert_eq!(stats.probe_steps, 1, "{sql}: {stats:?}");
            assert_eq!(stats.rows_scanned, 1, "{sql}: {stats:?}");
        }
        // The index join builds no hash table and probes uniquely.
        let (_, join) = sorted_rows(ix, E19_INDEX_JOIN);
        assert_eq!(join.hash_joins, 0, "{join:?}");
        assert!(join.ix_probes > 0, "{join:?}");
    }

    #[test]
    fn e23_elisions_agree_and_cut_work_five_x() {
        let cfg = ScaleConfig {
            suppliers: 300,
            parts_per_supplier: 2,
            agents_per_supplier: 1,
            ..Default::default()
        };
        let db = scaled_database(&cfg).unwrap();
        let index = "CREATE INDEX IDX_S_BUDGET_SNO ON SUPPLIER (BUDGET, SNO);";
        let mut fast = Session::new(db.clone());
        fast.run_script(index).unwrap();
        let mut naive = Session::new(db).with_agg_elision(false);
        naive.run_script(index).unwrap();
        // Key-covered GROUP BY and COUNT(DISTINCT key): zero hash ops
        // on the elided session, >= 5x fewer than the oracle's.
        for sql in [
            "SELECT S.SNO, COUNT(*) AS N, SUM(S.BUDGET) AS B FROM SUPPLIER S GROUP BY S.SNO",
            "SELECT COUNT(DISTINCT S.SNO) AS N FROM SUPPLIER S",
        ] {
            let (want, ns) = sorted_rows(&naive, sql);
            let (got, fs) = sorted_rows(&fast, sql);
            assert_eq!(got, want, "elided multiset differs for {sql}");
            assert_eq!(fs.hash_probes, 0, "{sql}: {fs:?}");
            assert!(
                ns.hash_probes >= 5 * fs.hash_probes.max(1),
                "{sql}: {} vs {}",
                ns.hash_probes,
                fs.hash_probes
            );
        }
        // Early-stopping Top-K: k rows examined, no sort, same rows.
        let topk = "SELECT S.SNO, S.BUDGET FROM SUPPLIER S ORDER BY S.BUDGET, S.SNO LIMIT 5";
        let base = naive.query(topk).unwrap();
        let out = fast.query(topk).unwrap();
        assert_eq!(out.rows, base.rows);
        assert_eq!(out.stats.early_stops, 1, "{:?}", out.stats);
        assert_eq!(out.stats.sorts, 0);
        assert!(
            base.stats.rows_scanned >= 5 * out.stats.topk_rows_examined.max(1),
            "{:?} vs {:?}",
            base.stats,
            out.stats
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_duration(Duration::from_micros(1_500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
