//! E7/E8 — Example 10 on the DL/I simulator: join vs nested program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniqueness::ims::gateway::{exists_strategy, join_strategy};
use uniqueness::ims::sample::{synthetic, SHARED_OEM_PNO};

fn bench_key_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ims_key_probe");
    group.sample_size(20);
    for suppliers in [1_000usize, 10_000] {
        let db = synthetic(suppliers, 8, 500, 4).unwrap();
        group.bench_with_input(BenchmarkId::new("join", suppliers), &suppliers, |b, _| {
            b.iter(|| join_strategy(&db, "PNO", 500i64).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nested", suppliers), &suppliers, |b, _| {
            b.iter(|| exists_strategy(&db, "PNO", 500i64).unwrap())
        });
    }
    group.finish();
}

fn bench_nonkey_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_ims_nonkey_probe");
    group.sample_size(20);
    for parts in [16usize, 64] {
        let db = synthetic(1_000, parts, 500, 0).unwrap();
        group.bench_with_input(BenchmarkId::new("join", parts), &parts, |b, _| {
            b.iter(|| join_strategy(&db, "OEM-PNO", SHARED_OEM_PNO).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nested", parts), &parts, |b, _| {
            b.iter(|| exists_strategy(&db, "OEM-PNO", SHARED_OEM_PNO).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_key_probe, bench_nonkey_probe);
criterion_main!(benches);
