//! E2/E12 — wall-clock cost of the redundant-DISTINCT sort, and the
//! sort-vs-hash duplicate-elimination ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniq_bench::{scaled_session, E2_QUERY};
use uniqueness::engine::DistinctMethod;
use uniqueness::plan::HostVars;

fn bench_distinct_removal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_distinct_removal");
    group.sample_size(20);
    for suppliers in [1_000usize, 10_000] {
        let session = scaled_session(suppliers, 5);
        let hv = HostVars::new();
        group.bench_with_input(
            BenchmarkId::new("with_sort", suppliers),
            &suppliers,
            |b, _| b.iter(|| session.query_unoptimized(E2_QUERY, &hv).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("rewritten", suppliers),
            &suppliers,
            |b, _| b.iter(|| session.query(E2_QUERY).unwrap()),
        );
    }
    group.finish();
}

fn bench_distinct_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_distinct_method");
    group.sample_size(20);
    let sql = "SELECT DISTINCT S.SNAME, P.COLOR FROM SUPPLIER S, PARTS P \
               WHERE S.SNO = P.SNO";
    let hv = HostVars::new();
    for suppliers in [2_000usize, 10_000] {
        for (name, method) in [
            ("sort", DistinctMethod::Sort),
            ("hash", DistinctMethod::Hash),
        ] {
            let mut session = scaled_session(suppliers, 5);
            session.exec.distinct = method;
            group.bench_with_input(BenchmarkId::new(name, suppliers), &suppliers, |b, _| {
                b.iter(|| session.query_unoptimized(sql, &hv).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distinct_removal, bench_distinct_methods);
criterion_main!(benches);
