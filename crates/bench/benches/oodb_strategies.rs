//! E9 — Example 11 on the pointer-based object store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniqueness::oodb::sample::synthetic;
use uniqueness::oodb::{nested_strategy, pointer_strategy};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_oodb_strategies");
    group.sample_size(20);
    let suppliers = 10_000usize;
    let (store, classes) = synthetic(suppliers, 4, 500).unwrap();
    for pct in [1u32, 50] {
        let hi = (suppliers as i64) * pct as i64 / 100;
        group.bench_with_input(BenchmarkId::new("pointer", pct), &pct, |b, _| {
            b.iter(|| pointer_strategy(&store, &classes, 500, 1, hi).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nested", pct), &pct, |b, _| {
            b.iter(|| nested_strategy(&store, &classes, 500, 1, hi).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
