//! E6 — Theorem 3 / Corollary 2: sort-merge INTERSECT vs the EXISTS
//! rewrite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniq_bench::{scaled_session, E6_QUERY};
use uniqueness::plan::HostVars;

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_intersect_to_exists");
    group.sample_size(20);
    let hv = HostVars::new();
    for suppliers in [2_000usize, 20_000] {
        let session = scaled_session(suppliers, 2);
        group.bench_with_input(
            BenchmarkId::new("sort_merge", suppliers),
            &suppliers,
            |b, _| b.iter(|| session.query_unoptimized(E6_QUERY, &hv).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("rewritten", suppliers),
            &suppliers,
            |b, _| b.iter(|| session.query(E6_QUERY).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intersect);
criterion_main!(benches);
