//! E10 — cost of the analyses themselves as predicates grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniqueness::core::algorithm1::{algorithm1, Algorithm1Options};
use uniqueness::core::analysis::unique_projection;
use uniqueness::plan::{bind_query, BoundSpec};
use uniqueness::sql::parse_query;

fn spec_with_conjuncts(n: usize) -> BoundSpec {
    let db = uniqueness::catalog::sample::supplier_schema().unwrap();
    let cols = ["SNO", "SNAME", "SCITY", "BUDGET", "STATUS"];
    let pred: Vec<String> = (0..n)
        .map(|i| format!("S.{} = :H{}", cols[i % cols.len()], i))
        .collect();
    let sql = format!(
        "SELECT DISTINCT S.SCITY FROM SUPPLIER S WHERE {}",
        pred.join(" AND ")
    );
    bind_query(db.catalog(), &parse_query(&sql).unwrap())
        .unwrap()
        .as_spec()
        .unwrap()
        .clone()
}

fn bench_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_analysis_cost");
    for n in [4usize, 16, 64] {
        let spec = spec_with_conjuncts(n);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| algorithm1(&spec, &Algorithm1Options::default()).unique)
        });
        group.bench_with_input(BenchmarkId::new("fd_closure", n), &n, |b, _| {
            b.iter(|| unique_projection(&spec).unique)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);
