//! E4/E5 — Theorem 2 / Corollary 1: nested-loop EXISTS vs the rewritten
//! join plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniq_bench::{scaled_session, E4_QUERY, E5_QUERY};
use uniqueness::plan::HostVars;

fn bench_theorem_2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_subquery_to_join");
    // The nested-loop baseline is intentionally slow (that is the point);
    // keep sampling cheap.
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    let hv = HostVars::new();
    for parts in [4usize, 16] {
        let session = scaled_session(2_000, parts);
        group.bench_with_input(BenchmarkId::new("nested", parts), &parts, |b, _| {
            b.iter(|| session.query_unoptimized(E4_QUERY, &hv).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rewritten", parts), &parts, |b, _| {
            b.iter(|| session.query(E4_QUERY).unwrap())
        });
    }
    group.finish();
}

fn bench_corollary_1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_corollary_1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    let hv = HostVars::new();
    let session = scaled_session(1_000, 8);
    group.bench_function("nested", |b| {
        b.iter(|| session.query_unoptimized(E5_QUERY, &hv).unwrap())
    });
    group.bench_function("rewritten", |b| b.iter(|| session.query(E5_QUERY).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_theorem_2, bench_corollary_1);
criterion_main!(benches);
