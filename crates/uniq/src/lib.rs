//! # uniqueness — *Exploiting Uniqueness in Query Optimization*
//!
//! A full reproduction of Paulley & Larson's ICDE 1994 paper: a SQL2
//! front end, constraint-aware catalog, the uniqueness analyses
//! (Theorem 1 / Algorithm 1), the semantic rewrites of §5–§6, a multiset
//! executor with exact three-valued-logic and `=̇` null semantics, and
//! the two navigational back-end simulators (IMS/DL-I and a
//! pointer-based OODB) the paper uses to argue the join → subquery
//! direction.
//!
//! ## Quick start
//!
//! ```
//! use uniqueness::engine::Session;
//!
//! // The paper's Figure 1 supplier database.
//! let session = Session::sample().unwrap();
//!
//! // Paper Example 1: the DISTINCT is provably redundant.
//! let out = session
//!     .query(
//!         "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P \
//!          WHERE S.SNO = P.SNO AND P.COLOR = 'RED'",
//!     )
//!     .unwrap();
//! assert_eq!(out.trace.steps.len(), 1);      // one rewrite applied
//! assert_eq!(out.trace.steps[0].rule, "distinct-removal");
//! assert_eq!(out.stats.sorts, 0);            // the result sort is gone
//! assert_eq!(out.rows.len(), 4);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | values, 3-valued logic, the `=̇` operator |
//! | [`sql`] | lexer, parser, AST, SQL printer |
//! | [`catalog`] | schemas, keys, `CHECK`s, validated storage |
//! | [`plan`] | binder, bound algebra, CNF/DNF normalization |
//! | [`fd`] | FD sets, closure, candidate keys |
//! | [`proof`] | U-semiring symbolic equivalence checker |
//! | [`core`] | Algorithm 1, FD uniqueness test, rewrite rules |
//! | [`cost`] | statistics, cardinality estimator, cost-based planner |
//! | [`engine`] | executor, set operations, [`engine::Session`] |
//! | [`ims`] | HIDAM/DL-I simulator and the Example 10 gateway |
//! | [`oodb`] | pointer-based object store, Example 11 strategies |
//! | [`server`] | wire protocol, `uniqd` daemon, `uniq-cli` client |
//! | [`workload`] | scaled data, random instances, labelled corpus |

pub use uniq_catalog as catalog;
pub use uniq_core as core;
pub use uniq_cost as cost;
pub use uniq_engine as engine;
pub use uniq_fd as fd;
pub use uniq_ims as ims;
pub use uniq_oodb as oodb;
pub use uniq_plan as plan;
pub use uniq_proof as proof;
pub use uniq_server as server;
pub use uniq_sql as sql;
pub use uniq_types as types;
pub use uniq_workload as workload;
