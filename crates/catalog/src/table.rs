//! Table schemas and constraints.

use uniq_sql::{CreateTable, Expr, TableConstraintAst};
use uniq_types::{ColumnName, DataType, Error, Result, TableName};

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// The column's name (unique within the table).
    pub name: ColumnName,
    /// The declared scalar type.
    pub data_type: DataType,
    /// Whether the column admits `NULL`. Columns of a `PRIMARY KEY` are
    /// forced non-nullable at schema construction, per SQL2.
    pub nullable: bool,
}

/// A candidate key: an ordered set of column positions.
///
/// `primary` distinguishes the primary key (whose columns can never be
/// `NULL`) from `UNIQUE` candidate keys (whose columns may be, with the
/// null-as-special-value rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    /// Column positions (indices into [`TableSchema::columns`]), sorted.
    pub columns: Vec<usize>,
    /// True for the `PRIMARY KEY`, false for `UNIQUE` keys.
    pub primary: bool,
}

/// A foreign key (inclusion dependency): this table's `columns` reference
/// `parent_columns` of `parent`, which must form a candidate key there.
/// The basis of the §7 join-elimination rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column positions in this table, in declaration order
    /// of the constraint.
    pub columns: Vec<usize>,
    /// The referenced table.
    pub parent: TableName,
    /// The referenced column names (resolved against the parent's schema
    /// at validation/analysis time), parallel to `columns`.
    pub parent_columns: Vec<ColumnName>,
}

/// A persistent secondary index in resolved (position-based) form.
///
/// `columns` keeps declaration order (the probe-key prefix order), unlike
/// [`Key::columns`] which is sorted: an index on `(B, A)` probes by `B`
/// first. A unique index additionally registers a candidate [`Key`] on the
/// schema, making it a uniqueness source for the paper's analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// The index's name (unique across the database).
    pub name: String,
    /// Indexed column positions in declaration order.
    pub columns: Vec<usize>,
    /// At most one row per key value (null-as-special-value semantics).
    pub unique: bool,
    /// Ordered (`BTreeMap`-backed) index supporting range scans; `false`
    /// means a hash index supporting point probes only.
    pub ordered: bool,
}

/// A table constraint in resolved (position-based) form.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    /// A candidate key (primary or unique).
    Key(Key),
    /// A `CHECK` search condition over this table's columns. Kept in AST
    /// form; column references must resolve within the table.
    Check(Expr),
    /// A foreign key referencing a candidate key of another table.
    ForeignKey(ForeignKey),
}

/// The schema of one base table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: TableName,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// All constraints, keys first.
    pub constraints: Vec<TableConstraint>,
    /// Persistent secondary indexes, in creation order.
    pub indexes: Vec<IndexDef>,
}

impl TableSchema {
    /// Build a schema from a parsed `CREATE TABLE`, resolving constraint
    /// column names to positions and applying the SQL2 rule that primary
    /// key columns are `NOT NULL`.
    pub fn from_ast(ast: &CreateTable) -> Result<TableSchema> {
        let mut columns: Vec<ColumnDef> = ast
            .columns
            .iter()
            .map(|c| ColumnDef {
                name: c.name.clone(),
                data_type: c.data_type,
                nullable: !c.not_null,
            })
            .collect();
        // Reject duplicate column names.
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(Error::bind(format!(
                    "duplicate column {} in table {}",
                    c.name, ast.name
                )));
            }
        }
        let position = |name: &ColumnName| -> Result<usize> {
            columns
                .iter()
                .position(|c| &c.name == name)
                .ok_or_else(|| Error::UnknownColumn {
                    table: ast.name.to_string(),
                    column: name.to_string(),
                })
        };

        let mut keys: Vec<Key> = Vec::new();
        let mut checks: Vec<Expr> = Vec::new();
        let mut fks: Vec<ForeignKey> = Vec::new();
        let mut saw_primary = false;
        for c in &ast.constraints {
            match c {
                TableConstraintAst::PrimaryKey(cols) => {
                    if saw_primary {
                        return Err(Error::bind(format!(
                            "table {} has more than one PRIMARY KEY",
                            ast.name
                        )));
                    }
                    saw_primary = true;
                    let mut positions = cols.iter().map(&position).collect::<Result<Vec<_>>>()?;
                    positions.sort_unstable();
                    positions.dedup();
                    keys.insert(
                        0,
                        Key {
                            columns: positions,
                            primary: true,
                        },
                    );
                }
                TableConstraintAst::Unique(cols) => {
                    let mut positions = cols.iter().map(&position).collect::<Result<Vec<_>>>()?;
                    positions.sort_unstable();
                    positions.dedup();
                    keys.push(Key {
                        columns: positions,
                        primary: false,
                    });
                }
                TableConstraintAst::Check(e) => checks.push(e.clone()),
                TableConstraintAst::ForeignKey {
                    columns: cols,
                    parent,
                    parent_columns,
                } => {
                    if cols.len() != parent_columns.len() {
                        return Err(Error::bind(format!(
                            "foreign key on {} has {} columns but references {}",
                            ast.name,
                            cols.len(),
                            parent_columns.len()
                        )));
                    }
                    let positions = cols.iter().map(&position).collect::<Result<Vec<_>>>()?;
                    fks.push(ForeignKey {
                        columns: positions,
                        parent: parent.clone(),
                        parent_columns: parent_columns.clone(),
                    });
                }
            }
        }
        // SQL2: every column of the primary key is NOT NULL.
        if let Some(pk) = keys.iter().find(|k| k.primary) {
            for &i in &pk.columns {
                columns[i].nullable = false;
            }
        }
        let mut constraints: Vec<TableConstraint> =
            keys.into_iter().map(TableConstraint::Key).collect();
        constraints.extend(checks.into_iter().map(TableConstraint::Check));
        constraints.extend(fks.into_iter().map(TableConstraint::ForeignKey));
        Ok(TableSchema {
            name: ast.name.clone(),
            columns,
            constraints,
            indexes: Vec::new(),
        })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn column_position(&self, name: &ColumnName) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| &c.name == name)
            .ok_or_else(|| Error::UnknownColumn {
                table: self.name.to_string(),
                column: name.to_string(),
            })
    }

    /// All candidate keys (primary key first when present).
    pub fn candidate_keys(&self) -> impl Iterator<Item = &Key> {
        self.constraints.iter().filter_map(|c| match c {
            TableConstraint::Key(k) => Some(k),
            _ => None,
        })
    }

    /// The primary key, if declared.
    pub fn primary_key(&self) -> Option<&Key> {
        self.candidate_keys().find(|k| k.primary)
    }

    /// All `CHECK` conditions.
    pub fn checks(&self) -> impl Iterator<Item = &Expr> {
        self.constraints.iter().filter_map(|c| match c {
            TableConstraint::Check(e) => Some(e),
            _ => None,
        })
    }

    /// All foreign keys declared on this table.
    pub fn foreign_keys(&self) -> impl Iterator<Item = &ForeignKey> {
        self.constraints.iter().filter_map(|c| match c {
            TableConstraint::ForeignKey(fk) => Some(fk),
            _ => None,
        })
    }

    /// True iff the table has at least one candidate key — the
    /// precondition shared by all three of the paper's theorems.
    pub fn has_key(&self) -> bool {
        self.candidate_keys().next().is_some()
    }

    /// Look up a secondary index by name.
    pub fn index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.iter().find(|ix| ix.name == name)
    }

    /// Register a secondary index on this schema. A unique index also
    /// registers its column set as a candidate key (the paper's new
    /// uniqueness source); the return value reports whether a *new* key
    /// was appended to `constraints`, so storage can extend its
    /// key-enforcement structures in lockstep.
    pub fn add_index(&mut self, def: IndexDef) -> bool {
        let mut appended = false;
        if def.unique {
            let mut sorted = def.columns.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if !self.candidate_keys().any(|k| k.columns == sorted) {
                self.constraints.push(TableConstraint::Key(Key {
                    columns: sorted,
                    primary: false,
                }));
                appended = true;
            }
        }
        self.indexes.push(def);
        appended
    }

    /// The name of a unique index declaring exactly this candidate key,
    /// if one exists — lets uniqueness justifications cite the index
    /// (`CREATE UNIQUE INDEX`) that supplied the key.
    pub fn key_index_name(&self, key: &Key) -> Option<&str> {
        self.indexes.iter().find_map(|ix| {
            if !ix.unique {
                return None;
            }
            let mut sorted = ix.columns.clone();
            sorted.sort_unstable();
            sorted.dedup();
            (sorted == key.columns).then_some(ix.name.as_str())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_sql::parse_statement;

    fn schema(sql: &str) -> TableSchema {
        match parse_statement(sql).unwrap() {
            uniq_sql::Statement::CreateTable(ct) => TableSchema::from_ast(&ct).unwrap(),
            _ => panic!("not a CREATE TABLE"),
        }
    }

    #[test]
    fn primary_key_columns_become_not_null() {
        let s = schema("CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A))");
        assert!(!s.columns[0].nullable);
        assert!(s.columns[1].nullable);
    }

    #[test]
    fn unique_key_columns_stay_nullable() {
        let s = schema("CREATE TABLE T (A INTEGER, B INTEGER, UNIQUE (B), PRIMARY KEY (A))");
        assert!(s.columns[1].nullable);
        let keys: Vec<_> = s.candidate_keys().collect();
        assert_eq!(keys.len(), 2);
        assert!(keys[0].primary, "primary key listed first");
        assert_eq!(keys[1].columns, vec![1]);
    }

    #[test]
    fn composite_key_positions_are_sorted() {
        let s = schema("CREATE TABLE T (A INTEGER, B INTEGER, C INTEGER, PRIMARY KEY (C, A))");
        assert_eq!(s.primary_key().unwrap().columns, vec![0, 2]);
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        let ct = match parse_statement(
            "CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A), PRIMARY KEY (B))",
        )
        .unwrap()
        {
            uniq_sql::Statement::CreateTable(ct) => ct,
            _ => unreachable!(),
        };
        assert!(TableSchema::from_ast(&ct).is_err());
    }

    #[test]
    fn unknown_key_column_rejected() {
        let ct = match parse_statement("CREATE TABLE T (A INTEGER, PRIMARY KEY (Z))").unwrap() {
            uniq_sql::Statement::CreateTable(ct) => ct,
            _ => unreachable!(),
        };
        assert!(TableSchema::from_ast(&ct).is_err());
    }

    #[test]
    fn duplicate_column_rejected() {
        let ct = match parse_statement("CREATE TABLE T (A INTEGER, A VARCHAR)").unwrap() {
            uniq_sql::Statement::CreateTable(ct) => ct,
            _ => unreachable!(),
        };
        assert!(TableSchema::from_ast(&ct).is_err());
    }

    #[test]
    fn checks_are_collected() {
        let s = schema("CREATE TABLE T (A INTEGER, CHECK (A BETWEEN 1 AND 499), CHECK (A <> 0))");
        assert_eq!(s.checks().count(), 2);
        assert!(!s.has_key());
    }
}
