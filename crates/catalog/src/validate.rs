//! Row-level constraint validation.
//!
//! Everything the paper's theorems assume about a *valid instance* is
//! enforced here:
//!
//! * declared types and nullability;
//! * `CHECK` conditions, *true-interpreted* (`⌈·⌉`, paper Table 2): a row
//!   is rejected only when the condition evaluates to definitely false —
//!   an unknown outcome (from a `NULL`) satisfies the constraint, per SQL2;
//! * candidate-key uniqueness under the `=̇` comparison: two rows conflict
//!   when *every* key column pair is `null_eq`-equivalent, which yields the
//!   paper's §2.1 rule that an instance may hold at most one row whose
//!   single-column `UNIQUE` key is `NULL`.

use crate::table::TableSchema;
use uniq_sql::{CmpOp, Expr, Scalar};
use uniq_types::{Error, Result, Tri, Value};

/// Validate a row's shape, types and nullability against `schema`.
pub fn validate_shape(schema: &TableSchema, row: &[Value]) -> Result<()> {
    if row.len() != schema.arity() {
        return Err(Error::ConstraintViolation {
            table: schema.name.to_string(),
            message: format!(
                "row has {} values, table has {} columns",
                row.len(),
                schema.arity()
            ),
        });
    }
    for (col, v) in schema.columns.iter().zip(row) {
        if v.is_null() {
            if !col.nullable {
                return Err(Error::ConstraintViolation {
                    table: schema.name.to_string(),
                    message: format!("column {} is NOT NULL", col.name),
                });
            }
        } else if v.data_type() != Some(col.data_type) {
            return Err(Error::ConstraintViolation {
                table: schema.name.to_string(),
                message: format!("column {} expects {}, got {v}", col.name, col.data_type),
            });
        }
    }
    Ok(())
}

/// Validate a row against every `CHECK` constraint (true-interpreted).
pub fn validate_checks(schema: &TableSchema, row: &[Value]) -> Result<()> {
    for check in schema.checks() {
        let t = eval_check(schema, row, check)?;
        if !t.true_interpreted() {
            return Err(Error::ConstraintViolation {
                table: schema.name.to_string(),
                message: format!("CHECK ({check}) failed"),
            });
        }
    }
    Ok(())
}

/// Does `row` conflict with `existing` on candidate key `key_cols` under
/// the `=̇` comparison? (All key columns pairwise `null_eq`.)
pub fn key_conflict(key_cols: &[usize], row: &[Value], existing: &[Value]) -> Result<bool> {
    for &i in key_cols {
        if !row[i].null_eq(&existing[i])? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Validate key uniqueness of `row` against every stored row.
pub fn validate_keys<'a>(
    schema: &TableSchema,
    row: &[Value],
    existing: impl Iterator<Item = &'a [Value]>,
) -> Result<()> {
    let keys: Vec<_> = schema.candidate_keys().collect();
    if keys.is_empty() {
        return Ok(());
    }
    for old in existing {
        for key in &keys {
            if key_conflict(&key.columns, row, old)? {
                let desc: Vec<String> = key
                    .columns
                    .iter()
                    .map(|&i| format!("{}={}", schema.columns[i].name, row[i]))
                    .collect();
                return Err(Error::ConstraintViolation {
                    table: schema.name.to_string(),
                    message: format!(
                        "{} key violation on ({})",
                        if key.primary { "primary" } else { "unique" },
                        desc.join(", ")
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Evaluate a `CHECK` search condition on a single row of `schema`.
///
/// `CHECK` conditions may reference only this table's columns and literal
/// constants — no host variables, no subqueries (SQL2 restricts check
/// constraints to conditions testable on the row alone, and the paper uses
/// nothing more).
pub fn eval_check(schema: &TableSchema, row: &[Value], expr: &Expr) -> Result<Tri> {
    let scalar = |s: &Scalar| -> Result<Value> {
        match s {
            Scalar::Literal(v) => Ok(v.clone()),
            Scalar::Column(c) => {
                if let Some(q) = &c.qualifier {
                    if q.as_str() != schema.name.as_str() {
                        return Err(Error::bind(format!(
                            "CHECK on {} references foreign qualifier {q}",
                            schema.name
                        )));
                    }
                }
                let i = schema.column_position(&c.column)?;
                Ok(row[i].clone())
            }
            Scalar::HostVar(h) => Err(Error::bind(format!(
                "host variable :{h} not allowed in CHECK constraint"
            ))),
        }
    };
    let cmp = |op: CmpOp, l: &Value, r: &Value| -> Result<Tri> {
        Ok(match l.sql_cmp(r)? {
            None => Tri::Unknown,
            Some(ord) => Tri::from_bool(match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => ord.is_ne(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            }),
        })
    };
    match expr {
        Expr::Cmp { op, left, right } => cmp(*op, &scalar(left)?, &scalar(right)?),
        Expr::Between {
            scalar: s,
            low,
            high,
            negated,
        } => {
            let v = scalar(s)?;
            let t = cmp(CmpOp::Ge, &v, &scalar(low)?)?.and(cmp(CmpOp::Le, &v, &scalar(high)?)?);
            Ok(if *negated { t.not() } else { t })
        }
        Expr::InList {
            scalar: s,
            list,
            negated,
        } => {
            let v = scalar(s)?;
            let mut t = Tri::False;
            for item in list {
                t = t.or(cmp(CmpOp::Eq, &v, &scalar(item)?)?);
            }
            Ok(if *negated { t.not() } else { t })
        }
        Expr::IsNull { scalar: s, negated } => {
            let is_null = scalar(s)?.is_null();
            Ok(Tri::from_bool(is_null != *negated))
        }
        Expr::And(a, b) => Ok(eval_check(schema, row, a)?.and(eval_check(schema, row, b)?)),
        Expr::Or(a, b) => Ok(eval_check(schema, row, a)?.or(eval_check(schema, row, b)?)),
        Expr::Not(a) => Ok(eval_check(schema, row, a)?.not()),
        Expr::Exists { .. } | Expr::InSubquery { .. } => Err(Error::bind(
            "subqueries are not allowed in CHECK constraints",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableSchema;
    use uniq_sql::{parse_statement, Statement};
    use uniq_types::Value;

    fn schema(sql: &str) -> TableSchema {
        match parse_statement(sql).unwrap() {
            Statement::CreateTable(ct) => TableSchema::from_ast(&ct).unwrap(),
            _ => panic!(),
        }
    }

    fn supplier() -> TableSchema {
        schema(
            "CREATE TABLE SUPPLIER (SNO INTEGER, SNAME VARCHAR, SCITY VARCHAR, \
             BUDGET INTEGER, STATUS VARCHAR, PRIMARY KEY (SNO), \
             CHECK (SNO BETWEEN 1 AND 499), \
             CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')), \
             CHECK (BUDGET <> 0 OR STATUS = 'Inactive'))",
        )
    }

    fn row(sno: i64, scity: &str, budget: Option<i64>, status: &str) -> Vec<Value> {
        vec![
            Value::Int(sno),
            Value::str("name"),
            Value::str(scity),
            budget.map(Value::Int).unwrap_or(Value::Null),
            Value::str(status),
        ]
    }

    #[test]
    fn valid_row_passes() {
        let s = supplier();
        let r = row(10, "Toronto", Some(100), "Active");
        validate_shape(&s, &r).unwrap();
        validate_checks(&s, &r).unwrap();
    }

    #[test]
    fn out_of_range_sno_fails_between_check() {
        let s = supplier();
        assert!(validate_checks(&s, &row(500, "Toronto", Some(1), "A")).is_err());
        assert!(validate_checks(&s, &row(0, "Toronto", Some(1), "A")).is_err());
    }

    #[test]
    fn city_not_in_list_fails() {
        let s = supplier();
        assert!(validate_checks(&s, &row(10, "Ottawa", Some(1), "A")).is_err());
    }

    #[test]
    fn implication_constraint() {
        let s = supplier();
        // BUDGET = 0 requires STATUS = 'Inactive'.
        assert!(validate_checks(&s, &row(10, "Toronto", Some(0), "Active")).is_err());
        validate_checks(&s, &row(10, "Toronto", Some(0), "Inactive")).unwrap();
    }

    #[test]
    fn check_with_null_is_satisfied_true_interpreted() {
        let s = supplier();
        // NULL budget: BUDGET <> 0 is unknown, STATUS = 'Active' false →
        // overall unknown → passes (⌈·⌉).
        validate_checks(&s, &row(10, "Toronto", None, "Active")).unwrap();
    }

    #[test]
    fn not_null_enforced() {
        let s = supplier();
        let mut r = row(10, "Toronto", Some(1), "A");
        r[0] = Value::Null; // SNO is primary key → NOT NULL
        assert!(validate_shape(&s, &r).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = supplier();
        let mut r = row(10, "Toronto", Some(1), "A");
        r[0] = Value::str("not an int");
        assert!(validate_shape(&s, &r).is_err());
    }

    #[test]
    fn primary_key_uniqueness() {
        let s = supplier();
        let a = row(10, "Toronto", Some(1), "A");
        let b = row(10, "Chicago", Some(2), "B");
        let existing = [a.as_slice()];
        assert!(validate_keys(&s, &b, existing.iter().copied()).is_err());
        let c = row(11, "Chicago", Some(2), "B");
        validate_keys(&s, &c, existing.iter().copied()).unwrap();
    }

    #[test]
    fn unique_key_treats_null_as_special_value() {
        // Paper §2.1: only one PARTS row may have OEM-PNO = NULL.
        let s = schema(
            "CREATE TABLE PARTS (SNO INTEGER, PNO INTEGER, OEM-PNO INTEGER, \
             PRIMARY KEY (SNO, PNO), UNIQUE (OEM-PNO))",
        );
        let a = vec![Value::Int(1), Value::Int(1), Value::Null];
        let b = vec![Value::Int(1), Value::Int(2), Value::Null];
        let existing = [a.as_slice()];
        let err = validate_keys(&s, &b, existing.iter().copied()).unwrap_err();
        assert!(err.to_string().contains("unique key violation"), "{err}");
    }

    #[test]
    fn subquery_in_check_rejected() {
        let s = schema("CREATE TABLE T (A INTEGER)");
        let e = uniq_sql::parse_expr("EXISTS (SELECT * FROM T WHERE A = 1)").unwrap();
        assert!(eval_check(&s, &[Value::Int(1)], &e).is_err());
    }
}
