//! MVCC snapshot chain over copy-on-write [`Database`] values.
//!
//! [`SnapshotStore`] promotes the monotonic catalog `version` and the
//! per-table [`std::sync::Arc`] storage of [`Database`] into real
//! snapshot isolation:
//!
//! * **Readers** call [`SnapshotStore::snapshot`] once at query start
//!   and receive an `Arc<Database>` pinning a consistent catalog +
//!   table + index view for the whole query. No lock is held while the
//!   query executes — a snapshot is just a reference-counted pointer.
//! * **Writers** call [`SnapshotStore::apply`] (or
//!   [`SnapshotStore::run_script`]). A write clones the head database
//!   (structural sharing: only the table map and catalog are copied, no
//!   rows), applies the mutation — [`std::sync::Arc::make_mut`] inside
//!   [`Database`] deep-copies exactly the touched tables — and
//!   publishes the result as the new head. Readers pinned to older
//!   snapshots keep them alive through their `Arc`s; untouched tables
//!   are shared by every snapshot in the chain.
//! * **Atomicity**: a failed statement (constraint violation, unknown
//!   table, …) discards the scratch clone, so the head never exposes a
//!   partially applied write. `run_script` publishes once per script —
//!   a mid-script failure rolls the whole script back.
//!
//! Writers serialize against each other on a dedicated mutex; they
//! never block readers (publishing swaps one `Arc` under a briefly held
//! `RwLock` write lock), and readers never block writers.

use crate::database::Database;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use uniq_sql::Statement;
use uniq_types::Result;

/// A single-writer, many-reader chain of copy-on-write database
/// snapshots. See the module docs for the protocol.
#[derive(Debug)]
pub struct SnapshotStore {
    /// The newest published snapshot.
    head: RwLock<Arc<Database>>,
    /// Serializes writers; never held while readers execute.
    write: Mutex<()>,
    /// Snapshots published after the seed (the chain's depth).
    published: AtomicU64,
    /// Retained snapshots, oldest first; the back is always the head.
    /// Garbage-collected on every publish: dead *prefixes* — entries no
    /// reader or subscriber pins anymore — are truncated, so sustained
    /// writes with no pins keep the chain at O(1) length while one
    /// pinned old snapshot keeps exactly its suffix reachable.
    chain: Mutex<VecDeque<Arc<Database>>>,
}

impl SnapshotStore {
    /// A store seeded with `db` as the first snapshot.
    pub fn new(db: Database) -> SnapshotStore {
        let seed = Arc::new(db);
        SnapshotStore {
            head: RwLock::new(Arc::clone(&seed)),
            write: Mutex::new(()),
            published: AtomicU64::new(0),
            chain: Mutex::new(VecDeque::from([seed])),
        }
    }

    /// Pin the current head snapshot. The returned `Arc` stays
    /// consistent (catalog, rows, indexes, versions) no matter what
    /// writers publish afterwards; drop it to release the chain.
    pub fn snapshot(&self) -> Arc<Database> {
        Arc::clone(&self.head.read().expect("snapshot head poisoned"))
    }

    /// Number of snapshots published since the seed — one per
    /// successful [`SnapshotStore::apply`] / [`SnapshotStore::run_script`].
    pub fn depth(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Apply one DDL/DML statement copy-on-write and publish the result
    /// as the new head. On error the head is untouched.
    pub fn apply(&self, stmt: &Statement) -> Result<()> {
        self.write_with(|db| db.apply(stmt))
    }

    /// Parse and apply a whole DDL/DML script as one atomic publish: a
    /// failure anywhere leaves the head exactly as it was. Returns the
    /// number of statements applied.
    pub fn run_script(&self, sql: &str) -> Result<usize> {
        let statements = uniq_sql::parse_statements(sql)?;
        let n = statements.len();
        self.write_with(|db| {
            for stmt in &statements {
                db.apply(stmt)?;
            }
            Ok(())
        })?;
        Ok(n)
    }

    /// Number of snapshots the store itself still retains (the GC'd
    /// chain length, head included). Bounded by `1 +` the number of
    /// publishes since the oldest still-pinned snapshot; `1` when
    /// nothing old is pinned.
    pub fn live_chain_len(&self) -> usize {
        self.chain.lock().expect("snapshot chain poisoned").len()
    }

    /// The writer protocol: clone the head structurally, mutate the
    /// clone, publish on success.
    fn write_with(&self, mutate: impl FnOnce(&mut Database) -> Result<()>) -> Result<()> {
        let _writer = self.write.lock().expect("snapshot writer lock poisoned");
        // Readers may still be pinning the head; clone shares all table
        // storage, so this is O(#tables), not O(rows).
        let mut scratch = (*self.snapshot()).clone();
        mutate(&mut scratch)?;
        let published = Arc::new(scratch);
        {
            let mut head = self.head.write().expect("snapshot head poisoned");
            *head = Arc::clone(&published);
        }
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut chain = self.chain.lock().expect("snapshot chain poisoned");
        chain.push_back(published);
        // Truncate the dead prefix: a front entry whose only owner is
        // the chain itself can never be read again (snapshot() only
        // hands out the head). Stop at the first pinned entry — a
        // pinned snapshot must keep reconstruction from it possible.
        while chain.len() > 1 {
            let front = chain.front().expect("non-empty chain");
            if Arc::strong_count(front) > 1 {
                break;
            }
            chain.pop_front();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_types::Value;

    fn seeded() -> SnapshotStore {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, PRIMARY KEY (A));
             CREATE TABLE U (B INTEGER, PRIMARY KEY (B));
             INSERT INTO T VALUES (1), (2);
             INSERT INTO U VALUES (10);",
        )
        .unwrap();
        SnapshotStore::new(db)
    }

    #[test]
    fn pinned_snapshot_never_sees_later_inserts() {
        let store = seeded();
        let pinned = store.snapshot();
        store.run_script("INSERT INTO T VALUES (3);").unwrap();
        assert_eq!(pinned.row_count(&"T".into()).unwrap(), 2);
        assert_eq!(store.snapshot().row_count(&"T".into()).unwrap(), 3);
    }

    #[test]
    fn pinned_snapshot_never_sees_later_ddl() {
        let store = seeded();
        let pinned = store.snapshot();
        let v = pinned.version();
        store
            .run_script("CREATE INDEX IDX_A ON T (A); CREATE TABLE W (C INTEGER);")
            .unwrap();
        assert_eq!(pinned.version(), v, "pinned catalog version is stable");
        assert!(pinned.catalog().table(&"W".into()).is_err());
        assert!(pinned
            .catalog()
            .table(&"T".into())
            .unwrap()
            .indexes
            .is_empty());
        let fresh = store.snapshot();
        assert!(fresh.version() > v);
        assert_eq!(fresh.catalog().table(&"T".into()).unwrap().indexes.len(), 1);
        assert!(fresh.catalog().table(&"W".into()).is_ok());
    }

    #[test]
    fn writes_share_untouched_table_storage() {
        let store = seeded();
        let before = store.snapshot();
        store.run_script("INSERT INTO T VALUES (3);").unwrap();
        let after = store.snapshot();
        assert!(
            before.shares_storage(&after, &"U".into()),
            "a write to T must not clone U's storage"
        );
        assert!(
            !before.shares_storage(&after, &"T".into()),
            "the touched table diverges"
        );
    }

    #[test]
    fn failed_script_publishes_nothing() {
        let store = seeded();
        let before = store.snapshot();
        let err = store
            .run_script("INSERT INTO T VALUES (9); INSERT INTO T VALUES (1);")
            .unwrap_err();
        assert!(err.to_string().contains("key violation"), "{err}");
        let head = store.snapshot();
        assert_eq!(head.row_count(&"T".into()).unwrap(), 2, "rolled back");
        assert!(before.shares_storage(&head, &"T".into()), "head unchanged");
        assert_eq!(store.depth(), 0, "nothing was published");
    }

    #[test]
    fn depth_counts_published_snapshots() {
        let store = seeded();
        assert_eq!(store.depth(), 0);
        store.run_script("INSERT INTO T VALUES (3);").unwrap();
        store
            .run_script("INSERT INTO T VALUES (4); INSERT INTO U VALUES (11);")
            .unwrap();
        assert_eq!(store.depth(), 2, "one publish per script");
    }

    #[test]
    fn concurrent_readers_see_only_whole_writes() {
        // Writers insert pairs atomically (one script = one publish);
        // readers must therefore never observe an odd row count.
        let store = SnapshotStore::new({
            let mut db = Database::new();
            db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A));")
                .unwrap();
            db
        });
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..50i64 {
                    store
                        .run_script(&format!(
                            "INSERT INTO T VALUES ({}); INSERT INTO T VALUES ({});",
                            2 * i,
                            2 * i + 1
                        ))
                        .unwrap();
                }
            });
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let snap = store.snapshot();
                        let n = snap.row_count(&"T".into()).unwrap();
                        assert_eq!(n % 2, 0, "torn write observed: {n} rows");
                    }
                });
            }
            writer.join().unwrap();
        });
        assert_eq!(store.snapshot().row_count(&"T".into()).unwrap(), 100);
        assert_eq!(store.depth(), 50);
    }

    #[test]
    fn chain_gc_keeps_depth_bounded_under_sustained_writes() {
        let store = seeded();
        assert_eq!(store.live_chain_len(), 1, "seed only");
        for i in 3..203i64 {
            store
                .run_script(&format!("INSERT INTO T VALUES ({i});"))
                .unwrap();
            assert!(
                store.live_chain_len() <= 2,
                "unpinned chain grew to {} after {} writes",
                store.live_chain_len(),
                i - 2
            );
        }
        assert_eq!(store.depth(), 200, "every publish counted");
        assert_eq!(store.live_chain_len(), 1, "only the head survives GC");
    }

    #[test]
    fn pinned_snapshot_holds_its_suffix_until_dropped() {
        let store = seeded();
        let pinned = store.snapshot();
        for i in 3..13i64 {
            store
                .run_script(&format!("INSERT INTO T VALUES ({i});"))
                .unwrap();
        }
        // The pin sits at the front: prefix truncation cannot pass it.
        assert_eq!(store.live_chain_len(), 11, "pin retains its suffix");
        drop(pinned);
        // The next publish collects the whole dead prefix at once.
        store.run_script("INSERT INTO T VALUES (99);").unwrap();
        assert_eq!(store.live_chain_len(), 1, "drop + publish collapses it");
    }

    #[test]
    fn snapshots_outlive_the_store_head() {
        let store = seeded();
        let pinned = store.snapshot();
        for i in 3..20i64 {
            store
                .run_script(&format!("INSERT INTO T VALUES ({i});"))
                .unwrap();
        }
        // The pinned snapshot still answers point lookups consistently.
        assert_eq!(
            pinned
                .lookup_by_key(&"T".into(), &[0], &[Value::Int(2)])
                .unwrap()
                .unwrap(),
            &vec![Value::Int(2)]
        );
        assert!(pinned
            .lookup_by_key(&"T".into(), &[0], &[Value::Int(12)])
            .unwrap()
            .is_none());
    }
}
