//! The catalog: a registry of table schemas.

use crate::table::TableSchema;
use std::collections::BTreeMap;
use uniq_sql::CreateTable;
use uniq_types::{Error, Result, TableName};

/// A registry of table schemas, keyed by table name.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<TableName, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a schema. Errors if a table of that name already exists.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        if self.tables.contains_key(&schema.name) {
            return Err(Error::DuplicateTable(schema.name.to_string()));
        }
        self.tables.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Apply a parsed `CREATE TABLE` statement.
    pub fn apply_create(&mut self, ast: &CreateTable) -> Result<()> {
        self.create_table(TableSchema::from_ast(ast)?)
    }

    /// Remove a table's schema. Errors if it does not exist.
    pub fn drop_table(&mut self, name: &TableName) -> Result<TableSchema> {
        self.tables
            .remove(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Look up a schema by name.
    pub fn table(&self, name: &TableName) -> Result<&TableSchema> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// True iff a table of this name exists.
    pub fn contains(&self, name: &TableName) -> bool {
        self.tables.contains_key(name)
    }

    /// Mutable access to a schema (index registration).
    pub(crate) fn table_mut(&mut self, name: &TableName) -> Result<&mut TableSchema> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// The table owning a secondary index of this name, if any. Index
    /// names share one namespace across the whole database.
    pub fn index_owner(&self, index: &str) -> Option<&TableSchema> {
        self.tables.values().find(|t| t.index(index).is_some())
    }

    /// Iterate over all schemas in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_sql::{parse_statement, Statement};

    fn create(cat: &mut Catalog, sql: &str) {
        match parse_statement(sql).unwrap() {
            Statement::CreateTable(ct) => cat.apply_create(&ct).unwrap(),
            _ => panic!(),
        }
    }

    #[test]
    fn create_lookup_drop() {
        let mut cat = Catalog::new();
        create(&mut cat, "CREATE TABLE T (A INTEGER, PRIMARY KEY (A))");
        assert!(cat.contains(&"t".into()));
        assert_eq!(cat.table(&"T".into()).unwrap().arity(), 1);
        cat.drop_table(&"T".into()).unwrap();
        assert!(cat.table(&"T".into()).is_err());
    }

    #[test]
    fn duplicate_create_fails() {
        let mut cat = Catalog::new();
        create(&mut cat, "CREATE TABLE T (A INTEGER)");
        let ct = match parse_statement("CREATE TABLE T (B INTEGER)").unwrap() {
            Statement::CreateTable(ct) => ct,
            _ => unreachable!(),
        };
        assert!(matches!(
            cat.apply_create(&ct),
            Err(Error::DuplicateTable(_))
        ));
    }

    #[test]
    fn unknown_table_lookup_fails() {
        let cat = Catalog::new();
        assert!(matches!(
            cat.table(&"NOPE".into()),
            Err(Error::UnknownTable(_))
        ));
    }
}
