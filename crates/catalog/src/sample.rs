//! The paper's Figure 1 supplier database, as executable fixtures.
//!
//! `SUPPLIER(SNO, SNAME, SCITY, BUDGET, STATUS)` — key `SNO`
//! `PARTS(SNO, PNO, PNAME, OEM-PNO, COLOR)` — key `(SNO, PNO)`, candidate
//! key `OEM-PNO`; rows reference the supplier who supplies them.
//! `AGENTS(SNO, ANO, ANAME, ACITY)` — key `(SNO, ANO)`; rows reference the
//! supplier they represent.
//!
//! The `CREATE TABLE` text below is the paper's §2.1 definitions verbatim
//! (modulo concrete data types, which the paper elides).

use crate::database::Database;
use uniq_types::Result;

/// The paper's DDL: schema + constraints of Figure 1 / §2.1.
pub const SUPPLIER_DDL: &str = "
CREATE TABLE SUPPLIER (
  SNO    INTEGER NOT NULL,
  SNAME  VARCHAR(30),
  SCITY  VARCHAR(20),
  BUDGET INTEGER,
  STATUS VARCHAR(10),
  PRIMARY KEY (SNO),
  CHECK (SNO BETWEEN 1 AND 499),
  CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')),
  CHECK (BUDGET <> 0 OR STATUS = 'Inactive'));

CREATE TABLE PARTS (
  SNO     INTEGER NOT NULL,
  PNO     INTEGER NOT NULL,
  PNAME   VARCHAR(30),
  OEM-PNO INTEGER,
  COLOR   VARCHAR(10),
  PRIMARY KEY (SNO, PNO),
  UNIQUE (OEM-PNO),
  CHECK (SNO BETWEEN 1 AND 499),
  FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO));

CREATE TABLE AGENTS (
  SNO   INTEGER NOT NULL,
  ANO   INTEGER NOT NULL,
  ANAME VARCHAR(30),
  ACITY VARCHAR(20),
  PRIMARY KEY (SNO, ANO),
  FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO));
";

/// A small, hand-written instance that exercises every example in the
/// paper: duplicate supplier names (Example 2), red parts supplied by
/// several suppliers (Examples 1/8), a part supplied by two suppliers,
/// agents in Ottawa/Hull (Example 9), and one `NULL` `OEM-PNO`.
pub const SAMPLE_DATA: &str = "
INSERT INTO SUPPLIER VALUES
  (1, 'Acme',   'Toronto',  1000, 'Active'),
  (2, 'Globex', 'Chicago',  2000, 'Active'),
  (3, 'Acme',   'New York',  500, 'Active'),
  (4, 'Initech','Toronto',   300, 'Active'),
  (5, 'Umbra',  'Chicago',     0, 'Inactive');

INSERT INTO PARTS VALUES
  (1, 10, 'bolt',   100, 'RED'),
  (1, 11, 'nut',    101, 'GREEN'),
  (2, 10, 'bolt',   102, 'RED'),
  (2, 12, 'washer', 103, 'BLUE'),
  (3, 10, 'bolt',   104, 'RED'),
  (3, 13, 'screw',  NULL, 'RED'),
  (4, 14, 'cam',    106, 'GREEN');

INSERT INTO AGENTS VALUES
  (1, 1, 'North',  'Ottawa'),
  (1, 2, 'East',   'Hull'),
  (2, 1, 'Midway', 'Chicago'),
  (3, 1, 'Hudson', 'Ottawa'),
  (4, 1, 'Bay',    'Toronto');
";

/// Build the Figure 1 schema with no rows.
pub fn supplier_schema() -> Result<Database> {
    let mut db = Database::new();
    db.run_script(SUPPLIER_DDL)?;
    Ok(db)
}

/// Build the Figure 1 schema populated with [`SAMPLE_DATA`].
pub fn supplier_database() -> Result<Database> {
    let mut db = supplier_schema()?;
    db.run_script(SAMPLE_DATA)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_figure_1() {
        let db = supplier_schema().unwrap();
        let cat = db.catalog();
        let supplier = cat.table(&"SUPPLIER".into()).unwrap();
        assert_eq!(supplier.primary_key().unwrap().columns, vec![0]);
        assert_eq!(supplier.checks().count(), 3);

        let parts = cat.table(&"PARTS".into()).unwrap();
        assert_eq!(parts.primary_key().unwrap().columns, vec![0, 1]);
        // OEM-PNO candidate key.
        assert_eq!(parts.candidate_keys().count(), 2);
        let oem = parts.candidate_keys().find(|k| !k.primary).unwrap();
        assert_eq!(oem.columns, vec![3]);

        let agents = cat.table(&"AGENTS".into()).unwrap();
        assert_eq!(agents.primary_key().unwrap().columns, vec![0, 1]);
    }

    #[test]
    fn sample_data_is_a_valid_instance() {
        let db = supplier_database().unwrap();
        assert_eq!(db.row_count(&"SUPPLIER".into()).unwrap(), 5);
        assert_eq!(db.row_count(&"PARTS".into()).unwrap(), 7);
        assert_eq!(db.row_count(&"AGENTS".into()).unwrap(), 5);
    }

    #[test]
    fn second_null_oem_pno_is_rejected() {
        // Paper §2.1: any instance of PARTS may have only one tuple with
        // OEM-PNO = NULL.
        let mut db = supplier_database().unwrap();
        let err = db
            .run_script("INSERT INTO PARTS VALUES (4, 15, 'rod', NULL, 'RED')")
            .unwrap_err();
        assert!(err.to_string().contains("unique key violation"), "{err}");
    }

    #[test]
    fn duplicate_supplier_names_exist() {
        // Example 2 relies on two suppliers sharing a name.
        let db = supplier_database().unwrap();
        let rows = db.rows(&"SUPPLIER".into()).unwrap();
        let acme: Vec<_> = rows
            .iter()
            .filter(|r| r[1] == uniq_types::Value::str("Acme"))
            .collect();
        assert_eq!(acme.len(), 2);
    }
}
