//! A database: catalog plus validated in-memory row storage.
//!
//! Storage keeps one B-tree index per candidate key (keyed by the key's
//! value tuple under `Value`'s canonical order, whose `Equal` coincides
//! with `=̇`), so key-uniqueness validation and foreign-key lookups are
//! `O(log n)` per row rather than a scan — instances of benchmark size
//! load in linear-log time.

use crate::catalog::Catalog;
use crate::table::TableSchema;
use crate::validate;
use std::collections::BTreeMap;
use uniq_sql::{Insert, Statement};
use uniq_types::{Error, Result, TableName, Value};

/// One stored row.
pub type Row = Vec<Value>;

#[derive(Debug, Clone, Default)]
struct TableData {
    rows: Vec<Row>,
    /// One index per candidate key, parallel to
    /// `TableSchema::candidate_keys()` order: key tuple → row position.
    key_indexes: Vec<BTreeMap<Vec<Value>, usize>>,
}

/// A catalog together with table instances. Every row admitted through
/// [`Database::insert`] satisfies all declared constraints (shape, type,
/// `CHECK`s, key uniqueness with `=̇` semantics, foreign keys), so
/// instances are always *valid* in the paper's sense.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    data: BTreeMap<TableName, TableData>,
    /// Monotonic schema version; see [`Database::version`].
    version: u64,
}

fn key_tuple(columns: &[usize], row: &[Value]) -> Vec<Value> {
    columns.iter().map(|&c| row[c].clone()).collect()
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The schema registry.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The monotonic catalog version, bumped by every schema-affecting
    /// mutation (`CREATE TABLE`, `truncate`). Compiled plans reference
    /// only schema — never row data — so plain `INSERT`s leave the
    /// version unchanged; the plan cache uses this to decide whether a
    /// cached plan is still valid.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Register a table schema with empty contents.
    ///
    /// Foreign keys are checked structurally here: the referenced table
    /// must already exist (or be this table itself) and the referenced
    /// columns must form a candidate key of it, with matching types.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        for fk in schema.foreign_keys() {
            let parent = if fk.parent == schema.name {
                &schema
            } else {
                self.catalog.table(&fk.parent)?
            };
            let mut parent_positions: Vec<usize> = fk
                .parent_columns
                .iter()
                .map(|c| parent.column_position(c))
                .collect::<Result<_>>()?;
            parent_positions.sort_unstable();
            if !parent
                .candidate_keys()
                .any(|k| k.columns == parent_positions)
            {
                return Err(Error::bind(format!(
                    "foreign key on {} references non-key columns of {}",
                    schema.name, fk.parent
                )));
            }
            for (&child, parent_col) in fk.columns.iter().zip(&fk.parent_columns) {
                let p = parent.column_position(parent_col)?;
                if schema.columns[child].data_type != parent.columns[p].data_type {
                    return Err(Error::bind(format!(
                        "foreign key column {} of {} has a different type than {}.{}",
                        schema.columns[child].name, schema.name, fk.parent, parent_col
                    )));
                }
            }
        }
        let name = schema.name.clone();
        let n_keys = schema.candidate_keys().count();
        self.catalog.create_table(schema)?;
        self.data.insert(
            name,
            TableData {
                rows: Vec::new(),
                key_indexes: vec![BTreeMap::new(); n_keys],
            },
        );
        self.version += 1;
        Ok(())
    }

    /// Insert one row after full validation (shape, checks, keys, FKs).
    pub fn insert(&mut self, table: &TableName, row: Row) -> Result<()> {
        let schema = self.catalog.table(table)?;
        validate::validate_shape(schema, &row)?;
        validate::validate_checks(schema, &row)?;

        // Key uniqueness via the indexes.
        let data = self
            .data
            .get(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        let keys: Vec<_> = schema.candidate_keys().collect();
        let mut tuples: Vec<Vec<Value>> = Vec::with_capacity(keys.len());
        for (key, index) in keys.iter().zip(&data.key_indexes) {
            let tuple = key_tuple(&key.columns, &row);
            if index.contains_key(&tuple) {
                let desc: Vec<String> = key
                    .columns
                    .iter()
                    .map(|&i| format!("{}={}", schema.columns[i].name, row[i]))
                    .collect();
                return Err(Error::ConstraintViolation {
                    table: table.to_string(),
                    message: format!(
                        "{} key violation on ({})",
                        if key.primary { "primary" } else { "unique" },
                        desc.join(", ")
                    ),
                });
            }
            tuples.push(tuple);
        }

        // Foreign keys: a row with all-non-null FK columns must have a
        // matching parent (SQL's "simple match" lets any-NULL rows pass).
        for fk in schema.foreign_keys() {
            let child_tuple = key_tuple(&fk.columns, &row);
            if child_tuple.iter().any(|v| v.is_null()) {
                continue;
            }
            if !self.parent_exists(&fk.parent, &fk.parent_columns, &child_tuple)? {
                return Err(Error::ConstraintViolation {
                    table: table.to_string(),
                    message: format!(
                        "foreign key violation: no {} row with ({}) = ({})",
                        fk.parent,
                        fk.parent_columns
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        child_tuple
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }

        let data = self.data.get_mut(table).expect("checked above");
        let pos = data.rows.len();
        for (index, tuple) in data.key_indexes.iter_mut().zip(tuples) {
            index.insert(tuple, pos);
        }
        data.rows.push(row);
        Ok(())
    }

    /// Does the parent table contain a row whose `parent_columns` equal
    /// `tuple`? Uses the parent's candidate-key index (FKs reference
    /// candidate keys, enforced at `create_table`).
    fn parent_exists(
        &self,
        parent: &TableName,
        parent_columns: &[uniq_types::ColumnName],
        tuple: &[Value],
    ) -> Result<bool> {
        let schema = self.catalog.table(parent)?;
        let data = self
            .data
            .get(parent)
            .ok_or_else(|| Error::UnknownTable(parent.to_string()))?;
        let mut positions: Vec<usize> = parent_columns
            .iter()
            .map(|c| schema.column_position(c))
            .collect::<Result<_>>()?;
        // The index key tuple follows the key's sorted column order;
        // reorder the probe accordingly.
        let mut paired: Vec<(usize, &Value)> = positions.iter().copied().zip(tuple).collect();
        paired.sort_by_key(|(p, _)| *p);
        positions.sort_unstable();
        let key_idx = schema
            .candidate_keys()
            .position(|k| k.columns == positions)
            .ok_or_else(|| Error::internal("FK references a non-key (checked at create)"))?;
        let probe: Vec<Value> = paired.into_iter().map(|(_, v)| v.clone()).collect();
        Ok(data.key_indexes[key_idx].contains_key(&probe))
    }

    /// Insert one row *without* validation.
    ///
    /// Only for building intentionally adversarial instances in tests
    /// (e.g. demonstrating what would go wrong if a constraint did not
    /// hold). Never used by the optimizer or executor. Key indexes keep
    /// the *first* row for any duplicated key value.
    pub fn insert_unchecked(&mut self, table: &TableName, row: Row) -> Result<()> {
        let schema = self.catalog.table(table)?.clone();
        let data = self
            .data
            .get_mut(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        let pos = data.rows.len();
        for (key, index) in schema.candidate_keys().zip(data.key_indexes.iter_mut()) {
            index.entry(key_tuple(&key.columns, &row)).or_insert(pos);
        }
        data.rows.push(row);
        Ok(())
    }

    /// All rows of a table.
    pub fn rows(&self, table: &TableName) -> Result<&[Row]> {
        self.data
            .get(table)
            .map(|d| d.rows.as_slice())
            .ok_or_else(|| Error::UnknownTable(table.to_string()))
    }

    /// Look up a row by candidate-key value. `key_columns` must be one of
    /// the table's candidate keys (sorted positions).
    pub fn lookup_by_key(
        &self,
        table: &TableName,
        key_columns: &[usize],
        key_values: &[Value],
    ) -> Result<Option<&Row>> {
        let schema = self.catalog.table(table)?;
        let data = self
            .data
            .get(table)
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        let key_idx = schema
            .candidate_keys()
            .position(|k| k.columns == key_columns)
            .ok_or_else(|| {
                Error::internal(format!("{table} has no candidate key {key_columns:?}"))
            })?;
        Ok(data.key_indexes[key_idx]
            .get(key_values)
            .map(|&pos| &data.rows[pos]))
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &TableName) -> Result<usize> {
        self.rows(table).map(|r| r.len())
    }

    /// Remove all rows of a table (schema stays).
    pub fn truncate(&mut self, table: &TableName) -> Result<()> {
        self.data
            .get_mut(table)
            .map(|d| {
                d.rows.clear();
                for idx in &mut d.key_indexes {
                    idx.clear();
                }
            })
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        self.version += 1;
        Ok(())
    }

    /// Apply a parsed statement: `CREATE TABLE` or `INSERT`.
    /// Queries are rejected here — they go through the planner/executor.
    pub fn apply(&mut self, stmt: &Statement) -> Result<()> {
        match stmt {
            Statement::CreateTable(ct) => self.create_table(TableSchema::from_ast(ct)?),
            Statement::Insert(ins) => self.apply_insert(ins),
            Statement::Query(_) => Err(Error::internal(
                "queries are executed by uniq-engine, not Database::apply",
            )),
        }
    }

    /// Apply a parsed `INSERT`, reordering values when an explicit column
    /// list was given and filling unnamed columns with `NULL`.
    pub fn apply_insert(&mut self, ins: &Insert) -> Result<()> {
        let schema = self.catalog.table(&ins.table)?;
        let arity = schema.arity();
        let positions: Option<Vec<usize>> = match &ins.columns {
            None => None,
            Some(cols) => Some(
                cols.iter()
                    .map(|c| schema.column_position(c))
                    .collect::<Result<_>>()?,
            ),
        };
        let table = ins.table.clone();
        for literal_row in &ins.rows {
            let row: Row = match &positions {
                None => {
                    if literal_row.len() != arity {
                        return Err(Error::ConstraintViolation {
                            table: table.to_string(),
                            message: format!(
                                "INSERT supplies {} values for {} columns",
                                literal_row.len(),
                                arity
                            ),
                        });
                    }
                    literal_row.clone()
                }
                Some(pos) => {
                    if literal_row.len() != pos.len() {
                        return Err(Error::ConstraintViolation {
                            table: table.to_string(),
                            message: "INSERT value count does not match column list".into(),
                        });
                    }
                    let mut row = vec![Value::Null; arity];
                    for (&p, v) in pos.iter().zip(literal_row) {
                        row[p] = v.clone();
                    }
                    row
                }
            };
            self.insert(&table, row)?;
        }
        Ok(())
    }

    /// Run a whole DDL/DML script (used by tests and examples).
    pub fn run_script(&mut self, sql: &str) -> Result<()> {
        for stmt in uniq_sql::parse_statements(sql)? {
            self.apply(&stmt)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_builds_and_populates() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 'x'), (2, 'y');
             INSERT INTO T (B, A) VALUES ('z', 3);",
        )
        .unwrap();
        let rows = db.rows(&"T".into()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec![Value::Int(3), Value::str("z")]);
    }

    #[test]
    fn insert_violating_key_fails() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        assert!(db.insert(&"T".into(), vec![Value::Int(1)]).is_err());
        assert_eq!(db.row_count(&"T".into()).unwrap(), 1);
    }

    #[test]
    fn unique_key_null_special_value_via_index() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER NOT NULL, B INTEGER, PRIMARY KEY (A), UNIQUE (B));
             INSERT INTO T VALUES (1, NULL);",
        )
        .unwrap();
        // Second NULL in the UNIQUE column: rejected (=̇ key semantics).
        assert!(db
            .insert(&"T".into(), vec![Value::Int(2), Value::Null])
            .is_err());
        assert!(db
            .insert(&"T".into(), vec![Value::Int(2), Value::Int(9)])
            .is_ok());
    }

    #[test]
    fn missing_columns_fill_with_null() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER, B VARCHAR); INSERT INTO T (A) VALUES (1);")
            .unwrap();
        assert_eq!(db.rows(&"T".into()).unwrap()[0][1], Value::Null);
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        db.truncate(&"T".into()).unwrap();
        assert_eq!(db.row_count(&"T".into()).unwrap(), 0);
        // Key slot freed by truncate.
        db.insert(&"T".into(), vec![Value::Int(1)]).unwrap();
    }

    #[test]
    fn unchecked_insert_bypasses_validation() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A)); INSERT INTO T VALUES (1);")
            .unwrap();
        db.insert_unchecked(&"T".into(), vec![Value::Int(1)])
            .unwrap();
        assert_eq!(db.row_count(&"T".into()).unwrap(), 2);
    }

    #[test]
    fn lookup_by_key_uses_index() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
             INSERT INTO T VALUES (1, 'x'), (2, 'y');",
        )
        .unwrap();
        let row = db
            .lookup_by_key(&"T".into(), &[0], &[Value::Int(2)])
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::str("y"));
        assert!(db
            .lookup_by_key(&"T".into(), &[0], &[Value::Int(99)])
            .unwrap()
            .is_none());
    }

    #[test]
    fn foreign_key_enforced() {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE PARENT (K INTEGER, PRIMARY KEY (K));
             CREATE TABLE CHILD (C INTEGER, FK INTEGER,
               PRIMARY KEY (C),
               FOREIGN KEY (FK) REFERENCES PARENT (K));
             INSERT INTO PARENT VALUES (1);",
        )
        .unwrap();
        // Valid reference.
        db.run_script("INSERT INTO CHILD VALUES (10, 1)").unwrap();
        // Dangling reference.
        let err = db
            .run_script("INSERT INTO CHILD VALUES (11, 99)")
            .unwrap_err();
        assert!(err.to_string().contains("foreign key"), "{err}");
        // NULL FK passes (simple match).
        db.run_script("INSERT INTO CHILD VALUES (12, NULL)")
            .unwrap();
    }

    #[test]
    fn foreign_key_must_reference_a_key() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE PARENT (K INTEGER, V INTEGER, PRIMARY KEY (K));")
            .unwrap();
        let err = db
            .run_script("CREATE TABLE CHILD (C INTEGER, FOREIGN KEY (C) REFERENCES PARENT (V));")
            .unwrap_err();
        assert!(err.to_string().contains("non-key"), "{err}");
    }

    #[test]
    fn foreign_key_type_mismatch_rejected() {
        let mut db = Database::new();
        db.run_script("CREATE TABLE PARENT (K INTEGER, PRIMARY KEY (K));")
            .unwrap();
        let err = db
            .run_script("CREATE TABLE CHILD (C VARCHAR, FOREIGN KEY (C) REFERENCES PARENT (K));")
            .unwrap_err();
        assert!(err.to_string().contains("different type"), "{err}");
    }

    #[test]
    fn foreign_key_to_missing_table_rejected() {
        let mut db = Database::new();
        assert!(db
            .run_script("CREATE TABLE CHILD (C INTEGER, FOREIGN KEY (C) REFERENCES NOPE (K));")
            .is_err());
    }

    #[test]
    fn version_tracks_schema_mutations() {
        let mut db = Database::new();
        assert_eq!(db.version(), 0);
        db.run_script("CREATE TABLE T (A INTEGER, PRIMARY KEY (A));")
            .unwrap();
        let v1 = db.version();
        assert!(v1 > 0);
        db.run_script("INSERT INTO T VALUES (1);").unwrap();
        assert_eq!(
            db.version(),
            v1,
            "plans are schema-only; inserts keep them valid"
        );
        db.truncate(&"T".into()).unwrap();
        assert!(db.version() > v1);
    }

    #[test]
    fn bulk_insert_is_fast_enough_with_indexes() {
        // 20k rows with two candidate keys: must be well under a second.
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE T (A INTEGER NOT NULL, B INTEGER, PRIMARY KEY (A), UNIQUE (B));",
        )
        .unwrap();
        let t = std::time::Instant::now();
        for i in 0..20_000i64 {
            db.insert(&"T".into(), vec![Value::Int(i), Value::Int(i + 1_000_000)])
                .unwrap();
        }
        assert!(
            t.elapsed() < std::time::Duration::from_secs(5),
            "indexed insert too slow: {:?}",
            t.elapsed()
        );
    }
}
